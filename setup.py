"""Setup shim for environments without the ``wheel`` package.

The pinned toolchain in the reproduction environment lacks ``wheel``, so
PEP 660 editable installs fail; with this shim ``pip install -e .
--no-build-isolation`` falls back to the classic ``setup.py develop``
path.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
