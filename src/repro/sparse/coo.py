"""Coordinate-format (COO) sparse matrix.

COO is the natural construction format: a list of ``(row, col, value)``
triples.  It exists here mainly as a staging container for building
:class:`repro.sparse.csr.CsrMatrix` instances from edge lists produced by
the dataset generators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, SparseFormatError

__all__ = ["CooMatrix"]


@dataclass(frozen=True)
class CooMatrix:
    """An immutable sparse matrix in coordinate format.

    Attributes:
        nrows: Number of rows (``m`` in the paper's notation).
        ncols: Number of columns (``n``).
        rows: int64 array of row indices, one per non-zero.
        cols: int64 array of column indices, one per non-zero.
        vals: float32 array of non-zero values.

    Duplicate ``(row, col)`` entries are permitted and are summed when the
    matrix is converted to CSR, mirroring scipy's convention.
    """

    nrows: int
    ncols: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    def __post_init__(self) -> None:
        rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        vals = np.ascontiguousarray(self.vals, dtype=np.float32)
        if not (rows.ndim == cols.ndim == vals.ndim == 1):
            raise SparseFormatError("COO arrays must be one-dimensional")
        if not (rows.size == cols.size == vals.size):
            raise SparseFormatError(
                "COO arrays must have equal length: "
                f"rows={rows.size} cols={cols.size} vals={vals.size}"
            )
        if self.nrows < 0 or self.ncols < 0:
            raise ShapeError(f"negative matrix shape {self.nrows}x{self.ncols}")
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.nrows:
                raise SparseFormatError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.ncols:
                raise SparseFormatError("column index out of range")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "vals", vals)

    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return int(self.rows.size)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CooMatrix":
        """Build a COO matrix from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"expected a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        vals = dense[rows, cols].astype(np.float32)
        return cls(dense.shape[0], dense.shape[1], rows, cols, vals)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float32 array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.float32)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    def transpose(self) -> "CooMatrix":
        """Return the transpose (swaps row/col index arrays)."""
        return CooMatrix(self.ncols, self.nrows, self.cols, self.rows, self.vals)

    def sorted_by_row(self) -> "CooMatrix":
        """Return a copy sorted by (row, col), the CSR-friendly order."""
        order = np.lexsort((self.cols, self.rows))
        return CooMatrix(
            self.nrows,
            self.ncols,
            self.rows[order],
            self.cols[order],
            self.vals[order],
        )

    def sum_duplicates(self) -> "CooMatrix":
        """Return a copy with duplicate coordinates summed into one entry."""
        if self.nnz == 0:
            return self
        sorted_self = self.sorted_by_row()
        keys = sorted_self.rows * self.ncols + sorted_self.cols
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        vals = np.zeros(unique_keys.size, dtype=np.float32)
        np.add.at(vals, inverse, sorted_self.vals)
        rows = (unique_keys // self.ncols).astype(np.int64)
        cols = (unique_keys % self.ncols).astype(np.int64)
        return CooMatrix(self.nrows, self.ncols, rows, cols, vals)
