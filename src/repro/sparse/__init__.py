"""Sparse-matrix substrate: CSR/COO containers and reference kernels.

The paper stores the sparse operand in Compressed Sparse Row (CSR) form
(paper §II-A, Figure 2).  This subpackage provides a from-scratch CSR
implementation (:class:`CsrMatrix`), a COO builder (:class:`CooMatrix`),
and pure-numpy reference SpMM kernels used as the correctness oracle for
every generated-code backend in the library.
"""

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import (
    spmm_reference,
    spmm_rowwise,
    spmm_scalar,
    spmv_reference,
)

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "spmm_reference",
    "spmm_rowwise",
    "spmm_scalar",
    "spmv_reference",
]
