"""Reference SpMM kernels in pure numpy / pure Python.

These are the correctness oracles for every code-generating backend in the
library.  ``spmm_scalar`` transliterates the paper's Algorithm 1 exactly
(including its loop order), ``spmm_rowwise`` mirrors the coarse-grain
column-merging traversal of Algorithm 2, and ``spmm_reference`` is the fast
vectorized implementation used by tests and the engine's numpy backend.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CsrMatrix

__all__ = ["spmm_reference", "spmm_rowwise", "spmm_scalar", "spmv_reference"]


def _check_operands(a: CsrMatrix, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 2:
        raise ShapeError(f"dense operand must be 2-D, got ndim={x.ndim}")
    if x.shape[0] != a.ncols:
        raise ShapeError(
            f"dimension mismatch: A is {a.nrows}x{a.ncols}, X is "
            f"{x.shape[0]}x{x.shape[1]}"
        )
    return np.ascontiguousarray(x, dtype=np.float32)


def spmm_reference(a: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Compute ``Y = A @ X`` with vectorized numpy segment reduction.

    This is the oracle: O(nnz * d) work with no Python-level inner loop.
    """
    x = _check_operands(a, x)
    products = a.vals[:, None] * x[a.col_indices]
    y = np.zeros((a.nrows, x.shape[1]), dtype=np.float32)
    rows = np.repeat(np.arange(a.nrows), a.row_lengths())
    np.add.at(y, rows, products)
    return y


def spmm_rowwise(a: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Compute ``Y = A @ X`` row by row, as coarse-grain column merging does.

    For each row ``i`` the whole output row ``ret[0:d]`` is accumulated as a
    single vector across the row's non-zeros (paper Algorithm 2).  Slower
    than :func:`spmm_reference` but matches the generated kernels' traversal
    order, which matters when comparing float32 rounding behaviour.
    """
    x = _check_operands(a, x)
    d = x.shape[1]
    y = np.zeros((a.nrows, d), dtype=np.float32)
    for i in range(a.nrows):
        cols, vals = a.row_slice(i)
        ret = np.zeros(d, dtype=np.float32)
        for val, k in zip(vals, cols):
            ret += val * x[k]
        y[i] = ret
    return y


def spmm_scalar(a: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Transliteration of the paper's Algorithm 1, loop order included.

    The j-loop is outermost within each row, so ``A.vals[idx]`` and
    ``A.col_indices[idx]`` are re-read for every output column — exactly the
    memory-access pattern the AOT baselines exhibit.  Exponentially slower
    than the oracle; only use on tiny matrices.
    """
    x = _check_operands(a, x)
    d = x.shape[1]
    y = np.zeros((a.nrows, d), dtype=np.float32)
    row_ptr, col_indices, vals = a.row_ptr, a.col_indices, a.vals
    for i in range(a.nrows):
        for j in range(d):
            ret = np.float32(0.0)
            for idx in range(int(row_ptr[i]), int(row_ptr[i + 1])):
                k = int(col_indices[idx])
                ret += vals[idx] * x[k, j]
            y[i, j] = ret
    return y


def spmv_reference(a: CsrMatrix, v: np.ndarray) -> np.ndarray:
    """Sparse matrix-vector product ``y = A @ v`` (the d=1 special case)."""
    v = np.asarray(v, dtype=np.float32)
    if v.ndim != 1:
        raise ShapeError(f"vector operand must be 1-D, got ndim={v.ndim}")
    return spmm_reference(a, v[:, None])[:, 0]
