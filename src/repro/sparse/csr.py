"""Compressed Sparse Row (CSR) matrix, the paper's storage format.

CSR stores a sparse ``m x n`` matrix in three arrays (paper §II-A, Fig. 2):

* ``row_ptr``  — ``m + 1`` offsets; row ``i`` owns the half-open slice
  ``[row_ptr[i], row_ptr[i+1])`` of the other two arrays;
* ``col_indices`` — the column index of each non-zero, in row order;
* ``vals``     — the value of each non-zero.

The class deliberately mirrors the paper's field names (``row_ptr``,
``col_indices``, ``vals``) so that generated-code listings read the same as
the paper's Listings 1–2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError, SparseFormatError
from repro.sparse.coo import CooMatrix

__all__ = ["CsrMatrix"]

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float32


@dataclass(frozen=True)
class CsrMatrix:
    """An immutable CSR sparse matrix with float32 values.

    Attributes:
        nrows: Number of rows (``m``).
        ncols: Number of columns (``n``).
        row_ptr: int64 array of length ``nrows + 1``.
        col_indices: int64 array of length ``nnz``.
        vals: float32 array of length ``nnz``.
        name: Optional human-readable dataset name (used in reports).
    """

    nrows: int
    ncols: int
    row_ptr: np.ndarray
    col_indices: np.ndarray
    vals: np.ndarray
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        row_ptr = np.ascontiguousarray(self.row_ptr, dtype=INDEX_DTYPE)
        col_indices = np.ascontiguousarray(self.col_indices, dtype=INDEX_DTYPE)
        vals = np.ascontiguousarray(self.vals, dtype=VALUE_DTYPE)
        object.__setattr__(self, "row_ptr", row_ptr)
        object.__setattr__(self, "col_indices", col_indices)
        object.__setattr__(self, "vals", vals)
        self.validate()

    # ------------------------------------------------------------------
    # Construction and validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SparseFormatError` if the structure is inconsistent."""
        if self.nrows < 0 or self.ncols < 0:
            raise ShapeError(f"negative matrix shape {self.nrows}x{self.ncols}")
        if self.row_ptr.ndim != 1 or self.row_ptr.size != self.nrows + 1:
            raise SparseFormatError(
                f"row_ptr must have length nrows+1={self.nrows + 1}, "
                f"got {self.row_ptr.size}"
            )
        if self.row_ptr[0] != 0:
            raise SparseFormatError("row_ptr[0] must be 0")
        diffs = np.diff(self.row_ptr)
        if diffs.size and diffs.min() < 0:
            raise SparseFormatError("row_ptr must be non-decreasing")
        nnz = int(self.row_ptr[-1])
        if self.col_indices.size != nnz or self.vals.size != nnz:
            raise SparseFormatError(
                f"row_ptr[-1]={nnz} disagrees with col_indices/vals lengths "
                f"{self.col_indices.size}/{self.vals.size}"
            )
        if nnz:
            if self.col_indices.min() < 0 or self.col_indices.max() >= self.ncols:
                raise SparseFormatError("column index out of range")

    @classmethod
    def from_coo(cls, coo: CooMatrix, name: str = "") -> "CsrMatrix":
        """Convert a COO matrix to CSR, summing duplicate coordinates."""
        deduped = coo.sum_duplicates()
        row_ptr = np.zeros(coo.nrows + 1, dtype=INDEX_DTYPE)
        np.add.at(row_ptr, deduped.rows + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        return cls(
            coo.nrows, coo.ncols, row_ptr, deduped.cols, deduped.vals, name=name
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, name: str = "") -> "CsrMatrix":
        """Build a CSR matrix from a dense array, dropping exact zeros."""
        return cls.from_coo(CooMatrix.from_dense(dense), name=name)

    @classmethod
    def from_arrays(
        cls,
        nrows: int,
        ncols: int,
        row_ptr: np.ndarray,
        col_indices: np.ndarray,
        vals: np.ndarray,
        name: str = "",
    ) -> "CsrMatrix":
        """Build directly from the three CSR arrays (validated)."""
        return cls(nrows, ncols, row_ptr, col_indices, vals, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.row_ptr[-1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def row_lengths(self) -> np.ndarray:
        """Per-row non-zero counts, as an int64 array of length ``nrows``."""
        return np.diff(self.row_ptr)

    def fingerprint(self) -> str:
        """Content hash over shape, structure and values (memoized).

        Two matrices with equal CSR arrays share a fingerprint even as
        distinct objects, so process-wide memo tables (the autotuner's
        split memo) recognize a re-registered or copied matrix.  The
        matrix is immutable, so the digest is computed once and cached
        on the instance; ``name`` is excluded (it does not affect any
        computed result, matching ``__eq__``).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(np.int64([self.nrows, self.ncols]).tobytes())
            digest.update(self.row_ptr.tobytes())
            digest.update(self.col_indices.tobytes())
            digest.update(self.vals.tobytes())
            cached = digest.hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def row_slice(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(col_indices, vals)`` views for row ``i``."""
        if not 0 <= i < self.nrows:
            raise IndexError(f"row {i} out of range [0, {self.nrows})")
        lo, hi = int(self.row_ptr[i]), int(self.row_ptr[i + 1])
        return self.col_indices[lo:hi], self.vals[lo:hi]

    def density(self) -> float:
        """Fraction of cells that are stored, ``nnz / (nrows * ncols)``."""
        cells = self.nrows * self.ncols
        return self.nnz / cells if cells else 0.0

    def mean_row_length(self) -> float:
        """Average non-zeros per row."""
        return self.nnz / self.nrows if self.nrows else 0.0

    def max_row_length(self) -> int:
        """Largest number of non-zeros in any row (0 for empty matrices)."""
        lengths = self.row_lengths()
        return int(lengths.max()) if lengths.size else 0

    def gini_row_imbalance(self) -> float:
        """Gini coefficient of the row-length distribution, in ``[0, 1)``.

        0 means perfectly uniform rows; values near 1 mean a few rows hold
        almost all non-zeros.  Used by the dataset suite to check that the
        scaled twins preserve the skew of the originals.
        """
        lengths = np.sort(self.row_lengths().astype(np.float64))
        if lengths.size == 0 or lengths.sum() == 0:
            return 0.0
        n = lengths.size
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float((2.0 * (ranks * lengths).sum()) / (n * lengths.sum()) - (n + 1) / n)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float32 array."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        rows = np.repeat(np.arange(self.nrows), self.row_lengths())
        out[rows, self.col_indices] = self.vals
        return out

    def to_coo(self) -> CooMatrix:
        """Convert back to coordinate format."""
        rows = np.repeat(
            np.arange(self.nrows, dtype=INDEX_DTYPE), self.row_lengths()
        )
        return CooMatrix(self.nrows, self.ncols, rows, self.col_indices, self.vals)

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_matrix` (test-only helper)."""
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.vals, self.col_indices, self.row_ptr), shape=self.shape
        )

    @classmethod
    def from_scipy(cls, mat, name: str = "") -> "CsrMatrix":
        """Build from any scipy sparse matrix (test-only helper)."""
        csr = mat.tocsr()
        csr.sum_duplicates()
        return cls(
            csr.shape[0],
            csr.shape[1],
            csr.indptr.astype(INDEX_DTYPE),
            csr.indices.astype(INDEX_DTYPE),
            csr.data.astype(VALUE_DTYPE),
            name=name,
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CsrMatrix({self.nrows}x{self.ncols}, nnz={self.nnz}, "
            f"mean_row={self.mean_row_length():.2f}{label})"
        )
