"""Branch predictors: 2-bit saturating counters and gshare.

The paper attributes part of JIT's advantage to removing branch
instructions, while noting that branch *misses* improve less because "the
high accuracy of the branch predictor within the processor ... tends to
forecast correct branch outcomes for the additional branch instructions"
(§V-D).  Reproducing that nuance needs an actual predictor model, not a
fixed miss rate — these are the standard two designs.
"""

from __future__ import annotations

__all__ = ["BranchPredictor", "GShare", "TwoBit", "make_predictor",
           "replay_outcomes"]


class BranchPredictor:
    """Interface: predict a conditional branch, then learn the outcome."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True if the prediction was correct."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class TwoBit(BranchPredictor):
    """Per-PC table of 2-bit saturating counters (Smith predictor).

    States 0/1 predict not-taken, 2/3 predict taken; counters start weakly
    taken (2), which is the common hardware reset state for loop-heavy
    code.
    """

    def __init__(self, table_bits: int = 12) -> None:
        self._mask = (1 << table_bits) - 1
        self._table = [2] * (1 << table_bits)

    def predict(self, pc: int) -> bool:
        return self._table[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        slot = pc & self._mask
        state = self._table[slot]
        predicted = state >= 2
        if taken:
            if state < 3:
                self._table[slot] = state + 1
        else:
            if state > 0:
                self._table[slot] = state - 1
        return predicted == taken

    def reset(self) -> None:
        self._table = [2] * len(self._table)


class GShare(BranchPredictor):
    """Gshare: 2-bit counters indexed by PC xor global history.

    Captures correlated branches (e.g. the remainder-loop trip counts the
    AOT auto-vectorizer introduces) better than per-PC counters.
    """

    def __init__(self, table_bits: int = 12, history_bits: int = 8) -> None:
        self._mask = (1 << table_bits) - 1
        self._table = [2] * (1 << table_bits)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        slot = self._index(pc)
        state = self._table[slot]
        predicted = state >= 2
        if taken:
            if state < 3:
                self._table[slot] = state + 1
        else:
            if state > 0:
                self._table[slot] = state - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return predicted == taken

    def reset(self) -> None:
        self._table = [2] * len(self._table)
        self._history = 0


def make_predictor(kind: str = "gshare") -> BranchPredictor:
    """Factory: ``"two_bit"`` or ``"gshare"`` (the default)."""
    if kind == "two_bit":
        return TwoBit()
    if kind == "gshare":
        return GShare()
    raise ValueError(f"unknown branch predictor kind {kind!r}")


def replay_outcomes(predictor: BranchPredictor, packed: list) -> list:
    """Classify a recorded outcome vector; returns per-branch miss flags.

    ``packed`` holds one ``(pc << 1) | taken`` integer per executed
    conditional branch, in execution order — the columnar form the
    trace recorder emits.  The predictor's tables advance exactly as
    they would have under per-instruction interpretation; the built-in
    predictors get an inlined update loop (no per-branch method
    dispatch), anything else falls back to :meth:`~BranchPredictor.update`.
    """
    misses: list = []
    append = misses.append
    if type(predictor) is GShare:
        table = predictor._table
        mask = predictor._mask
        history = predictor._history
        hmask = predictor._history_mask
        for word in packed:
            taken = word & 1
            slot = ((word >> 1) ^ history) & mask
            state = table[slot]
            if taken:
                if state < 3:
                    table[slot] = state + 1
                history = ((history << 1) | 1) & hmask
                append(state < 2)
            else:
                if state > 0:
                    table[slot] = state - 1
                history = (history << 1) & hmask
                append(state >= 2)
        predictor._history = history
        return misses
    if type(predictor) is TwoBit:
        table = predictor._table
        mask = predictor._mask
        for word in packed:
            taken = word & 1
            slot = (word >> 1) & mask
            state = table[slot]
            if taken:
                if state < 3:
                    table[slot] = state + 1
                append(state < 2)
            else:
                if state > 0:
                    table[slot] = state - 1
                append(state >= 2)
        return misses
    for word in packed:
        taken = bool(word & 1)
        append(not predictor.update(word >> 1, taken))
    return misses
