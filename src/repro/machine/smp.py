"""Multi-core execution: threads, round-robin scheduling, atomicity.

Mirrors the paper's execution model (Fig. 5): a number of threads are
spawned, each independently determines its workload and invokes the
jit-function; when all complete, results are joined.  Threads share the
:class:`Memory` but have private registers, caches, predictors and
pipelines (the paper's Xeon has private L1/L2 per core; we do not model
shared-L3 contention).

Scheduling interleaves threads at a fixed instruction quantum, which is
what makes the ``lock xadd`` dynamic row dispatcher (paper Listing 1)
meaningful: threads race for batches exactly as on real hardware, just
with a deterministic interleaving.  Instructions never interleave
*within* an instruction, so ``lock``-prefixed read-modify-writes are
atomic by construction.

Superblock execution (``fused=True``, the ``sim-fused`` backend)
preserves that contract exactly: a thread's turn still retires exactly
``quantum`` instructions — whole blocks while they fit, per-instruction
steps for the residue — so the global interleaving, and with it every
``lock xadd`` race outcome and per-thread counter, is bit-identical to
per-instruction scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionLimitExceeded
from repro.isa.assembler import Program
from repro.machine.counters import Counters
from repro.machine.cpu import _FLUSH_CHECK_STRIDE, Cpu, CpuConfig
from repro.machine.memory import Memory

__all__ = ["Machine", "ThreadSpec"]

#: Modeled fixed cost of spawning a thread team and joining it (cycles).
#: Kept small relative to kernel runtimes on the scaled twins; at the
#: paper's matrix sizes any constant here is invisible.
THREAD_OVERHEAD_CYCLES = 200.0


@dataclass
class ThreadSpec:
    """One thread's work order: a program plus initial register values."""

    program: Program
    init_gpr: dict = field(default_factory=dict)
    name: str = ""


class _ThreadState:
    def __init__(self, cpu: Cpu, spec: ThreadSpec, fused: bool = False) -> None:
        self.cpu = cpu
        self.spec = spec
        for reg, value in spec.init_gpr.items():
            cpu.set_gpr(reg, value)
        semantics = cpu.semantics(spec.program)
        self.steps = semantics.steps
        self.blocks = cpu.superblocks(spec.program) if fused else None
        if cpu.record:
            cpu.replay.begin(spec.program, semantics)
        self.limit = cpu.config.max_instructions
        self.pc = 0
        self.done = len(self.steps) == 0
        self.executed = 0

    def run_quantum(self, quantum: int) -> None:
        replay = self.cpu.replay
        if replay is None:
            self._run_slice(quantum)
            return
        # the recorder's memory bound must hold inside one turn too: an
        # oversized custom quantum is run in stride-sized slices with a
        # flush-pressure check between them.  Slicing never changes
        # semantics — the turn still retires exactly ``quantum``
        # instructions, and a block that no longer fits a slice residue
        # is stepped, which is bit-identical by the fusion contract.
        while True:
            if replay.should_flush():
                replay.flush()
            if quantum <= _FLUSH_CHECK_STRIDE:
                self._run_slice(quantum)
                return
            self._run_slice(_FLUSH_CHECK_STRIDE)
            quantum -= _FLUSH_CHECK_STRIDE
            if self.done:
                return

    def _run_slice(self, quantum: int) -> None:
        if self.executed + quantum > self.limit:
            self._run_quantum_near_limit(quantum)
            return
        steps = self.steps
        pc = self.pc
        n = len(steps)
        remaining = quantum
        blocks = self.blocks
        if blocks is None:
            while remaining > 0:
                pc = steps[pc]()
                self.executed += 1
                remaining -= 1
                if not 0 <= pc < n:
                    self.done = True
                    break
        else:
            while remaining > 0:
                block = blocks[pc]
                if block is not None and block.length <= remaining:
                    pc = block.run()
                    self.executed += block.length
                    remaining -= block.length
                else:
                    pc = steps[pc]()
                    self.executed += 1
                    remaining -= 1
                if not 0 <= pc < n:
                    self.done = True
                    break
        self.pc = pc

    def _run_quantum_near_limit(self, quantum: int) -> None:
        """Per-instruction stepping with an exact limit check.

        Within one quantum of the execution-step budget the scheduler
        abandons superblocks, so the limit triggers at precisely the
        instruction it would under per-instruction interpretation.
        """
        steps = self.steps
        pc = self.pc
        n = len(steps)
        for _ in range(quantum):
            pc = steps[pc]()
            self.executed += 1
            if self.executed > self.limit:
                self.pc = pc
                raise ExecutionLimitExceeded(
                    f"thread {self.spec.name or '<unnamed>'!r} exceeded the "
                    f"{self.limit}-instruction execution limit in program "
                    f"{self.spec.program.name!r} (infinite loop? raise "
                    f"ExecutionConfig.max_steps for long workloads)"
                )
            if not 0 <= pc < n:
                self.done = True
                break
        self.pc = pc

    def finalize(self) -> Counters:
        if self.cpu.pipeline is not None:
            self.cpu.counters.cycles = self.cpu.pipeline.cycles
        else:
            self.cpu.flush_timing(set_cycles=True)
        return self.cpu.counters


class Machine:
    """A multi-core machine over one shared memory."""

    def __init__(
        self,
        memory: Memory,
        config: CpuConfig | None = None,
        quantum: int = 64,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.memory = memory
        self.config = config or CpuConfig()
        self.quantum = quantum

    def run(
        self,
        threads: list[ThreadSpec],
        warmup: bool = False,
        between_runs=None,
        fused: bool = False,
    ) -> tuple[Counters, list[Counters]]:
        """Run all threads to completion.

        Returns ``(merged, per_thread)`` counters.  Merged counters sum all
        events except cycles, which take the slowest thread (that is the
        machine's elapsed time) plus a fixed spawn/join overhead.

        With ``warmup=True`` the whole workload executes twice and only
        the second (warm caches, trained predictors) run is measured —
        the steady state the paper's average-of-ten methodology reports.
        ``between_runs()`` is called after the warm-up pass so the caller
        can reset non-idempotent shared state (the dynamic dispatcher's
        ``NEXT`` counter).  ``fused=True`` executes through the
        superblock compiler (counts fidelity only; bit-identical
        results, counters and interleaving).
        """
        cpus = [Cpu(self.memory, self.config) for _ in threads]
        if warmup:
            for cpu in cpus:
                cpu.disable_pipeline()  # warm caches/predictors cheaply
            self._execute([_ThreadState(cpu, spec, fused=fused)
                           for cpu, spec in zip(cpus, threads)])
            for cpu in cpus:
                cpu.reset_metrics()
            if between_runs is not None:
                between_runs()
        states = [_ThreadState(cpu, spec, fused=fused)
                  for cpu, spec in zip(cpus, threads)]
        self._execute(states)
        per_thread = [state.finalize() for state in states]
        merged = Counters()
        for counters in per_thread:
            merged.merge(counters)
        if merged.cycles:
            merged.cycles += THREAD_OVERHEAD_CYCLES
        return merged, per_thread

    def _execute(self, states: list[_ThreadState]) -> None:
        quantum = self.quantum
        try:
            while True:
                alive = False
                for state in states:
                    if state.done:
                        continue
                    alive = True
                    state.run_quantum(quantum)
                if not alive:
                    break
        except BaseException:
            # a faulting thread ends the run: replay every thread's
            # recorded prefix so fault-time counters match per-access
            # interpretation (cycles stay unset, as on the ref path)
            for state in states:
                state.cpu.flush_timing()
            raise

    def run_single(self, spec: ThreadSpec) -> Counters:
        """Convenience wrapper for single-thread programs."""
        merged, _ = self.run([spec])
        return merged
