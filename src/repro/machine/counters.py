"""Performance counters, the simulated analogue of Linux perf events.

The paper's profiling analysis (§V-D, Fig. 11) reports four hardware
events: memory loads, branches, branch misses, and instructions.
:class:`Counters` tracks those plus the extra detail our model produces
for free (stores, bytes moved, SIMD/FMA breakdown, cache hits/misses,
modeled cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["Counters", "make_bump"]


@dataclass
class Counters:
    """Mutable event counters for one simulated hardware thread."""

    instructions: int = 0
    memory_loads: int = 0
    memory_stores: int = 0
    loaded_bytes: int = 0
    stored_bytes: int = 0
    branches: int = 0
    cond_branches: int = 0
    branch_misses: int = 0
    simd_instructions: int = 0
    fma_instructions: int = 0
    flop: int = 0
    gather_elements: int = 0
    atomic_ops: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    cycles: float = 0.0

    def merge(self, other: "Counters") -> "Counters":
        """Accumulate another counter set into this one (cycles take max).

        Cycles take the max rather than the sum because threads run
        concurrently: the machine's elapsed time is the slowest thread.
        """
        for f in fields(self):
            if f.name == "cycles":
                self.cycles = max(self.cycles, other.cycles)
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "Counters":
        """Return a copy with every event count multiplied by ``factor``."""
        out = Counters()
        for f in fields(self):
            value = getattr(self, f.name)
            setattr(out, f.name, type(value)(value * factor))
        return out

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def seconds(self, ghz: float = 3.7) -> float:
        """Modeled wall time at a given clock frequency."""
        return self.cycles / (ghz * 1e9)

    def __str__(self) -> str:
        parts = [
            f"insns={self.instructions:,}",
            f"loads={self.memory_loads:,}",
            f"stores={self.memory_stores:,}",
            f"branches={self.branches:,}",
            f"br_miss={self.branch_misses:,}",
            f"cycles={self.cycles:,.0f}",
        ]
        return "Counters(" + " ".join(parts) + ")"


#: compiled bump factories, keyed by the tuple of counter names they
#: increment — a handful of distinct patterns cover every instruction
#: and superblock shape, so the ``exec`` cost is paid once per pattern
_BUMP_BUILDERS: dict[tuple[str, ...], object] = {}


def make_bump(counters: Counters, deltas: dict[str, int]):
    """Compile ``deltas`` into one closure bumping ``counters``.

    The same specialize-and-compile trick the paper applies to SpMM,
    applied to event accounting: instead of interpreting a delta dict
    per retired instruction (or superblock), a straight-line function
    incrementing exactly the non-zero fields is generated and compiled
    once per delta *pattern*, then instantiated per call site with the
    amounts bound as locals.
    """
    items = tuple((name, amount) for name, amount in deltas.items() if amount)
    names = tuple(name for name, _ in items)
    builder = _BUMP_BUILDERS.get(names)
    if builder is None:
        args = ", ".join(f"d{i}" for i in range(len(names)))
        lines = "\n".join(f"        c.{name} += d{i}"
                          for i, name in enumerate(names)) or "        pass"
        source = (f"def _make(c{', ' if args else ''}{args}):\n"
                  f"    def bump():\n{lines}\n"
                  f"    return bump\n")
        namespace: dict = {}
        exec(source, namespace)  # generated from trusted field names
        builder = _BUMP_BUILDERS[names] = namespace["_make"]
    return builder(counters, *(amount for _, amount in items))
