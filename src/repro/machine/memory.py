"""Flat simulated address space backed by numpy arrays.

Host arrays (CSR components, the dense matrices, parameter blocks) are
*mapped* into the simulated address space; generated code then addresses
them with ordinary base+index*scale effective addresses.  Mapping is
zero-copy: a simulated store into the output segment mutates the numpy
array the caller handed in, which is how results come back out of the
machine.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError, SegmentationFault

__all__ = ["Memory", "Segment"]

_PAGE = 4096
_GUARD = _PAGE  # unmapped gap between segments to catch overruns


@dataclass
class Segment:
    """One mapped region: ``[base, base + size)`` over a numpy buffer."""

    name: str
    base: int
    raw: np.ndarray  # uint8 view of the underlying buffer

    def __post_init__(self) -> None:
        # Typed views for fast aligned access (bases are page-aligned, so
        # in-segment offsets have the same alignment as addresses).
        usable4 = self.raw.size - self.raw.size % 4
        usable8 = self.raw.size - self.raw.size % 8
        self.f32v = self.raw[:usable4].view(np.float32)
        self.i32v = self.raw[:usable4].view(np.int32)
        self.i64v = self.raw[:usable8].view(np.int64)

    @property
    def size(self) -> int:
        return int(self.raw.size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int) -> bool:
        return self.base <= addr and addr + size <= self.end


class Memory:
    """Simulated flat memory composed of non-overlapping segments."""

    #: process-wide count of segment mappings ever performed — the
    #: observable the lazy-binding tests pin down ("a native run maps
    #: nothing": no Memory object even exists, so only a global counter
    #: can witness it).  Test/observability aid only — the increment is
    #: not atomic, so concurrent mappers may undercount; nothing in the
    #: product reads it.
    map_events: int = 0

    def __init__(self, base: int = 0x10000) -> None:
        self._cursor = base
        self._segments: list[Segment] = []
        self._bases: list[int] = []
        self._last: Segment | None = None

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_array(self, array: np.ndarray, name: str = "") -> int:
        """Map a numpy array into the address space; returns its base.

        The array must be C-contiguous; the mapping aliases its buffer, so
        simulated stores are visible to the host and vice versa.
        """
        array = np.ascontiguousarray(array) if not array.flags["C_CONTIGUOUS"] else array
        raw = array.view(np.uint8).reshape(-1)
        base = self._cursor
        segment = Segment(name or f"seg{len(self._segments)}", base, raw)
        self._segments.append(segment)
        self._bases.append(base)
        self._cursor = _align(base + max(1, raw.size) + _GUARD)
        Memory.map_events += 1
        return base

    def map_zeros(self, size: int, name: str = "") -> tuple[int, np.ndarray]:
        """Map a zero-initialized scratch region; returns (base, array)."""
        if size <= 0:
            raise MachineError(f"scratch size must be positive, got {size}")
        array = np.zeros(size, dtype=np.uint8)
        return self.map_array(array, name=name), array

    def segment_of(self, addr: int, size: int = 1) -> Segment:
        """Find the segment containing ``[addr, addr+size)``.

        The last-hit segment is cached: hot loops walking one array
        (the trace recorder's gather lanes, scalar ``read_int`` sweeps)
        skip the bisect entirely.  Guard pages stay guarded — a miss
        falls through to the full lookup, and an address in no segment
        still raises :class:`SegmentationFault`.
        """
        last = self._last
        if last is not None and last.base <= addr:
            if addr + size <= last.end:
                return last
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0:
            segment = self._segments[index]
            if segment.contains(addr, size):
                self._last = segment
                return segment
        raise SegmentationFault(
            f"access to unmapped address {addr:#x} (+{size} bytes)"
        )

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    # ------------------------------------------------------------------
    # Scalar access (integers, little-endian)
    # ------------------------------------------------------------------
    def read_int(self, addr: int, size: int) -> int:
        """Read a little-endian unsigned integer of ``size`` bytes."""
        segment = self.segment_of(addr, size)
        off = addr - segment.base
        return int.from_bytes(segment.raw[off: off + size].tobytes(), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value`` little-endian."""
        segment = self.segment_of(addr, size)
        off = addr - segment.base
        mask = (1 << (size * 8)) - 1
        segment.raw[off: off + size] = np.frombuffer(
            (value & mask).to_bytes(size, "little"), dtype=np.uint8
        )

    # ------------------------------------------------------------------
    # Float access (32-bit lanes)
    # ------------------------------------------------------------------
    def read_f32(self, addr: int, lanes: int = 1) -> np.ndarray:
        """Read ``lanes`` consecutive float32 values."""
        segment = self.segment_of(addr, 4 * lanes)
        off = addr - segment.base
        chunk = segment.raw[off: off + 4 * lanes]
        return chunk.view(np.float32).copy() if addr % 4 == 0 else np.frombuffer(
            chunk.tobytes(), dtype=np.float32
        ).copy()

    def write_f32(self, addr: int, values: np.ndarray) -> None:
        """Write an array of float32 values at ``addr``."""
        values = np.asarray(values, dtype=np.float32)
        segment = self.segment_of(addr, 4 * values.size)
        off = addr - segment.base
        segment.raw[off: off + 4 * values.size] = values.view(np.uint8).reshape(-1)

    def read_i32_vec(self, addr: int, lanes: int) -> np.ndarray:
        """Read ``lanes`` consecutive int32 values."""
        segment = self.segment_of(addr, 4 * lanes)
        off = addr - segment.base
        return segment.raw[off: off + 4 * lanes].view(np.int32).copy()


def _align(addr: int, page: int = _PAGE) -> int:
    return (addr + page - 1) // page * page
