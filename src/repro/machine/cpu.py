"""Single-thread functional interpreter for the ISA subset.

The interpreter pre-compiles every static instruction into Python
closures (operand decoding, effective-address formation and segment
lookup are hoisted out of the execution loop) — the same just-in-time
trick the paper applies to SpMM, applied to the simulator itself.

Compilation is split from the run loop: :meth:`Cpu.semantics` compiles a
:class:`Program` into a :class:`ProgramSemantics` table holding, per
instruction, a *body* closure (pure architectural semantics, no event
accounting), the static counter *deltas* the instruction retires with,
and a composed *step* closure (body + accounting, returning the next
pc).  Both simulator backends share that one table: the per-instruction
interpreter (:meth:`Cpu.run`) walks the step list, while the
superblock-compiled backend (``fused=True``, see
:mod:`repro.machine.fused`) batches the bodies of each basic block into
a single closure with the counter bumps summed and hoisted, falling back
to per-instruction stepping only at block boundaries, odd entry points,
or when the execution-step limit is near.

Semantics notes (documented deviations, none observable by the kernels
this library generates):

* Integer registers hold exact Python integers; flags are computed from
  exact arithmetic rather than mod-2^64 wraparound.  Kernel arithmetic
  (addresses, indices, counters) never wraps.
* ``vfmadd231ps`` rounds twice (multiply then add) because numpy has no
  fused primitive; the float32 error is below the tolerances the tests
  and the paper's workloads care about.
* Scalar AVX ops zero the untouched upper lanes of the destination, as
  VEX-encoded scalar ops do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionLimitExceeded, MachineError
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem
from repro.isa.registers import GPR64, VectorRegister, gpr
from repro.machine.branch import make_predictor
from repro.machine.cache import CacheConfig, CacheHierarchy
from repro.machine.counters import Counters, make_bump
from repro.machine.memory import Memory
from repro.machine.pipeline import PipelineModel, PipelineSpec, ReplayInsn
from repro.machine.replay import ReplayEngine

__all__ = ["Cpu", "CpuConfig", "InsnSemantics", "ProgramSemantics"]

#: mnemonics retiring one FLOP per destination lane (FMAs retire two)
_FLOP_MNEMONICS = ("vaddps", "vsubps", "vmulps", "vdivps",
                   "vaddss", "vsubss", "vmulss", "vhaddps")

#: instructions between recorder flush-pressure checks in the run loop
#: (far below the recorder's event limit, far above per-instruction)
_FLUSH_CHECK_STRIDE = 4096


@dataclass(frozen=True)
class CpuConfig:
    """Fidelity and microarchitecture knobs for one simulated core.

    ``timing=False`` runs in *counts* mode: functional execution plus
    event counters only (no caches, no pipeline, cycles stay 0) — several
    times faster, used by tests that only check counts and results.
    With ``timing=True``, ``engine`` picks the timing implementation:
    ``"ref"`` interprets the cache/predictor/pipeline models per access
    (the reference path, the ``sim-ref`` backend), ``"replay"`` records
    a columnar trace and replays it through the vectorized models in
    :mod:`repro.machine.replay` — bit-identical counters, several times
    the simulated instruction throughput, and compatible with
    superblock-fused execution.  ``max_instructions`` bounds each
    thread's dynamic instruction count
    (:class:`repro.api.ExecutionConfig` exposes it as ``max_steps``).
    """

    timing: bool = True
    engine: str = "ref"
    predictor: str = "gshare"
    max_instructions: int = 500_000_000
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    l1: CacheConfig | None = None
    l2: CacheConfig | None = None

    def __post_init__(self) -> None:
        if self.engine not in ("ref", "replay"):
            raise ValueError(
                f"unknown timing engine {self.engine!r}; "
                "expected 'ref' or 'replay'")


class InsnSemantics:
    """Compiled closures + static metadata for one instruction.

    Attributes:
        step: Interpreter closure — executes the instruction including
            event accounting, returns the next pc.
        body: Pure architectural semantics (no counters, no pc) — the
            unit the superblock compiler fuses.  In record mode the
            body also appends the instruction's effective addresses to
            the trace.  None for control flow, whose pc decision cannot
            be fused away.
        deltas: Static counter increments this instruction retires with
            in counts fidelity, or None when execution-dependent state
            (caches, pipeline) makes accounting dynamic.
        replay: Static :class:`~repro.machine.pipeline.ReplayInsn`
            metadata for the trace-replay timing engine (record mode
            only; None otherwise).
    """

    __slots__ = ("step", "body", "deltas", "replay")

    def __init__(self, step, body=None, deltas=None, replay=None) -> None:
        self.step = step
        self.body = body
        self.deltas = deltas
        self.replay = replay


class ProgramSemantics:
    """The shared semantics table for one ``(cpu, program)`` pair."""

    __slots__ = ("insns", "steps")

    def __init__(self, insns: list[InsnSemantics],
                 steps: list | None = None) -> None:
        self.insns = insns
        self.steps = [sem.step for sem in insns] if steps is None else steps

    def __len__(self) -> int:
        return len(self.insns)


def _static_deltas(insn: Instruction, load_size: int, store_size: int,
                   extra: dict[str, int] | None = None) -> dict[str, int]:
    """The counter increments one retirement of ``insn`` contributes.

    Single source of truth for counts-fidelity accounting: both the
    per-instruction bump closure and the superblock batch sum are built
    from this dict, so they cannot drift apart.
    """
    name = insn.mnemonic
    deltas = {"instructions": 1}
    if load_size:
        deltas["memory_loads"] = 1
        deltas["loaded_bytes"] = load_size
    if store_size:
        deltas["memory_stores"] = 1
        deltas["stored_bytes"] = store_size
    if name.startswith("v"):
        deltas["simd_instructions"] = 1
    if name.startswith("vfmadd"):
        deltas["fma_instructions"] = 1
        deltas["flop"] = 2 * _dest_lanes(insn)
    elif name in _FLOP_MNEMONICS:
        deltas["flop"] = _dest_lanes(insn)
    for key, amount in (extra or {}).items():
        deltas[key] = deltas.get(key, 0) + amount
    return deltas


class Cpu:
    """One simulated hardware thread."""

    def __init__(
        self,
        memory: Memory,
        config: CpuConfig | None = None,
        counters: Counters | None = None,
    ) -> None:
        self.memory = memory
        self.config = config or CpuConfig()
        self.counters = counters or Counters()
        self.gpr: list[int] = [0] * 16
        self.vec = np.zeros((32, 16), dtype=np.float32)
        self.vec_i32 = self.vec.view(np.int32)
        self.zf = False
        self.sf = False
        self.cf = False
        self.predictor = make_predictor(self.config.predictor)
        self.record = self.config.timing and self.config.engine == "replay"
        self.replay: ReplayEngine | None = None
        if self.record:
            # record/replay timing: no per-access model objects — the
            # trace recorder stands in, and flush() runs the vectorized
            # cache / predictor / scoreboard models over the columns
            self.caches: CacheHierarchy | None = None
            self.pipeline: PipelineModel | None = None
            self.replay = ReplayEngine(
                self.counters, self.predictor, self.config.pipeline,
                l1=self.config.l1, l2=self.config.l2,
            )
        elif self.config.timing:
            kwargs = {}
            if self.config.l1 is not None:
                kwargs["l1"] = self.config.l1
            if self.config.l2 is not None:
                kwargs["l2"] = self.config.l2
            self.caches = CacheHierarchy(**kwargs)
            self.pipeline = PipelineModel(self.config.pipeline)
        else:
            self.caches = None
            self.pipeline = None
        # both caches are keyed on Program.fingerprint() — content
        # identity — never id(program): a collected program's id can be
        # reused by a new one, which would replay stale closures
        self._compiled: dict[str, ProgramSemantics] = {}
        self._superblocks: dict[str, list] = {}

    def reset_metrics(self) -> None:
        """Zero counters and restart the pipeline clock; keep caches and
        branch-predictor state (warm-run measurement, like the paper's
        average-of-ten methodology)."""
        if self.record:
            # retire any pending trace first: the warm-up pass's events
            # must warm the cache/predictor state before the counters
            # they produced are discarded
            self.replay.flush()
            self.counters.__init__()
            self.replay.reset_scoreboard()
            # compiled closures capture only the recorder lists (cleared
            # in place) and the counters object (re-initialized, same
            # identity), so they stay valid — no recompilation needed
            return
        self.counters.__init__()
        if self.config.timing:
            self.pipeline = PipelineModel(self.config.pipeline)
        self._compiled.clear()  # closures captured the old pipeline
        self._superblocks.clear()

    def disable_pipeline(self) -> None:
        """Drop to counts+caches fidelity (used for cheap warm-up passes).

        The next :meth:`reset_metrics` restores full timing fidelity.
        """
        if self.record:
            self.replay.flush()
            self.replay.scoreboard_enabled = False
            return
        self.pipeline = None
        self._compiled.clear()
        self._superblocks.clear()

    def flush_timing(self, set_cycles: bool = False) -> None:
        """Replay any recorded trace (no-op outside record mode).

        ``set_cycles=True`` additionally publishes the modeled cycle
        count into the counters — the record-mode analogue of reading
        ``pipeline.cycles`` at the end of a run.  Fault paths flush
        with ``set_cycles=False``: per-access interpretation leaves
        ``cycles`` unset when a run dies, and so does the replay.
        """
        if not self.record:
            return
        self.replay.flush()
        if set_cycles and self.replay.scoreboard_enabled:
            self.counters.cycles = self.replay.cycles

    # ------------------------------------------------------------------
    # Register access helpers (used by tests and the SMP wrapper)
    # ------------------------------------------------------------------
    def set_gpr(self, reg: GPR64 | str | int, value: int) -> None:
        code = reg.code if isinstance(reg, GPR64) else gpr(reg).code if isinstance(reg, str) else reg
        self.gpr[code] = int(value)

    def get_gpr(self, reg: GPR64 | str | int) -> int:
        code = reg.code if isinstance(reg, GPR64) else gpr(reg).code if isinstance(reg, str) else reg
        return self.gpr[code]

    def get_vec(self, reg: VectorRegister) -> np.ndarray:
        return self.vec[reg.code, : reg.lanes_f32].copy()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        init_gpr: dict | None = None,
        entry: int | str = 0,
        fuel: int | None = None,
        fused: bool = False,
    ) -> Counters:
        """Execute ``program`` until ``ret``; returns this CPU's counters.

        ``init_gpr`` maps registers (objects or names) to initial values,
        the simulated analogue of function arguments.  ``fuel`` bounds the
        dynamic instruction count (defaults to the config's limit).
        ``fused=True`` executes whole basic blocks at a time through the
        superblock compiler (counts fidelity only); results and counters
        are bit-identical to per-instruction stepping.
        """
        if init_gpr:
            for reg, value in init_gpr.items():
                self.set_gpr(reg, value)
        semantics = self.semantics(program)
        steps = semantics.steps
        blocks = self.superblocks(program) if fused else None
        replay = self.replay
        if replay is not None:
            replay.begin(program, semantics)
        pc = program.target_index(entry) if isinstance(entry, str) else entry
        limit = fuel if fuel is not None else self.config.max_instructions
        executed = 0
        n = len(steps)
        # flush-pressure watermark: the recorder only needs a bounded-
        # memory check every so often, so the hot loop compares one
        # local int instead of calling into the engine per instruction
        check_at = _FLUSH_CHECK_STRIDE if replay is not None else 1 << 62
        try:
            while 0 <= pc < n:
                if blocks is not None:
                    block = blocks[pc]
                    if block is not None and executed + block.length <= limit:
                        pc = block.run()
                        executed += block.length
                        if executed >= check_at:
                            check_at = executed + _FLUSH_CHECK_STRIDE
                            if replay.should_flush():
                                replay.flush()
                        continue
                pc = steps[pc]()
                executed += 1
                if executed > limit:
                    raise ExecutionLimitExceeded(
                        f"exceeded the {limit}-instruction execution limit in "
                        f"{program.name!r} (infinite loop?)"
                    )
                if executed >= check_at:
                    check_at = executed + _FLUSH_CHECK_STRIDE
                    if replay.should_flush():
                        replay.flush()
        except BaseException:
            # retire the completed prefix's timing so fault-time counters
            # are bit-identical to per-access interpretation
            self.flush_timing()
            raise
        if self.pipeline is not None:
            self.counters.cycles = self.pipeline.cycles
        else:
            self.flush_timing(set_cycles=True)
        return self.counters

    # ------------------------------------------------------------------
    # Instruction compilation
    # ------------------------------------------------------------------
    def semantics(self, program: Program) -> ProgramSemantics:
        """The compiled semantics table for ``program`` (cached)."""
        key = program.fingerprint()
        cached = self._compiled.get(key)
        if cached is not None:
            return cached
        table = ProgramSemantics([
            self._compile_insn(insn, index, program)
            for index, insn in enumerate(program.instructions)
        ])
        self._compiled[key] = table
        return table

    def _compile(self, program: Program) -> list:
        """Back-compat shim: the interpreter step list for ``program``."""
        return self.semantics(program).steps

    def superblocks(self, program: Program) -> list:
        """The superblock table for ``program`` (cached); see
        :func:`repro.machine.fused.build_block_table`."""
        if self.caches is not None:
            raise MachineError(
                "superblock execution models counts fidelity or "
                "record/replay timing; build the Cpu with timing=False "
                "or engine='replay' (the sim-ref backend steps per "
                "instruction)")
        key = program.fingerprint()
        table = self._superblocks.get(key)
        if table is None:
            from repro.machine.fused import build_block_table

            table = build_block_table(
                self.semantics(program), program, self.counters,
                recorder=self.replay.recorder if self.record else None,
            )
            self._superblocks[key] = table
        return table

    # -- operand access factories ---------------------------------------
    def _addr_fn(self, mem: Mem):
        gpr_state = self.gpr
        scale, disp = mem.scale, mem.disp
        base_code = mem.base.code if mem.base is not None else None
        index = mem.index
        if index is None:
            if disp == 0:
                return lambda: gpr_state[base_code]
            return lambda: gpr_state[base_code] + disp
        if isinstance(index, VectorRegister):
            raise MachineError("VSIB address used outside vgatherdps")
        idx_code = index.code
        if base_code is None:
            return lambda: gpr_state[idx_code] * scale + disp
        return lambda: gpr_state[base_code] + gpr_state[idx_code] * scale + disp

    def _seg_lookup_fn(self, size: int):
        """Per-call-site memoized segment lookup: addr -> (segment, offset)."""
        memory = self.memory
        cache: list = [None, 0, 0]  # segment, base, end

        def lookup(addr: int):
            if not (cache[1] <= addr and addr + size <= cache[2]):
                seg = memory.segment_of(addr, size)
                cache[0], cache[1], cache[2] = seg, seg.base, seg.end
            return cache[0]

        return lookup

    def _load_int_fn(self, mem: Mem):
        addr_fn = self._addr_fn(mem)
        size = mem.size
        lookup = self._seg_lookup_fn(size)
        if size == 8:
            def load() -> int:
                addr = addr_fn()
                seg = lookup(addr)
                off = addr - seg.base
                if not off & 7:
                    return int(seg.i64v[off >> 3])
                return int.from_bytes(seg.raw[off: off + 8].tobytes(), "little")
        elif size == 4:
            def load() -> int:
                addr = addr_fn()
                seg = lookup(addr)
                off = addr - seg.base
                if not off & 3:
                    return int(seg.i32v[off >> 2]) & 0xFFFFFFFF
                return int.from_bytes(seg.raw[off: off + 4].tobytes(), "little")
        else:
            raise MachineError(f"unsupported integer access size {size}")
        return load, addr_fn

    def _store_int_fn(self, mem: Mem):
        addr_fn = self._addr_fn(mem)
        size = mem.size
        lookup = self._seg_lookup_fn(size)

        def store(value: int) -> None:
            addr = addr_fn()
            seg = lookup(addr)
            off = addr - seg.base
            if size == 8 and not off & 7:
                wrapped = value & 0xFFFFFFFFFFFFFFFF
                seg.i64v[off >> 3] = (
                    wrapped - 0x10000000000000000
                    if wrapped >= 0x8000000000000000 else wrapped
                )
            elif size == 4 and not off & 3:
                seg.i32v[off >> 2] = np.int64(value & 0xFFFFFFFF).astype(np.int32)
            else:
                mask = (1 << (size * 8)) - 1
                seg.raw[off: off + size] = np.frombuffer(
                    (value & mask).to_bytes(size, "little"), np.uint8
                )

        return store, addr_fn

    def _load_f32_fn(self, mem: Mem, lanes: int):
        addr_fn = self._addr_fn(mem)
        lookup = self._seg_lookup_fn(4 * lanes)

        def load() -> np.ndarray:
            addr = addr_fn()
            seg = lookup(addr)
            off = addr - seg.base
            if not off & 3:
                lane0 = off >> 2
                return seg.f32v[lane0: lane0 + lanes]
            return np.frombuffer(
                seg.raw[off: off + 4 * lanes].tobytes(), np.float32
            )

        return load, addr_fn

    def _store_f32_fn(self, mem: Mem, lanes: int):
        addr_fn = self._addr_fn(mem)
        lookup = self._seg_lookup_fn(4 * lanes)

        def store(values: np.ndarray) -> None:
            addr = addr_fn()
            seg = lookup(addr)
            off = addr - seg.base
            if not off & 3:
                lane0 = off >> 2
                seg.f32v[lane0: lane0 + lanes] = values
            else:
                seg.raw[off: off + 4 * lanes] = np.asarray(
                    values, np.float32
                ).view(np.uint8)

        return store, addr_fn

    # -- accounting factories --------------------------------------------
    def _finish(
        self,
        insn: Instruction,
        body,
        nxt: int,
        load_addr_fn=None,
        load_size: int = 0,
        store_addr_fn=None,
        store_size: int = 0,
        extra: dict[str, int] | None = None,
    ) -> InsnSemantics:
        """Compose one straight-line instruction: body + accounting.

        In counts fidelity the accounting is a compiled static bump and
        the (body, deltas) pair is exposed for superblock fusion; in
        record mode the body additionally appends the instruction's
        effective addresses to the trace (computed after the body runs,
        exactly when the reference accounting computes them); in
        reference timing fidelity accounting touches caches and the
        pipeline per execution, so the step stays the only runnable
        form.
        """
        if self.caches is None:
            load = load_size if load_addr_fn is not None else 0
            store = store_size if store_addr_fn is not None else 0
            deltas = _static_deltas(insn, load, store, extra)
            bump = make_bump(self.counters, deltas)
            replay_insn = None
            if self.record:
                replay_insn = ReplayInsn(insn, load_size=load,
                                         store_size=store)
                body = self._recording_body(body, load_addr_fn,
                                            store_addr_fn)
                unit_append = self.replay.recorder.units.append
                unit = (nxt - 1, nxt)

                def step() -> int:
                    body()
                    bump()
                    unit_append(unit)
                    return nxt

                return InsnSemantics(step, body, deltas, replay_insn)

            def step() -> int:
                body()
                bump()
                return nxt

            return InsnSemantics(step, body, deltas)

        account = self._timing_account_fn(
            insn, load_addr_fn, load_size, store_addr_fn, store_size, extra
        )

        def step() -> int:
            body()
            account()
            return nxt

        return InsnSemantics(step, body)

    def _recording_body(self, body, load_addr_fn, store_addr_fn):
        """Wrap a pure body so it appends its effective addresses to the
        trace — in the order (loads, then stores) and at the time (after
        the body executed) the reference accounting touches the cache."""
        record = self.replay.recorder.addrs.append
        if load_addr_fn is not None and store_addr_fn is not None:
            def recording_body() -> None:
                body()
                record(load_addr_fn())
                record(store_addr_fn())
            return recording_body
        if load_addr_fn is not None:
            def recording_body() -> None:
                body()
                record(load_addr_fn())
            return recording_body
        if store_addr_fn is not None:
            def recording_body() -> None:
                body()
                record(store_addr_fn())
            return recording_body
        return body

    def _account_fn(self, insn: Instruction):
        """Accounting-only closure for instructions with no fusible body
        (control flow) — static bump in counts mode, cache/pipeline
        accounting in timing mode."""
        if self.caches is None:
            return make_bump(self.counters, _static_deltas(insn, 0, 0))
        return self._timing_account_fn(insn, None, 0, None, 0, None)

    def _timing_account_fn(
        self,
        insn: Instruction,
        load_addr_fn,
        load_size: int,
        store_addr_fn,
        store_size: int,
        extra: dict[str, int] | None,
    ):
        """Per-execution bookkeeping with cache and pipeline modeling."""
        counters = self.counters
        caches = self.caches
        is_simd = insn.mnemonic.startswith("v")
        is_fma = insn.mnemonic.startswith("vfmadd")
        flop = 0
        if is_fma:
            flop = 2 * _dest_lanes(insn)
        elif insn.mnemonic in _FLOP_MNEMONICS:
            flop = _dest_lanes(insn)
        # every extra delta (atomic_ops today, anything tomorrow) is
        # honored generically so the timing backend can never drift
        # from the counts-fidelity _static_deltas accounting
        extra_items = tuple(sorted((extra or {}).items()))

        cpu = self  # pipeline may be swapped out during warm-up passes

        def account() -> None:
            counters.instructions += 1
            if is_simd:
                counters.simd_instructions += 1
            if is_fma:
                counters.fma_instructions += 1
            counters.flop += flop
            for name, amount in extra_items:
                setattr(counters, name, getattr(counters, name) + amount)
            load_refs: tuple = ()
            store_refs: tuple = ()
            if load_addr_fn is not None:
                counters.memory_loads += 1
                counters.loaded_bytes += load_size
                addr = load_addr_fn()
                level = caches.access(addr, load_size)
                _count_level(counters, level)
                load_refs = ((level, addr >> 6),)
            if store_addr_fn is not None:
                counters.memory_stores += 1
                counters.stored_bytes += store_size
                addr = store_addr_fn()
                level = caches.access(addr, store_size)
                _count_level(counters, level)
                store_refs = ((level, addr >> 6),)
            if cpu.pipeline is not None:
                cpu.pipeline.issue(insn, load_refs=load_refs,
                                   store_refs=store_refs)

        return account

    # -- main translation --------------------------------------------------
    def _compile_insn(self, insn: Instruction, index: int,
                      program: Program) -> InsnSemantics:
        name = insn.mnemonic
        ops = insn.operands
        nxt = index + 1
        gpr_state = self.gpr
        counters = self.counters

        # ---------------- control flow ----------------
        if name == "ret":
            if self.record:
                bump = make_bump(counters,
                                 {"instructions": 1, "branches": 1})
                unit_append = self.replay.recorder.units.append
                unit = (index, index + 1)

                def step_ret_rec() -> int:
                    bump()
                    unit_append(unit)
                    return -1
                return InsnSemantics(step_ret_rec, replay=ReplayInsn(insn))
            account = self._account_fn(insn)

            def step_ret() -> int:
                account()
                counters.branches += 1
                return -1
            return InsnSemantics(step_ret)

        if name == "jmp":
            target = program.target_index(ops[0])
            if self.record:
                bump = make_bump(counters,
                                 {"instructions": 1, "branches": 1})
                unit_append = self.replay.recorder.units.append
                unit = (index, index + 1)

                def step_jmp_rec() -> int:
                    bump()
                    unit_append(unit)
                    return target
                return InsnSemantics(step_jmp_rec, replay=ReplayInsn(insn))
            account = self._account_fn(insn)

            def step_jmp() -> int:
                account()
                counters.branches += 1
                return target
            return InsnSemantics(step_jmp)

        if insn.is_cond_branch:
            return self._compile_jcc(insn, index, program)

        if name == "nop":
            def body_nop() -> None:
                return None
            return self._finish(insn, body_nop, nxt)

        # ---------------- integer ----------------
        if name == "mov":
            return self._compile_mov(insn, nxt)
        if name == "lea":
            dst_code = ops[0].code
            addr_fn = self._addr_fn(ops[1])

            def body_lea() -> None:
                gpr_state[dst_code] = addr_fn()
            return self._finish(insn, body_lea, nxt)
        if name in ("add", "sub", "and", "or", "xor", "imul"):
            return self._compile_alu(insn, nxt)
        if name in ("cmp", "test"):
            return self._compile_cmp(insn, nxt)
        if name in ("inc", "dec", "neg"):
            return self._compile_unary(insn, nxt)
        if name in ("shl", "shr", "sar"):
            return self._compile_shift(insn, nxt)
        if name == "xadd":
            return self._compile_xadd(insn, nxt)

        # ---------------- vector ----------------
        if name in ("vmovups", "vmovaps", "vmovdqu32", "vmovss"):
            return self._compile_vmov(insn, nxt)
        if name == "vxorps":
            return self._compile_vxorps(insn, nxt)
        if name in ("vbroadcastss", "vpbroadcastd"):
            return self._compile_broadcast(insn, nxt)
        if name in ("vaddps", "vsubps", "vmulps", "vdivps", "vpaddd", "vpmulld"):
            return self._compile_vec3(insn, nxt)
        if name in ("vaddss", "vsubss", "vmulss"):
            return self._compile_vec3_scalar(insn, nxt)
        if name in ("vfmadd231ps", "vfmadd231ss"):
            return self._compile_fma(insn, nxt)
        if name == "vhaddps":
            return self._compile_vhaddps(insn, nxt)
        if name in ("vextractf128", "vextractf64x4"):
            return self._compile_extract(insn, nxt)
        if name == "vpslld":
            return self._compile_vpslld(insn, nxt)
        if name == "vgatherdps":
            return self._compile_gather(insn, nxt)

        raise MachineError(f"no interpreter for instruction: {insn}")

    # ------------------------------------------------------------------
    def _compile_jcc(self, insn: Instruction, index: int,
                     program: Program) -> InsnSemantics:
        target = program.target_index(insn.operands[0])
        nxt = index + 1
        name = insn.mnemonic
        cpu = self
        counters = self.counters
        predictor = self.predictor
        pipeline = self.pipeline

        conditions = {
            "je": lambda: cpu.zf,
            "jne": lambda: not cpu.zf,
            "jl": lambda: cpu.sf,
            "jge": lambda: not cpu.sf,
            "jle": lambda: cpu.sf or cpu.zf,
            "jg": lambda: not (cpu.sf or cpu.zf),
            "jb": lambda: cpu.cf,
            "jae": lambda: not cpu.cf,
            "jbe": lambda: cpu.cf or cpu.zf,
            "ja": lambda: not (cpu.cf or cpu.zf),
        }
        cond = conditions[name]

        if self.record:
            # no live predictor update: the taken bit is recorded and the
            # replay sweep classifies (and counts) mispredictions
            recorder = self.replay.recorder
            unit_append = recorder.units.append
            branch_append = recorder.branches.append
            unit = (index, index + 1)
            packed_base = index << 1
            bump = make_bump(counters, {"instructions": 1, "branches": 1,
                                        "cond_branches": 1})

            def step_jcc_rec() -> int:
                taken = cond()
                bump()
                branch_append(packed_base | 1 if taken else packed_base)
                unit_append(unit)
                return target if taken else nxt

            return InsnSemantics(step_jcc_rec, replay=ReplayInsn(insn))

        if pipeline is None:
            def step_jcc() -> int:
                taken = cond()
                counters.instructions += 1
                counters.branches += 1
                counters.cond_branches += 1
                if not predictor.update(index, taken):
                    counters.branch_misses += 1
                return target if taken else nxt
            return InsnSemantics(step_jcc)

        def step_jcc_timed() -> int:
            taken = cond()
            counters.instructions += 1
            counters.branches += 1
            counters.cond_branches += 1
            correct = predictor.update(index, taken)
            if not correct:
                counters.branch_misses += 1
            pipeline.issue(insn, mispredicted=not correct)
            return target if taken else nxt

        return InsnSemantics(step_jcc_timed)

    def _compile_mov(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, src = insn.operands
        gpr_state = self.gpr

        if isinstance(dst, GPR64) and isinstance(src, Imm):
            value = src.value
            code = dst.code

            def body() -> None:
                gpr_state[code] = value
            return self._finish(insn, body, nxt)
        if isinstance(dst, GPR64) and isinstance(src, GPR64):
            dcode, scode = dst.code, src.code

            def body() -> None:
                gpr_state[dcode] = gpr_state[scode]
            return self._finish(insn, body, nxt)
        if isinstance(dst, GPR64) and isinstance(src, Mem):
            load, addr_fn = self._load_int_fn(src)
            code = dst.code

            def body() -> None:
                gpr_state[code] = load()
            return self._finish(insn, body, nxt,
                                load_addr_fn=addr_fn, load_size=src.size)
        if isinstance(dst, Mem) and isinstance(src, GPR64):
            store, addr_fn = self._store_int_fn(dst)
            code = src.code

            def body() -> None:
                store(gpr_state[code])
            return self._finish(insn, body, nxt,
                                store_addr_fn=addr_fn, store_size=dst.size)
        if isinstance(dst, Mem) and isinstance(src, Imm):
            store, addr_fn = self._store_int_fn(dst)
            value = src.value

            def body() -> None:
                store(value)
            return self._finish(insn, body, nxt,
                                store_addr_fn=addr_fn, store_size=dst.size)
        raise MachineError(f"unsupported mov form: {insn}")

    def _compile_alu(self, insn: Instruction, nxt: int) -> InsnSemantics:
        name = insn.mnemonic
        ops = insn.operands
        gpr_state = self.gpr
        cpu = self

        if not isinstance(ops[0], GPR64):
            raise MachineError(f"ALU destination must be a register: {insn}")
        dcode = ops[0].code

        if name == "imul" and len(ops) == 3:
            src, imm = ops[1], ops[2]
            if not isinstance(src, GPR64) or not isinstance(imm, Imm):
                raise MachineError(f"unsupported imul form: {insn}")
            scode, k = src.code, imm.value

            def body() -> None:
                value = gpr_state[scode] * k
                gpr_state[dcode] = value
                cpu.zf, cpu.sf, cpu.cf = value == 0, value < 0, False
            return self._finish(insn, body, nxt)

        src = ops[1]
        operations = {
            "add": lambda a, b: a + b,
            "sub": lambda a, b: a - b,
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: a ^ b,
            "imul": lambda a, b: a * b,
        }
        op = operations[name]
        is_sub = name == "sub"

        if isinstance(src, Imm):
            k = src.value

            def body() -> None:
                a = gpr_state[dcode]
                value = op(a, k)
                gpr_state[dcode] = value
                cpu.zf, cpu.sf = value == 0, value < 0
                cpu.cf = a < k if is_sub else False
            return self._finish(insn, body, nxt)
        if isinstance(src, GPR64):
            scode = src.code

            def body() -> None:
                a = gpr_state[dcode]
                b = gpr_state[scode]
                value = op(a, b)
                gpr_state[dcode] = value
                cpu.zf, cpu.sf = value == 0, value < 0
                cpu.cf = a < b if is_sub else False
            return self._finish(insn, body, nxt)
        if isinstance(src, Mem):
            load, addr_fn = self._load_int_fn(src)

            def body() -> None:
                a = gpr_state[dcode]
                b = load()
                value = op(a, b)
                gpr_state[dcode] = value
                cpu.zf, cpu.sf = value == 0, value < 0
                cpu.cf = a < b if is_sub else False
            return self._finish(insn, body, nxt,
                                load_addr_fn=addr_fn, load_size=src.size)
        raise MachineError(f"unsupported {name} form: {insn}")

    def _compile_cmp(self, insn: Instruction, nxt: int) -> InsnSemantics:
        a_op, b_op = insn.operands
        gpr_state = self.gpr
        cpu = self
        is_test = insn.mnemonic == "test"

        def value_fn(op):
            if isinstance(op, GPR64):
                code = op.code
                return (lambda: gpr_state[code]), None, 0
            if isinstance(op, Imm):
                k = op.value
                return (lambda: k), None, 0
            if isinstance(op, Mem):
                load, addr_fn = self._load_int_fn(op)
                return load, addr_fn, op.size
            raise MachineError(f"unsupported compare operand: {op}")

        a_fn, a_addr, a_size = value_fn(a_op)
        b_fn, b_addr, b_size = value_fn(b_op)
        load_addr = a_addr or b_addr
        load_size = a_size or b_size

        if is_test:
            def body() -> None:
                value = a_fn() & b_fn()
                cpu.zf, cpu.sf, cpu.cf = value == 0, value < 0, False
        else:
            def body() -> None:
                a, b = a_fn(), b_fn()
                cpu.zf, cpu.sf, cpu.cf = a == b, a < b, a < b
        return self._finish(insn, body, nxt,
                            load_addr_fn=load_addr, load_size=load_size)

    def _compile_unary(self, insn: Instruction, nxt: int) -> InsnSemantics:
        (dst,) = insn.operands
        if not isinstance(dst, GPR64):
            raise MachineError(f"unary op destination must be a register: {insn}")
        gpr_state = self.gpr
        cpu = self
        code = dst.code
        name = insn.mnemonic

        if name == "inc":
            def body() -> None:
                value = gpr_state[code] + 1
                gpr_state[code] = value
                cpu.zf, cpu.sf = value == 0, value < 0
        elif name == "dec":
            def body() -> None:
                value = gpr_state[code] - 1
                gpr_state[code] = value
                cpu.zf, cpu.sf = value == 0, value < 0
        else:  # neg
            def body() -> None:
                value = -gpr_state[code]
                gpr_state[code] = value
                cpu.zf, cpu.sf = value == 0, value < 0
                cpu.cf = value != 0
        return self._finish(insn, body, nxt)

    def _compile_shift(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, amount = insn.operands
        if not isinstance(dst, GPR64) or not isinstance(amount, Imm):
            raise MachineError(f"unsupported shift form: {insn}")
        gpr_state = self.gpr
        cpu = self
        code, k = dst.code, amount.value
        name = insn.mnemonic

        if name == "shl":
            def body() -> None:
                value = gpr_state[code] << k
                gpr_state[code] = value
                cpu.zf, cpu.sf = value == 0, value < 0
        else:  # shr/sar agree on non-negative values; we never shift negatives
            def body() -> None:
                value = gpr_state[code] >> k
                gpr_state[code] = value
                cpu.zf, cpu.sf = value == 0, value < 0
        return self._finish(insn, body, nxt)

    def _compile_xadd(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, src = insn.operands
        if not isinstance(dst, Mem) or not isinstance(src, GPR64):
            raise MachineError(f"unsupported xadd form: {insn}")
        load, addr_fn = self._load_int_fn(dst)
        store, _ = self._store_int_fn(dst)
        gpr_state = self.gpr
        cpu = self
        scode = src.code

        def body() -> None:
            old = load()
            total = old + gpr_state[scode]
            store(total)
            gpr_state[scode] = old
            cpu.zf, cpu.sf, cpu.cf = total == 0, total < 0, False
        return self._finish(
            insn, body, nxt,
            load_addr_fn=addr_fn, load_size=dst.size,
            store_addr_fn=addr_fn, store_size=dst.size,
            extra={"atomic_ops": 1},
        )

    # ------------------------------------------------------------------
    # Vector handlers
    # ------------------------------------------------------------------
    def _compile_vmov(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, src = insn.operands
        vec = self.vec
        name = insn.mnemonic
        scalar = name == "vmovss"

        if isinstance(dst, VectorRegister) and isinstance(src, Mem):
            lanes = 1 if scalar else dst.lanes_f32
            load, addr_fn = self._load_f32_fn(src, lanes)
            code = dst.code

            def body() -> None:
                row = vec[code]
                row[:] = 0.0
                row[:lanes] = load()
            return self._finish(insn, body, nxt,
                                load_addr_fn=addr_fn, load_size=4 * lanes)
        if isinstance(dst, Mem) and isinstance(src, VectorRegister):
            lanes = 1 if scalar else src.lanes_f32
            store, addr_fn = self._store_f32_fn(dst, lanes)
            code = src.code

            def body() -> None:
                store(vec[code, :lanes])
            return self._finish(insn, body, nxt,
                                store_addr_fn=addr_fn, store_size=4 * lanes)
        if isinstance(dst, VectorRegister) and isinstance(src, VectorRegister):
            lanes = 1 if scalar else max(dst.lanes_f32, src.lanes_f32)
            dcode, scode = dst.code, src.code

            def body() -> None:
                row = vec[dcode]
                row[:] = 0.0
                row[:lanes] = vec[scode, :lanes]
            return self._finish(insn, body, nxt)
        raise MachineError(f"unsupported {name} form: {insn}")

    def _compile_vxorps(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, a, b = insn.operands
        vec_i32 = self.vec_i32
        vec = self.vec
        lanes = dst.lanes_f32
        dcode = dst.code

        if isinstance(a, VectorRegister) and isinstance(b, VectorRegister):
            if a.code == b.code:
                def body() -> None:
                    vec[dcode, :] = 0.0
                return self._finish(insn, body, nxt)
            acode, bcode = a.code, b.code

            def body() -> None:
                vec_i32[dcode, :] = 0
                vec_i32[dcode, :lanes] = vec_i32[acode, :lanes] ^ vec_i32[bcode, :lanes]
            return self._finish(insn, body, nxt)
        raise MachineError(f"unsupported vxorps form: {insn}")

    def _compile_broadcast(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, src = insn.operands
        vec = self.vec
        vec_i32 = self.vec_i32
        lanes = dst.lanes_f32
        dcode = dst.code
        is_int = insn.mnemonic == "vpbroadcastd"

        if isinstance(src, Mem):
            if is_int:
                load, addr_fn = self._load_int_fn(src)

                def body() -> None:
                    vec_i32[dcode, :] = 0
                    vec_i32[dcode, :lanes] = load()
            else:
                load, addr_fn = self._load_f32_fn(src, 1)

                def body() -> None:
                    vec[dcode, :] = 0.0
                    vec[dcode, :lanes] = load()[0]
            return self._finish(insn, body, nxt,
                                load_addr_fn=addr_fn, load_size=4)
        if isinstance(src, VectorRegister):
            scode = src.code

            if is_int:
                def body() -> None:
                    vec_i32[dcode, :] = 0
                    vec_i32[dcode, :lanes] = vec_i32[scode, 0]
            else:
                def body() -> None:
                    vec[dcode, :] = 0.0
                    vec[dcode, :lanes] = vec[scode, 0]
            return self._finish(insn, body, nxt)
        raise MachineError(f"unsupported broadcast form: {insn}")

    def _compile_vec3(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, a, b = insn.operands
        vec = self.vec
        vec_i32 = self.vec_i32
        lanes = dst.lanes_f32
        dcode, acode = dst.code, a.code
        name = insn.mnemonic
        is_int = name in ("vpaddd", "vpmulld")
        state = vec_i32 if is_int else vec

        float_ops = {
            "vaddps": np.add, "vsubps": np.subtract,
            "vmulps": np.multiply, "vdivps": np.divide,
            "vpaddd": np.add, "vpmulld": np.multiply,
        }
        op = float_ops[name]

        if isinstance(b, VectorRegister):
            bcode = b.code

            def body() -> None:
                result = op(state[acode, :lanes], state[bcode, :lanes])
                state[dcode, lanes:] = 0
                state[dcode, :lanes] = result
            return self._finish(insn, body, nxt)
        if isinstance(b, Mem):
            if is_int:
                raise MachineError(f"memory form not supported: {insn}")
            load, addr_fn = self._load_f32_fn(b, lanes)

            def body() -> None:
                result = op(state[acode, :lanes], load())
                state[dcode, lanes:] = 0
                state[dcode, :lanes] = result
            return self._finish(insn, body, nxt,
                                load_addr_fn=addr_fn, load_size=4 * lanes)
        raise MachineError(f"unsupported {name} form: {insn}")

    def _compile_vec3_scalar(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, a, b = insn.operands
        vec = self.vec
        dcode, acode = dst.code, a.code
        name = insn.mnemonic
        ops = {"vaddss": np.float32.__add__, "vsubss": np.float32.__sub__,
               "vmulss": np.float32.__mul__}
        op = ops[name]

        if isinstance(b, VectorRegister):
            bcode = b.code

            def body() -> None:
                value = op(np.float32(vec[acode, 0]), np.float32(vec[bcode, 0]))
                row = vec[dcode]
                upper = vec[acode, 1:4].copy()
                row[:] = 0.0
                row[0] = value
                row[1:4] = upper
            return self._finish(insn, body, nxt)
        if isinstance(b, Mem):
            load, addr_fn = self._load_f32_fn(b, 1)

            def body() -> None:
                value = op(np.float32(vec[acode, 0]), np.float32(load()[0]))
                row = vec[dcode]
                upper = vec[acode, 1:4].copy()
                row[:] = 0.0
                row[0] = value
                row[1:4] = upper
            return self._finish(insn, body, nxt,
                                load_addr_fn=addr_fn, load_size=4)
        raise MachineError(f"unsupported {name} form: {insn}")

    def _compile_fma(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, a, b = insn.operands
        vec = self.vec
        scalar = insn.mnemonic == "vfmadd231ss"
        lanes = 1 if scalar else dst.lanes_f32
        dcode, acode = dst.code, a.code

        if isinstance(b, VectorRegister):
            bcode = b.code

            def body() -> None:
                vec[dcode, :lanes] += vec[acode, :lanes] * vec[bcode, :lanes]
            return self._finish(insn, body, nxt)
        if isinstance(b, Mem):
            load, addr_fn = self._load_f32_fn(b, lanes)

            def body() -> None:
                vec[dcode, :lanes] += vec[acode, :lanes] * load()
            return self._finish(insn, body, nxt,
                                load_addr_fn=addr_fn, load_size=4 * lanes)
        raise MachineError(f"unsupported fma form: {insn}")

    def _compile_vhaddps(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, a, b = insn.operands
        if dst.width != 128:
            raise MachineError("vhaddps supported for xmm only in this subset")
        vec = self.vec
        dcode, acode, bcode = dst.code, a.code, b.code

        def body() -> None:
            av = vec[acode, :4]
            bv = vec[bcode, :4]
            result = np.array(
                [av[0] + av[1], av[2] + av[3], bv[0] + bv[1], bv[2] + bv[3]],
                dtype=np.float32,
            )
            row = vec[dcode]
            row[:] = 0.0
            row[:4] = result
        return self._finish(insn, body, nxt)

    def _compile_extract(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, src, imm = insn.operands
        if not isinstance(dst, VectorRegister):
            raise MachineError("memory destination extract unsupported")
        out_lanes = 4 if insn.mnemonic == "vextractf128" else 8
        offset = imm.value * out_lanes
        vec = self.vec
        dcode, scode = dst.code, src.code

        def body() -> None:
            chunk = vec[scode, offset: offset + out_lanes].copy()
            row = vec[dcode]
            row[:] = 0.0
            row[:out_lanes] = chunk
        return self._finish(insn, body, nxt)

    def _compile_vpslld(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, src, imm = insn.operands
        vec_i32 = self.vec_i32
        lanes = dst.lanes_f32
        dcode, scode, k = dst.code, src.code, imm.value

        def body() -> None:
            result = vec_i32[scode, :lanes] << k
            vec_i32[dcode, :] = 0
            vec_i32[dcode, :lanes] = result
        return self._finish(insn, body, nxt)

    def _compile_gather(self, insn: Instruction, nxt: int) -> InsnSemantics:
        dst, mem = insn.operands
        if not mem.is_gather or mem.base is None:
            raise MachineError(f"vgatherdps needs base + vector index: {insn}")
        vec = self.vec
        vec_i32 = self.vec_i32
        lanes = dst.lanes_f32
        dcode = dst.code
        icode = mem.index.code
        scale, disp = mem.scale, mem.disp
        base_code = mem.base.code
        gpr_state = self.gpr
        memory = self.memory
        counters = self.counters
        caches = self.caches

        def body() -> None:
            base = gpr_state[base_code] + disp
            indices = vec_i32[icode, :lanes]
            row = vec[dcode]
            row[lanes:] = 0.0
            for lane in range(lanes):
                addr = base + int(indices[lane]) * scale
                seg = memory.segment_of(addr, 4)
                off = addr - seg.base
                row[lane] = seg.f32v[off >> 2] if not off & 3 else np.frombuffer(
                    seg.raw[off: off + 4].tobytes(), np.float32
                )[0]

        if caches is None:
            deltas = {
                "instructions": 1, "simd_instructions": 1,
                "memory_loads": lanes, "loaded_bytes": 4 * lanes,
                "gather_elements": lanes,
            }
            bump = make_bump(counters, deltas)
            if self.record:
                # per-lane address recording interleaved with the lane
                # reads, mirroring the reference timed step: a lane's
                # address is recorded only once its read succeeded, so a
                # mid-gather fault leaves exactly the completed lanes'
                # cache events in the trace
                record = self.replay.recorder.addrs.append
                unit_append = self.replay.recorder.units.append
                unit = (nxt - 1, nxt)

                def body_rec() -> None:
                    base = gpr_state[base_code] + disp
                    indices = vec_i32[icode, :lanes]
                    row = vec[dcode]
                    row[lanes:] = 0.0
                    for lane in range(lanes):
                        addr = base + int(indices[lane]) * scale
                        seg = memory.segment_of(addr, 4)
                        off = addr - seg.base
                        row[lane] = (seg.f32v[off >> 2] if not off & 3
                                     else np.frombuffer(
                                         seg.raw[off: off + 4].tobytes(),
                                         np.float32)[0])
                        record(addr)

                def step_rec() -> int:
                    body_rec()
                    bump()
                    unit_append(unit)
                    return nxt
                return InsnSemantics(step_rec, body_rec, deltas,
                                     ReplayInsn(insn, gather_lanes=lanes))

            def step() -> int:
                body()
                bump()
                return nxt
            return InsnSemantics(step, body, deltas)

        cpu = self  # pipeline may be swapped out during warm-up passes

        def step_timed() -> int:
            base = gpr_state[base_code] + disp
            indices = vec_i32[icode, :lanes]
            refs = []
            row = vec[dcode]
            row[lanes:] = 0.0
            for lane in range(lanes):
                addr = base + int(indices[lane]) * scale
                seg = memory.segment_of(addr, 4)
                off = addr - seg.base
                row[lane] = seg.f32v[off >> 2] if not off & 3 else np.frombuffer(
                    seg.raw[off: off + 4].tobytes(), np.float32
                )[0]
                level = caches.access(addr, 4)
                _count_level(counters, level)
                refs.append((level, addr >> 6))
            counters.instructions += 1
            counters.simd_instructions += 1
            counters.memory_loads += lanes
            counters.loaded_bytes += 4 * lanes
            counters.gather_elements += lanes
            if cpu.pipeline is not None:
                cpu.pipeline.issue(insn, load_refs=tuple(refs),
                                   gather_lanes=lanes)
            return nxt
        return InsnSemantics(step_timed, body)


def _dest_lanes(insn: Instruction) -> int:
    op = insn.operands[0]
    if isinstance(op, VectorRegister):
        if insn.mnemonic.endswith("ss"):
            return 1
        return op.lanes_f32
    return 1


def _count_level(counters: Counters, level: str) -> None:
    if level == "l1":
        counters.l1_hits += 1
    elif level == "l2":
        counters.l1_misses += 1
        counters.l2_hits += 1
    else:
        counters.l1_misses += 1
        counters.l2_misses += 1
