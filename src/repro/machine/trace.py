"""Execution tracing: a perf-record-like facility for the simulator.

Wraps a :class:`Cpu` so every retired instruction is appended to a
bounded trace with its program counter, disassembly, and running event
counts.  Useful for debugging generated kernels ("why is this branch
always mispredicted?") and for teaching — the examples print annotated
traces of the paper's Listing-2 inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.assembler import Program
from repro.machine.cpu import Cpu

__all__ = ["TraceEntry", "Tracer"]


@dataclass(frozen=True)
class TraceEntry:
    """One retired instruction."""

    seq: int
    pc: int
    text: str
    cycles: float

    def __str__(self) -> str:
        return f"{self.seq:8d}  pc={self.pc:5d}  cyc={self.cycles:12,.1f}  {self.text}"


@dataclass
class Tracer:
    """Bounded instruction trace recorder for one CPU.

    Attributes:
        limit: Keep at most this many most-recent entries (ring buffer
            semantics; old entries are dropped).
    """

    cpu: Cpu
    limit: int = 10_000
    entries: list[TraceEntry] = field(default_factory=list)
    _installed: bool = False

    def run(self, program: Program, **kwargs) -> None:
        """Execute ``program`` on the wrapped CPU, recording the trace.

        Execution is always per-instruction: superblocks run unwrapped
        bodies, which would silently drop fused instructions from the
        trace, so a ``fused=True`` request is rejected rather than
        producing a misleading partial recording.
        """
        from repro.machine.cpu import ProgramSemantics

        if kwargs.pop("fused", False):
            raise ValueError(
                "Tracer records per-retired-instruction; superblock "
                "execution (fused=True) would bypass the trace hooks")
        semantics = self.cpu.semantics(program)
        texts = [str(insn) for insn in program.instructions]
        wrapped = [self._wrap(step, pc, texts[pc])
                   for pc, step in enumerate(semantics.steps)]
        # temporarily substitute the compiled steps (the cache is keyed
        # on content fingerprint, not object identity)
        key = program.fingerprint()
        self.cpu._compiled[key] = ProgramSemantics(semantics.insns,
                                                   steps=wrapped)
        try:
            self.cpu.run(program, **kwargs)
        finally:
            self.cpu._compiled.pop(key, None)

    def _wrap(self, step, pc: int, text: str):
        entries = self.entries
        limit = self.limit
        cpu = self.cpu

        def traced() -> int:
            nxt = step()
            cycles = cpu.pipeline.cycles if cpu.pipeline is not None else 0.0
            entries.append(TraceEntry(len(entries), pc, text, cycles))
            if len(entries) > 2 * limit:
                del entries[:limit]
            return nxt

        return traced

    def tail(self, count: int = 20) -> list[TraceEntry]:
        return self.entries[-count:]

    def render(self, count: int = 20) -> str:
        return "\n".join(str(entry) for entry in self.tail(count))

    def histogram(self) -> dict[str, int]:
        """Dynamic mnemonic histogram of the recorded window."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            mnemonic = entry.text.split()[0]
            if mnemonic == "lock":
                mnemonic = "lock " + entry.text.split()[1]
            counts[mnemonic] = counts.get(mnemonic, 0) + 1
        return counts
