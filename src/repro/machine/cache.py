"""Set-associative cache hierarchy (L1D + L2) with LRU replacement.

The coarse-grain column-merging argument in the paper (§IV-C.2, Fig. 7)
is about spatial locality: CCM walks ``X[k][0:d]`` sequentially instead of
striding across rows, "leading to a reduction in cache misses".  This
model makes that effect measurable: accesses are classified as L1 hit,
L2 hit, or memory, and the pipeline model turns the classification into
load-to-use latency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["Cache", "CacheConfig", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"cache geometry must give a power-of-two set count, got {sets}"
            )
        return sets


class Cache:
    """One set-associative, write-allocate, LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    def access(self, line_addr: int) -> bool:
        """Touch one cache line; returns True on hit."""
        index = line_addr & self._set_mask
        ways = self._sets[index]
        if line_addr in ways:
            ways.move_to_end(line_addr)
            return True
        ways[line_addr] = None
        if len(ways) > self.config.ways:
            ways.popitem(last=False)
        return False

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()


#: Default geometry: Skylake-SP-like (the paper's Xeon Gold 6126).
L1_DEFAULT = CacheConfig(size_bytes=32 * 1024, ways=8)
L2_DEFAULT = CacheConfig(size_bytes=1024 * 1024, ways=16)


class CacheHierarchy:
    """Two-level private cache; classifies each access as l1/l2/mem."""

    LEVELS = ("l1", "l2", "mem")

    def __init__(
        self,
        l1: CacheConfig = L1_DEFAULT,
        l2: CacheConfig = L2_DEFAULT,
    ) -> None:
        self.l1 = Cache(l1)
        self.l2 = Cache(l2)

    def access(self, addr: int, size: int) -> str:
        """Access ``[addr, addr+size)``; returns the serving level.

        A straddling access touches every line it covers; the returned
        level is the worst (slowest) one touched, which is what the
        load-to-use latency depends on.
        """
        first = self.l1.line_of(addr)
        last = self.l1.line_of(addr + max(size, 1) - 1)
        worst = "l1"
        for line in range(first, last + 1):
            if self.l1.access(line):
                continue
            if self.l2.access(line):
                worst = "l2" if worst == "l1" else worst
            else:
                worst = "mem"
        return worst

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
