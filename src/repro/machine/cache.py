"""Set-associative cache hierarchy (L1D + L2) with LRU replacement.

The coarse-grain column-merging argument in the paper (§IV-C.2, Fig. 7)
is about spatial locality: CCM walks ``X[k][0:d]`` sequentially instead of
striding across rows, "leading to a reduction in cache misses".  This
model makes that effect measurable: accesses are classified as L1 hit,
L2 hit, or memory, and the pipeline model turns the classification into
load-to-use latency.

Two engines implement the same model:

* :class:`Cache` / :class:`CacheHierarchy` — the per-access reference
  (one ``OrderedDict`` LRU touch per line), used by the ``sim-ref``
  backend and as the conformance oracle.
* :class:`VectorCache` / :class:`VectorCacheHierarchy` — the array
  engine the trace-replay backends use: per-set way matrices of tags
  with integer age counters, classifying whole address vectors in
  batched numpy sweeps.  Exact-LRU semantics are preserved, so hit/miss
  streams — and therefore every derived counter — are bit-identical to
  the reference (property-tested over randomized address streams).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "VectorCache",
    "VectorCacheHierarchy",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"cache geometry must give a power-of-two set count, got {sets}"
            )
        return sets


class Cache:
    """One set-associative, write-allocate, LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    def access(self, line_addr: int) -> bool:
        """Touch one cache line; returns True on hit."""
        index = line_addr & self._set_mask
        ways = self._sets[index]
        if line_addr in ways:
            ways.move_to_end(line_addr)
            return True
        ways[line_addr] = None
        if len(ways) > self.config.ways:
            ways.popitem(last=False)
        return False

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()


#: Default geometry: Skylake-SP-like (the paper's Xeon Gold 6126).
L1_DEFAULT = CacheConfig(size_bytes=32 * 1024, ways=8)
L2_DEFAULT = CacheConfig(size_bytes=1024 * 1024, ways=16)


class CacheHierarchy:
    """Two-level private cache; classifies each access as l1/l2/mem."""

    LEVELS = ("l1", "l2", "mem")

    def __init__(
        self,
        l1: CacheConfig = L1_DEFAULT,
        l2: CacheConfig = L2_DEFAULT,
    ) -> None:
        self.l1 = Cache(l1)
        self.l2 = Cache(l2)

    def access(self, addr: int, size: int) -> str:
        """Access ``[addr, addr+size)``; returns the serving level.

        A straddling access touches every line it covers; the returned
        level is the worst (slowest) one touched, which is what the
        load-to-use latency depends on.
        """
        first = self.l1.line_of(addr)
        last = self.l1.line_of(addr + max(size, 1) - 1)
        worst = "l1"
        for line in range(first, last + 1):
            if self.l1.access(line):
                continue
            if self.l2.access(line):
                worst = "l2" if worst == "l1" else worst
            else:
                worst = "mem"
        return worst

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()


# ----------------------------------------------------------------------
# Array-based replay engine
# ----------------------------------------------------------------------
#: below this many simultaneously-active sets a numpy wave costs more in
#: dispatch overhead than exact list work, so replay switches to the
#: per-set list tail
_WAVE_MIN_SETS = 32


class VectorCache:
    """One cache level as per-set way matrices with age counters.

    State is three arrays: ``tags[set, way]`` (line address, -1 empty),
    ``age[set, way]`` (per-set last-use sequence number, -1 empty) and
    ``clock[set]`` (the per-set sequence counter).  A hit re-stamps the
    way with the current clock (``move_to_end``); a miss replaces the
    way with the minimum age (the least-recently-used line, or an empty
    way, which carries age -1).  That is exactly the reference
    :class:`Cache`'s ``OrderedDict`` discipline — only the line *set* and
    recency order are semantic, not the way a line happens to occupy.

    :meth:`replay` classifies a whole line-address vector at once: the
    stream is stably bucketed by set index, then processed in waves —
    the j-th access of every set is handled simultaneously with a few
    numpy operations over ``[active_sets, ways]`` matrices — so the
    per-access Python dispatch of the reference engine is hoisted into
    a handful of array sweeps per wave.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        num_sets = config.num_sets
        self._set_mask = num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._tags = np.full((num_sets, config.ways), -1, dtype=np.int64)
        self._age = np.full((num_sets, config.ways), -1, dtype=np.int64)
        self._clock = 0

    def replay(self, lines: np.ndarray) -> np.ndarray:
        """Touch every line in ``lines`` (in order); returns hit flags."""
        n = lines.size
        hits = np.empty(n, dtype=bool)
        if not n:
            return hits
        sets = lines & self._set_mask
        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        sorted_lines = lines[order]
        hits_sorted = np.empty(n, dtype=bool)
        # Collapse consecutive touches of the same line within a set:
        # the repeat is a guaranteed hit, and because nothing intervened
        # in that set, skipping its re-stamp preserves the set's exact
        # recency order.  Spatially-local streams (a kernel walking an
        # array 8 bytes at a time touches each 64-byte line 8 times in
        # a row) collapse several-fold, shrinking the wave count.
        dup = np.zeros(n, dtype=bool)
        dup[1:] = ((sorted_sets[1:] == sorted_sets[:-1])
                   & (sorted_lines[1:] == sorted_lines[:-1]))
        hits_sorted[dup] = True
        kept = np.flatnonzero(~dup)
        kept_sets = sorted_sets[kept]
        kept_lines = sorted_lines[kept]
        k = kept.size
        # run boundaries of the per-set buckets in the kept stream
        starts = np.flatnonzero(np.diff(kept_sets)) + 1
        starts = np.concatenate(([0], starts))
        bucket_sets = kept_sets[starts]
        counts = np.diff(np.concatenate((starts, [k])))
        # longest buckets first: each wave then works on a contiguous
        # prefix instead of re-filtering with a boolean mask
        desc = np.argsort(-counts, kind="stable")
        starts = starts[desc]
        bucket_sets = bucket_sets[desc]
        counts = counts[desc]
        tags, age = self._tags, self._age
        clock = self._clock
        active = len(counts)
        kept_hits = np.empty(k, dtype=bool)
        max_count = int(counts[0]) if k else 0
        wave = 0
        while wave < max_count and active >= _WAVE_MIN_SETS:
            while counts[active - 1] <= wave:
                active -= 1
            if active < _WAVE_MIN_SETS:
                break
            rows = bucket_sets[:active]
            pos = starts[:active] + wave
            wave_lines = kept_lines[pos]
            match = tags[rows] == wave_lines[:, None]
            hit = match.any(axis=1)
            way = np.where(hit, match.argmax(axis=1),
                           age[rows].argmin(axis=1))
            tags[rows, way] = wave_lines
            # a global stamp is monotonic within every set, which is all
            # LRU ordering needs
            clock += 1
            age[rows, way] = clock
            kept_hits[pos] = hit
            wave += 1
        if wave < max_count:
            # tail phase: once few sets stay active (skewed buckets, or
            # a scaled-down geometry with only a handful of sets), the
            # per-wave numpy dispatch overhead exceeds straight list
            # work — finish each remaining bucket with an exact
            # list-based LRU in MRU order
            ways = self.config.ways
            while counts[active - 1] <= wave:
                active -= 1
            for b in range(active):
                set_index = int(bucket_sets[b])
                row_tags = tags[set_index]
                row_age = age[set_index]
                # resident lines, least-recent first
                mru = [int(row_tags[i]) for i in np.argsort(row_age,
                                                            kind="stable")
                       if row_tags[i] != -1]
                lo = int(starts[b]) + wave
                hi = int(starts[b]) + int(counts[b])
                flags = []
                flag = flags.append
                for line in kept_lines[lo:hi].tolist():
                    if line in mru:
                        mru.remove(line)
                        mru.append(line)
                        flag(True)
                    else:
                        mru.append(line)
                        if len(mru) > ways:
                            del mru[0]
                        flag(False)
                kept_hits[lo:hi] = flags
                row_tags[:] = -1
                row_age[:] = -1
                for i, line in enumerate(mru):
                    row_tags[i] = line
                    row_age[i] = clock + i + 1
                clock += len(mru)
        self._clock = clock
        hits_sorted[kept] = kept_hits
        hits[order] = hits_sorted
        return hits

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def reset(self) -> None:
        self._tags.fill(-1)
        self._age.fill(-1)
        self._clock = 0


class VectorCacheHierarchy:
    """Two-level private cache over the array engine; batch classifier.

    Mirrors :meth:`CacheHierarchy.access` over whole vectors: every
    access expands to the L1 lines it covers, L1 is replayed over the
    full line-touch stream, the L1-missing subsequence is replayed
    through L2 (at L1 line granularity, as the reference hierarchy
    does), and each access is classified by the worst level it touched.
    """

    def __init__(
        self,
        l1: CacheConfig = L1_DEFAULT,
        l2: CacheConfig = L2_DEFAULT,
    ) -> None:
        self.l1 = VectorCache(l1)
        self.l2 = VectorCache(l2)

    def classify(
        self, addrs: np.ndarray, sizes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Classify accesses ``[addr, addr+size)``; returns per-access
        worst levels (0 = l1, 1 = l2, 2 = memory) and the histogram of
        those levels (length-3, for the hit/miss counters)."""
        if addrs.size == 0:
            return (np.empty(0, dtype=np.int64),
                    np.zeros(3, dtype=np.int64))
        shift = self.l1._line_shift
        first = addrs >> shift
        last = (addrs + np.maximum(sizes, 1) - 1) >> shift
        counts = last - first + 1
        total = int(counts.sum())
        acc_start = np.cumsum(counts) - counts
        # expand each access to the lines it covers, preserving order
        offsets = np.arange(total, dtype=np.int64) - np.repeat(acc_start,
                                                               counts)
        lines = np.repeat(first, counts) + offsets
        l1_hit = self.l1.replay(lines)
        miss_at = np.flatnonzero(~l1_hit)
        l2_hit = self.l2.replay(lines[miss_at])
        line_levels = np.zeros(total, dtype=np.int64)
        line_levels[miss_at] = 2
        line_levels[miss_at[l2_hit]] = 1
        worst = np.maximum.reduceat(line_levels, acc_start)
        return worst, np.bincount(worst, minlength=3)

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
