"""Simulated multi-core x86-64 machine with a performance model.

This subpackage is the testbed substitute for the paper's 24-core Xeon +
Linux perf: a functional interpreter for the ISA subset plus a performance
model that produces the same four profiling metrics the paper reports
(memory loads, branches, branch misses, instructions — §V-D) and a cycle
estimate from a dependency-scoreboard pipeline model.

Components:

* :class:`Memory` — flat address space over numpy-backed segments;
* :class:`Cpu` — single-thread functional interpreter with counters;
* :class:`BranchPredictor` family — 2-bit and gshare predictors;
* :class:`CacheHierarchy` — set-associative L1D/L2 model (and its
  array-based twin :class:`VectorCacheHierarchy` for trace replay);
* :class:`PipelineModel` — port/latency scoreboard for cycle estimates;
* :class:`ReplayEngine` — record/replay timing: columnar traces
  replayed through the vectorized cache/predictor/scoreboard models;
* :class:`Machine` — multi-core wrapper with a round-robin scheduler and
  ``lock xadd`` atomicity, mirroring the paper's thread model (Fig. 5).
"""

from repro.machine.branch import BranchPredictor, GShare, TwoBit
from repro.machine.cache import (
    CacheConfig,
    CacheHierarchy,
    VectorCache,
    VectorCacheHierarchy,
)
from repro.machine.counters import Counters
from repro.machine.cpu import Cpu, CpuConfig
from repro.machine.memory import Memory
from repro.machine.perf import PerfReport
from repro.machine.pipeline import PipelineModel, PipelineSpec
from repro.machine.replay import ReplayEngine, TraceRecorder
from repro.machine.smp import Machine, ThreadSpec

__all__ = [
    "BranchPredictor",
    "CacheConfig",
    "CacheHierarchy",
    "Counters",
    "Cpu",
    "CpuConfig",
    "GShare",
    "Machine",
    "Memory",
    "PerfReport",
    "PipelineModel",
    "PipelineSpec",
    "ReplayEngine",
    "ThreadSpec",
    "TraceRecorder",
    "TwoBit",
    "VectorCache",
    "VectorCacheHierarchy",
]
