"""Superblock compilation: the paper's trick applied to the simulator.

JITSPMM's thesis is that code specialized to the problem at hand beats
an interpreter dispatching a general loop.  The simulator's inner loop
*is* such an interpreter — one Python call per retired instruction, plus
one accounting call and a handful of counter-attribute bumps.  This
module specializes it away: basic blocks are discovered from the
assembled :class:`~repro.isa.assembler.Program` (label and branch
boundaries, :meth:`Program.block_starts`), and each straight-line run of
instruction *bodies* (pure semantics, compiled once by
:class:`repro.machine.cpu.Cpu`) is fused into a single superblock
closure — generated Python source, compiled once per block shape — with
the event-counter bumps summed over the block and retired in one batch.

Fidelity contract: superblocks model *counts* fidelity (results + event
counters; no caches, no pipeline, cycles stay 0).  Because every body is
the same closure the per-instruction interpreter runs, and the batched
counter deltas are summed from the same static per-instruction deltas,
a fused execution is bit-identical to per-instruction stepping — the
conformance suite asserts this across every registered system.  The
scheduler falls back to per-instruction stepping for entry points that
land mid-block, for quantum/fuel residues smaller than a block, and
near the execution-step limit (so the limit still triggers at the exact
instruction it would under interpretation).  A body that *faults*
mid-block (simulated segmentation fault) falls back to per-instruction
accounting on the way out: the completed prefix's counters are retired
individually before the error propagates, so fault-time counter and
architectural state are also bit-identical to stepping.
"""

from __future__ import annotations

from repro.machine.counters import Counters, make_bump

__all__ = ["Superblock", "build_block_table"]


class Superblock:
    """One fused basic block: a compiled closure plus its length.

    ``run()`` executes every instruction in the block (terminator
    included) and returns the next pc; ``length`` is the dynamic
    instruction count one execution retires.
    """

    __slots__ = ("run", "length", "start")

    def __init__(self, run, length: int, start: int) -> None:
        self.run = run
        self.length = length
        self.start = start


#: compiled superblock-driver factories, keyed by (body count, has
#: terminator) — the ``exec`` cost is paid once per block *shape*, then
#: each concrete block instantiates the straight-line driver with its
#: own bodies bound as locals (no loop, no per-instruction dispatch)
_RUN_BUILDERS: dict[tuple[int, bool], object] = {}

#: blocks longer than this fall back to a tuple-iteration driver: the
#: exec-specialized straight-line form stops paying for itself and very
#: long argument lists slow instantiation
_MAX_SPECIALIZED_BODIES = 64

#: long straight-line runs (skewed matrices unroll heavy rows into
#: hundreds of branch-free instructions) are chunked into superblocks of
#: at most this many instructions.  The cap must stay below the SMP
#: scheduler's quantum (64): a block longer than a whole quantum can
#: never fit a thread's turn, so it would be compiled but never executed
#: — and it bounds the distinct block shapes the specialized drivers are
#: generated for
MAX_BLOCK_INSNS = 32


def _make_run(bodies: tuple, bump, terminator, exit_pc: int, repair,
              record=None):
    """Compile the driver closure for one block.

    ``terminator`` is the interpreter step of the block-ending branch
    (``jcc``/``jmp``/``ret``) — it keeps its own accounting and returns
    the next pc; ``exit_pc`` is returned instead when the block falls
    through into a label.  ``record`` is ``(units.append, unit)`` when a
    trace recorder is attached: the chunk's pc range is appended right
    after the counter batch, inline in the generated driver.

    The driver tracks its progress in a local so a *faulting* body
    (e.g. a simulated segmentation fault) falls back to per-instruction
    accounting: ``repair(retired)`` retires the counters of the bodies
    that completed before the fault, leaving counter and architectural
    state bit-identical to where per-instruction stepping would raise.
    """
    count = len(bodies)
    has_term = terminator is not None
    unit_append, unit = record if record is not None else (None, None)
    if count > _MAX_SPECIALIZED_BODIES:
        if has_term:
            def run() -> int:
                retired = 0
                try:
                    for body in bodies:
                        body()
                        retired += 1
                    bump()
                    if unit_append is not None:
                        unit_append(unit)
                    return terminator()
                except BaseException:
                    if retired < count:
                        repair(retired)
                    raise
        else:
            def run() -> int:
                retired = 0
                try:
                    for body in bodies:
                        body()
                        retired += 1
                    bump()
                    if unit_append is not None:
                        unit_append(unit)
                    return exit_pc
                except BaseException:
                    if retired < count:
                        repair(retired)
                    raise
        return run
    has_rec = record is not None
    builder = _RUN_BUILDERS.get((count, has_term, has_rec))
    if builder is None:
        args = "".join(f"b{i}, " for i in range(count))
        calls = "\n".join(f"            b{i}()\n            i = {i + 1}"
                          for i in range(count))
        rec = "            ua(u)\n" if has_rec else ""
        tail = "return term()" if has_term else "return exit_pc"
        source = (f"def _make({args}bump, term, exit_pc, repair, ua, u):\n"
                  f"    def run():\n"
                  f"        i = 0\n"
                  f"        try:\n{calls}\n"
                  f"            bump()\n"
                  f"{rec}"
                  f"            {tail}\n"
                  f"        except BaseException:\n"
                  f"            if i < {count}:\n"
                  f"                repair(i)\n"
                  f"            raise\n"
                  f"    return run\n")
        namespace: dict = {}
        exec(source, namespace)  # generated from a fixed template
        builder = _RUN_BUILDERS[(count, has_term, has_rec)] = namespace["_make"]
    return builder(*bodies, bump, terminator, exit_pc, repair, unit_append,
                   unit)


def _make_repair(chunk, counters: Counters, recorder=None,
                 chunk_start: int = 0):
    """Accounting fallback for a faulting block: retire the first
    ``retired`` instructions' deltas individually (slow path — runs at
    most once, on the way out of a fatal machine error).  Under trace
    recording the completed prefix is also appended as a partial unit,
    so the replayed timing at fault matches per-instruction stepping."""

    def repair(retired: int) -> None:
        for sem in chunk[:retired]:
            for name, amount in sem.deltas.items():
                setattr(counters, name, getattr(counters, name) + amount)
        if recorder is not None and retired:
            recorder.units.append((chunk_start, chunk_start + retired))

    return repair


def build_block_table(semantics, program, counters: Counters,
                      recorder=None) -> list:
    """Superblock table for one compiled program: pc -> block or None.

    The table is indexed by instruction index; entries are non-None only
    at basic-block leaders whose block could be fused (at least one
    straight-line body).  Lone branches and unfusible blocks stay None
    and execute through the per-instruction step list.

    With a ``recorder`` (record/replay timing), each chunk's driver
    appends the chunk's pc range to the trace — the bodies themselves
    append their effective addresses, and the terminator step records
    its own unit and outcome, so the columnar trace is complete.
    """
    insns = semantics.insns
    n = len(insns)
    table: list = [None] * n
    boundaries = program.block_starts() + [n]
    for start, end in zip(boundaries, boundaries[1:]):
        last = insns[end - 1]
        terminator = last.step if last.body is None else None
        body_end = end - 1 if terminator is not None else end
        straight = insns[start:body_end]
        if not straight:
            continue  # a lone branch: nothing to fuse
        if any(sem.body is None or sem.deltas is None for sem in straight):
            continue  # dynamic accounting (timing fidelity): not fusible
        # chunk long straight-line runs so every superblock fits inside
        # one scheduling quantum; each chunk exits into the next, the
        # final chunk carries the block's terminator
        for chunk_start in range(start, body_end, MAX_BLOCK_INSNS):
            chunk_end = min(chunk_start + MAX_BLOCK_INSNS, body_end)
            chunk = insns[chunk_start:chunk_end]
            is_last = chunk_end == body_end
            totals: dict[str, int] = {}
            for sem in chunk:
                for name, amount in sem.deltas.items():
                    totals[name] = totals.get(name, 0) + amount
            record = None
            if recorder is not None:
                record = (recorder.units.append, (chunk_start, chunk_end))
            run = _make_run(
                tuple(sem.body for sem in chunk),
                make_bump(counters, totals),
                terminator if is_last else None,
                end if is_last else chunk_end,
                _make_repair(chunk, counters, recorder, chunk_start),
                record,
            )
            length = len(chunk) + (1 if is_last and terminator is not None
                                   else 0)
            table[chunk_start] = Superblock(run, length, chunk_start)
    return table
