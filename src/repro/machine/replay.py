"""Record/replay timing engine for the cycle-accurate simulator.

The per-access reference path (``sim-ref``) interleaves *functional*
execution with *timing* interpretation: every retired instruction pays
an ``OrderedDict`` LRU touch per memory line, a predictor table update
per branch, and a ``PipelineModel.issue`` call.  That per-event Python
dispatch dominates cycle-accurate runs — exactly the interpretation
overhead the paper's specialize-don't-interpret thesis removes from
SpMM itself.

This module applies the same split to the timing half of the machine:

* **record** — execution (stepped or superblock-fused) emits a compact
  columnar trace: contiguous pc ranges (*units*, one per superblock
  chunk or stepped instruction), effective addresses in event order,
  and packed conditional-branch outcomes.  Recording is a handful of
  list appends per unit/event; no model code runs in the hot loop.
* **replay** — :meth:`ReplayEngine.flush` consumes the columns in
  batch: the address vector is classified by the array-based LRU
  engine (:class:`~repro.machine.cache.VectorCacheHierarchy`), branch
  outcomes run through the inlined predictor sweep
  (:func:`~repro.machine.branch.replay_outcomes`), and the dependency
  scoreboard replays each unit through a compiled straight-line
  function (:class:`~repro.machine.pipeline.ScoreboardReplay`).

Fidelity contract: every :class:`~repro.machine.counters.Counters`
field — hits, misses, branch misses, cycles — is bit-identical to the
reference models, because the cache/predictor state machines are exact
and the scoreboard replay performs the reference's float operations in
the reference's order.  Flushes may happen at any instruction boundary
(quantum turns, buffer pressure, faults) without changing results; on
a fault mid-trace the completed prefix is replayed before the error
propagates, leaving counter state identical to stepping.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import MachineError
from repro.machine.branch import BranchPredictor, replay_outcomes
from repro.machine.cache import (
    CacheConfig,
    L1_DEFAULT,
    L2_DEFAULT,
    VectorCacheHierarchy,
)
from repro.machine.counters import Counters
from repro.machine.pipeline import PipelineSpec, ReplayInsn, ScoreboardReplay

__all__ = ["ReplayEngine", "ReplayMeta", "TraceRecorder",
           "clear_flush_stats", "flush_stats", "replay_cost"]

#: replay (and clear) the trace once any column buffers this many
#: entries, bounding recorder memory for long runs — memory events and
#: units are checked separately, so a load/store-free instruction
#: stream (which grows ``units`` but never ``addrs``) is bounded too
FLUSH_EVENT_LIMIT = 1 << 20

#: process-wide per-unit statics, keyed by
#: ``(program fingerprint, pipeline spec, start, stop)``: the event-size
#: column and the compiled scoreboard builder.  Every execute builds
#: fresh CPUs (cold caches, the measurement contract), so without this
#: cache each run would re-emit and re-hash the generated source for
#: every distinct trace-unit shape.  Fingerprint-keyed entries would
#: otherwise accumulate forever in a long-lived serving process that
#: profiles a stream of distinct kernels, so the cache is dropped
#: wholesale past a cap — regeneration is cheap and correctness-free.
_UNIT_STATICS: dict = {}
_UNIT_STATICS_CAP = 65536

# process-wide flush accounting, exported through repro.obs as
# ``sim_replay_*_total``: how many record/replay flushes ran and how
# much trace volume (merged units, memory events, branches) they
# replayed.  One dict + one lock; flushes are rare relative to the
# instructions they cover, so the lock is off every hot path.
_FLUSH_LOCK = threading.Lock()
_FLUSH_STATS = {"flushes": 0, "replayed_units": 0,
                "replayed_events": 0, "replayed_branches": 0}


def flush_stats() -> dict:
    """A consistent snapshot of the process-wide flush counters."""
    with _FLUSH_LOCK:
        return dict(_FLUSH_STATS)


def clear_flush_stats() -> None:
    """Reset the flush counters (test isolation)."""
    with _FLUSH_LOCK:
        for key in _FLUSH_STATS:
            _FLUSH_STATS[key] = 0


def _count_flush(units: int, events: int, branches: int) -> None:
    with _FLUSH_LOCK:
        _FLUSH_STATS["flushes"] += 1
        _FLUSH_STATS["replayed_units"] += units
        _FLUSH_STATS["replayed_events"] += events
        _FLUSH_STATS["replayed_branches"] += branches


class TraceRecorder:
    """Columnar trace buffers for one simulated hardware thread.

    ``units`` holds ``(start, stop)`` pc ranges in execution order,
    ``addrs`` effective addresses in event order, and ``branches`` one
    ``(pc << 1) | taken`` word per executed conditional branch.  The
    recording closures capture the bound ``append`` methods, so the
    lists are cleared in place, never replaced.
    """

    __slots__ = ("units", "addrs", "branches", "meta")

    def __init__(self) -> None:
        self.units: list[tuple[int, int]] = []
        self.addrs: list[int] = []
        self.branches: list[int] = []
        self.meta: ReplayMeta | None = None

    def pending(self) -> bool:
        return bool(self.units or self.addrs or self.branches)

    def clear(self) -> None:
        del self.units[:]
        del self.addrs[:]
        del self.branches[:]


class _UnitStatics:
    """Process-wide artifacts for one trace-unit shape."""

    __slots__ = ("sizes", "ev_count", "builder")

    def __init__(self, sizes: np.ndarray) -> None:
        self.sizes = sizes
        self.ev_count = int(sizes.size)
        self.builder = None  # scoreboard builder, compiled on first use


class _UnitInfo:
    """Per-CPU replay state for one trace unit: the shared statics plus
    the scoreboard function bound to this CPU's scoreboard state."""

    __slots__ = ("statics", "sizes", "ev_count", "fn")

    def __init__(self, statics: _UnitStatics) -> None:
        self.statics = statics
        self.sizes = statics.sizes
        self.ev_count = statics.ev_count
        self.fn = None


class ReplayMeta:
    """Per-(CPU, program) replay metadata: static :class:`ReplayInsn`
    records plus per-unit artifacts cached by pc range.  Event-size
    columns and compiled scoreboard builders are shared process-wide
    through :data:`_UNIT_STATICS`; only the binding of a builder to this
    CPU's scoreboard state is per instance."""

    def __init__(self, replay_insns: list[ReplayInsn],
                 scoreboard: ScoreboardReplay, fingerprint: str) -> None:
        self.replay_insns = replay_insns
        self.scoreboard = scoreboard
        self._statics_key = (fingerprint, scoreboard.spec)
        self._units: dict[tuple[int, int], _UnitInfo] = {}

    def unit(self, key: tuple[int, int]) -> _UnitInfo:
        info = self._units.get(key)
        if info is None:
            global_key = (self._statics_key, key)
            statics = _UNIT_STATICS.get(global_key)
            if statics is None:
                if len(_UNIT_STATICS) >= _UNIT_STATICS_CAP:
                    _UNIT_STATICS.clear()
                start, stop = key
                sizes = [size for insn in self.replay_insns[start:stop]
                         for size in insn.ev_sizes]
                statics = _UnitStatics(np.array(sizes, dtype=np.int64))
                _UNIT_STATICS[global_key] = statics
            info = _UnitInfo(statics)
            self._units[key] = info
        return info

    def unit_fn(self, key: tuple[int, int], info: _UnitInfo):
        fn = info.fn
        if fn is None:
            builder = info.statics.builder
            if builder is None:
                start, stop = key
                builder = info.statics.builder = (
                    self.scoreboard.unit_builder(
                        self.replay_insns[start:stop]))
            fn = info.fn = self.scoreboard.bind_unit(builder)
        return fn


class ReplayEngine:
    """Record/replay timing state for one :class:`~repro.machine.Cpu`.

    Owns the trace recorder, the vectorized cache hierarchy, the
    scoreboard replayer, and references to the CPU's counters and
    branch predictor (whose state the replay advances exactly as
    per-instruction interpretation would).
    """

    def __init__(
        self,
        counters: Counters,
        predictor: BranchPredictor,
        spec: PipelineSpec | None = None,
        l1: CacheConfig | None = None,
        l2: CacheConfig | None = None,
    ) -> None:
        self.counters = counters
        self.predictor = predictor
        self.hierarchy = VectorCacheHierarchy(l1 or L1_DEFAULT,
                                              l2 or L2_DEFAULT)
        self.scoreboard = ScoreboardReplay(spec)
        self.scoreboard_enabled = True
        self.recorder = TraceRecorder()
        self._metas: dict[str, ReplayMeta] = {}

    # ------------------------------------------------------------------
    def begin(self, program, semantics) -> None:
        """Bind the recorder to ``program`` (flushing any pending trace
        recorded under a previously bound program)."""
        key = program.fingerprint()
        meta = self._metas.get(key)
        if meta is None:
            replay_insns = [sem.replay for sem in semantics.insns]
            if any(replay_insn is None for replay_insn in replay_insns):
                raise MachineError(
                    "program was compiled without replay metadata; "
                    "replay recording needs record-mode semantics")
            meta = ReplayMeta(replay_insns, self.scoreboard, key)
            self._metas[key] = meta
        if self.recorder.meta is not meta:
            if self.recorder.pending():
                self.flush()
            self.recorder.meta = meta

    def should_flush(self) -> bool:
        recorder = self.recorder
        return (len(recorder.addrs) >= FLUSH_EVENT_LIMIT
                or len(recorder.units) >= FLUSH_EVENT_LIMIT)

    @property
    def cycles(self) -> float:
        return self.scoreboard.cycles

    def reset_scoreboard(self) -> None:
        """Fresh pipeline clock (the replay analogue of building a new
        :class:`PipelineModel`); caches and predictor state stay warm."""
        self.scoreboard.reset()
        self.scoreboard_enabled = True

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Replay and clear the recorded trace.

        Safe at any instruction boundary: cache, predictor and
        scoreboard state carry over, counters accumulate.  Leftover
        addresses beyond the retired units' events are the completed
        lanes of a gather that faulted mid-instruction — the reference
        path touches the cache and level counters for those lanes but
        never retires the instruction, and the replay does the same.
        """
        recorder = self.recorder
        if not recorder.pending():
            return
        meta = recorder.meta
        units = recorder.units
        addrs = recorder.addrs
        counters = self.counters
        if units:
            # coalesce pc-adjacent units: a chunk and the terminator (or
            # stepped residue) that followed it replay as one longer
            # straight-line function — replaying (a, b) then (b, c) is
            # definitionally the same per-instruction sequence as
            # (a, c), so merging is always safe and amortizes the
            # per-unit dispatch over real superblock lengths
            merged: list[tuple[int, int]] = []
            append = merged.append
            run_start, run_stop = units[0]
            for start, stop in units[1:]:
                if start == run_stop:
                    run_stop = stop
                else:
                    append((run_start, run_stop))
                    run_start, run_stop = start, stop
            append((run_start, run_stop))
            units = merged
        infos = [meta.unit(key) for key in units]
        sized = [info.sizes for info in infos if info.ev_count]
        expected = sum(info.ev_count for info in infos)
        levels_list: list = []
        lines_list: list = []
        if expected:
            sizes = np.concatenate(sized)
            addr_arr = np.array(addrs[:expected], dtype=np.int64)
            levels, tri = self.hierarchy.classify(addr_arr, sizes)
            self._count_levels(tri)
            levels_list = levels.tolist()
            lines_list = (addr_arr >> 6).tolist()
        if len(addrs) > expected:
            # completed lanes of a faulting gather: cache state and
            # level counters advance, nothing retires
            extra = np.array(addrs[expected:], dtype=np.int64)
            _, tri = self.hierarchy.classify(
                extra, np.full(extra.size, 4, dtype=np.int64))
            self._count_levels(tri)
        misses: list = []
        if recorder.branches:
            misses = replay_outcomes(self.predictor, recorder.branches)
            counters.branch_misses += sum(misses)
        if self.scoreboard_enabled and units:
            ei = bi = 0
            unit_fn = meta.unit_fn
            for key, info in zip(units, infos):
                fn = info.fn
                if fn is None:
                    fn = unit_fn(key, info)
                ei, bi = fn(levels_list, lines_list, misses, ei, bi)
            if ei != expected or bi != len(misses):
                raise MachineError(
                    "replay cursor mismatch: the trace columns do not "
                    "line up with the recorded units")
        _count_flush(len(units), len(addrs), len(recorder.branches))
        recorder.clear()

    def _count_levels(self, tri: np.ndarray) -> None:
        counters = self.counters
        counters.l1_hits += int(tri[0])
        counters.l1_misses += int(tri[1] + tri[2])
        counters.l2_hits += int(tri[1])
        counters.l2_misses += int(tri[2])


# ----------------------------------------------------------------------
# Cost-oracle entry point
# ----------------------------------------------------------------------
def replay_cost(memory, thread_specs, *, l1=None, l2=None,
                max_instructions=None):
    """Score one instruction stream by simulated cycles (cost oracle).

    The feedback-directed codegen search (:mod:`repro.aot.search`)
    compiles many candidate kernels and needs a cheap, deterministic
    fitness function; this is it: one cold-state, superblock-fused run
    of ``thread_specs`` against ``memory`` on the record/replay engine,
    returning the merged :class:`~repro.machine.counters.Counters`
    (``.cycles`` is the score; the functional results land in the
    mapped operand segments for conformance checking).  Imports stay
    local — :mod:`repro.machine.cpu` imports this module, so a
    module-level import would cycle.
    """
    from repro.machine.cpu import CpuConfig
    from repro.machine.smp import Machine

    overrides = {}
    if max_instructions is not None:
        overrides["max_instructions"] = max_instructions
    machine = Machine(memory, CpuConfig(timing=True, engine="replay",
                                        l1=l1, l2=l2, **overrides))
    merged, _ = machine.run(list(thread_specs), fused=True)
    return merged
