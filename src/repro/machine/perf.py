"""Perf-style reports: named counter sets, comparisons, ASCII tables.

The evaluation section of the paper presents results as relative metrics —
speedups over baselines (Figs. 9-10) and per-event ratios (Table II,
Fig. 11).  :class:`PerfReport` is the container the bench harness uses to
collect named runs and render those comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.counters import Counters

__all__ = ["PerfReport"]


@dataclass
class PerfReport:
    """A set of named measurement runs with comparison helpers."""

    title: str = ""
    runs: dict[str, Counters] = field(default_factory=dict)
    ghz: float = 3.7

    def add(self, name: str, counters: Counters) -> None:
        self.runs[name] = counters

    def seconds(self, name: str) -> float:
        return self.runs[name].seconds(self.ghz)

    def speedup(self, baseline: str, contender: str) -> float:
        """How much faster ``contender`` is than ``baseline`` (>1 = faster)."""
        base = self.runs[baseline].cycles
        cont = self.runs[contender].cycles
        if cont == 0:
            raise ZeroDivisionError(f"run {contender!r} has zero cycles")
        return base / cont

    def ratio(self, metric: str, baseline: str, contender: str) -> float:
        """Event-count ratio baseline/contender (>1 = contender uses fewer)."""
        base = getattr(self.runs[baseline], metric)
        cont = getattr(self.runs[contender], metric)
        if cont == 0:
            return float("inf") if base else 1.0
        return base / cont

    def table(self, metrics: tuple[str, ...] = (
        "instructions", "memory_loads", "branches", "branch_misses", "cycles",
    )) -> str:
        """Render the report as a fixed-width ASCII table."""
        headers = ["run", *metrics, "seconds"]
        rows = [headers]
        for name, counters in self.runs.items():
            row = [name]
            for metric in metrics:
                value = getattr(counters, metric)
                row.append(f"{value:,.0f}" if isinstance(value, float) else f"{value:,}")
            row.append(f"{counters.seconds(self.ghz):.6f}")
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
        lines = []
        if self.title:
            lines.append(self.title)
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()
