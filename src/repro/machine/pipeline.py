"""Dependency-scoreboard pipeline model for cycle estimation.

The paper's coarse-grain column merging exists to "maximize
instruction-level parallelism" (§IV-C): independent vector accumulators
remove the serial dependence that a single scalar accumulator creates.
Counting instructions cannot see that difference — a latency/port model
can.  This scoreboard models an out-of-order core the way analytical
tools like llvm-mca do:

* the front end issues at most ``issue_width`` instructions per cycle;
* each instruction starts when its register inputs are ready and its
  execution group has had aggregate capacity for all earlier work
  (cumulative-work bound: out-of-order cores do not suffer head-of-line
  blocking on ports, so groups bound *throughput*, not order);
* loads add the serving cache level's load-to-use latency, and misses to
  memory additionally queue on a per-core DRAM bandwidth bound;
* a load from a line with an in-flight older store waits for that store
  (store-to-load forwarding), which is what serializes kernels that
  accumulate output rows in memory instead of registers (paper §IV-D.1);
* a mispredicted branch stalls the front end for ``branch_miss_penalty``
  cycles (pipeline flush + refill, §III-B);
* the register-zeroing idiom (``vxorps r,r,r``) breaks dependencies, as
  on real hardware.

Geometry and latencies default to Skylake-SP-like values (the paper's
Xeon Gold 6126).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import InsnKind, Instruction
from repro.isa.registers import Register, VectorRegister

__all__ = ["PipelineModel", "PipelineSpec"]


@dataclass(frozen=True)
class PipelineSpec:
    """Microarchitecture parameters for the scoreboard."""

    issue_width: int = 4
    branch_miss_penalty: float = 16.0
    #: load-to-use latency per serving level
    load_latency: tuple[tuple[str, float], ...] = (
        ("l1", 5.0), ("l2", 14.0), ("mem", 80.0),
    )
    #: cycles of per-core DRAM bandwidth consumed per missing cache line
    dram_service: float = 6.0
    #: store-to-load forwarding latency (store data -> dependent load)
    forward_latency: float = 5.0
    #: execution-port groups: name -> number of identical pipes
    ports: tuple[tuple[str, int], ...] = (
        ("alu", 4), ("vec", 2), ("shuffle", 1),
        ("load", 2), ("store", 1), ("branch", 1), ("dram", 1),
    )
    #: instruction kind -> (latency cycles, port group)
    kind_costs: tuple[tuple[InsnKind, float, str], ...] = (
        (InsnKind.MOV_INT, 1.0, "alu"),
        (InsnKind.ALU_INT, 1.0, "alu"),
        (InsnKind.MUL_INT, 3.0, "alu"),
        (InsnKind.LEA, 1.0, "alu"),
        (InsnKind.BRANCH, 1.0, "branch"),
        (InsnKind.COND_BRANCH, 1.0, "branch"),
        (InsnKind.RET, 1.0, "branch"),
        (InsnKind.NOP, 0.0, "alu"),
        (InsnKind.ATOMIC, 20.0, "alu"),
        (InsnKind.VEC_MOV, 1.0, "vec"),
        (InsnKind.VEC_XOR, 1.0, "vec"),
        (InsnKind.VEC_ALU, 4.0, "vec"),
        (InsnKind.VEC_MUL, 4.0, "vec"),
        (InsnKind.VEC_FMA, 4.0, "vec"),
        (InsnKind.VEC_IMUL, 10.0, "vec"),
        (InsnKind.VEC_BCAST, 3.0, "shuffle"),
        (InsnKind.VEC_GATHER, 22.0, "load"),
        (InsnKind.VEC_HADD, 6.0, "shuffle"),
        (InsnKind.VEC_EXTRACT, 3.0, "shuffle"),
    )

    def load_latency_map(self) -> dict[str, float]:
        return dict(self.load_latency)

    def kind_cost_map(self) -> dict[InsnKind, tuple[float, str]]:
        return {kind: (lat, group) for kind, lat, group in self.kind_costs}


def _reg_key(reg: Register) -> tuple[str, int]:
    # XMM/YMM/ZMM aliases of the same physical register share a key, so a
    # write to zmm0 correctly feeds a later read of xmm0 (paper §IV-D.1).
    if isinstance(reg, VectorRegister):
        return ("v", reg.code)
    return ("g", reg.code)


class _PortGroup:
    """Aggregate-throughput bound: ``start >= total_prior_work / pipes``.

    An out-of-order core can execute ready instructions in any order, so
    per-pipe future reservations would wrongly serialize independent work
    behind one stalled instruction.  The cumulative-work bound keeps the
    group's *throughput* limit (no more than ``pipes`` service-cycles per
    cycle in the long run) without imposing order.
    """

    __slots__ = ("pipes", "work")

    def __init__(self, pipes: int) -> None:
        self.pipes = pipes
        self.work = 0.0

    def issue(self, ready: float, service: float = 1.0) -> float:
        start = self.work / self.pipes
        if ready > start:
            start = ready
        self.work += service
        return start


class PipelineModel:
    """Online scoreboard; feed it the dynamic instruction stream."""

    def __init__(self, spec: PipelineSpec | None = None) -> None:
        self.spec = spec or PipelineSpec()
        self._kind_cost = self.spec.kind_cost_map()
        self._load_latency = self.spec.load_latency_map()
        self._groups = {
            name: _PortGroup(count) for name, count in self.spec.ports
        }
        self._load_ports = dict(self.spec.ports).get("load", 2)
        self._reg_ready: dict[tuple[str, int], float] = {}
        self._line_ready: dict[int, float] = {}
        self._flags_ready = 0.0
        self._fetch_time = 0.0
        self._fetch_step = 1.0 / self.spec.issue_width
        self._last_complete = 0.0

    # ------------------------------------------------------------------
    def issue(
        self,
        insn: Instruction,
        load_refs: tuple[tuple[str, int], ...] = (),
        store_refs: tuple[tuple[str, int], ...] = (),
        mispredicted: bool = False,
        gather_lanes: int = 0,
    ) -> float:
        """Account for one executed instruction; returns completion cycle.

        ``load_refs`` / ``store_refs`` carry ``(cache_level, line_id)``
        pairs for each memory line the instruction touches.
        """
        latency, group = self._kind_cost[insn.kind]

        fetch = self._fetch_time
        reg_ready = self._reg_ready

        def ready_of(regs, base: float) -> float:
            t = base
            for reg in regs:
                v = reg_ready.get(_reg_key(reg))
                if v is not None and v > t:
                    t = v
            return t

        # Load micro-op: needs only the address registers (and, when an
        # older store to the same line is in flight, that store's data —
        # store-to-load forwarding).  Splitting it from the execution
        # micro-op lets e.g. an FMA's memory operand load ahead of the
        # accumulator chain, as real out-of-order cores do.
        load_done = 0.0
        if load_refs:
            addr_ready = ready_of(insn.registers_read_addr(), fetch)
            line_ready = self._line_ready
            forwarded = set()
            for _, line in load_refs:
                t = line_ready.get(line)
                if t is not None:
                    forwarded.add(line)
                    if t > addr_ready:
                        addr_ready = t
            load_start = self._groups["load"].issue(addr_ready)
            worst = 0.0
            dram = self._groups["dram"]
            for level, line in load_refs:
                if line in forwarded:
                    lat = self.spec.forward_latency
                else:
                    lat = self._load_latency[level]
                    if level == "mem":
                        dram_start = dram.issue(load_start,
                                                self.spec.dram_service)
                        lat += dram_start - load_start
                if lat > worst:
                    worst = lat
            load_done = load_start + worst

        ready = ready_of(insn.registers_read_data(), fetch)
        if insn.info.reads_flags and self._flags_ready > ready:
            ready = self._flags_ready
        if load_done > ready:
            ready = load_done

        if gather_lanes:
            # a gather occupies the load pipes; Skylake-class gathers
            # sustain ~2 lanes per cycle per load pipe
            service = max(1.0, gather_lanes / (2 * self._load_ports))
            start = self._groups[group].issue(ready, service=service)
        else:
            start = self._groups[group].issue(ready)
        complete = start + latency

        if store_refs:
            self._groups["store"].issue(start)
            line_ready = self._line_ready
            dram = self._groups["dram"]
            for level, line in store_refs:
                line_ready[line] = complete
                if level == "mem":
                    dram.issue(start, self.spec.dram_service)

        for reg in insn.registers_written():
            reg_ready[_reg_key(reg)] = complete
        if insn.info.writes_flags:
            self._flags_ready = complete

        self._fetch_time += self._fetch_step
        if mispredicted:
            # flush: the front end resumes after the branch resolves plus
            # the refill penalty
            self._fetch_time = complete + self.spec.branch_miss_penalty
        if complete > self._last_complete:
            self._last_complete = complete
        return complete

    @property
    def cycles(self) -> float:
        """Total elapsed cycles so far."""
        return max(self._last_complete, self._fetch_time)

    def advance(self, cycles: float) -> None:
        """Externally stall the core (e.g. atomic serialization in SMP)."""
        target = self.cycles + cycles
        if target > self._fetch_time:
            self._fetch_time = target
