"""Dependency-scoreboard pipeline model for cycle estimation.

The paper's coarse-grain column merging exists to "maximize
instruction-level parallelism" (§IV-C): independent vector accumulators
remove the serial dependence that a single scalar accumulator creates.
Counting instructions cannot see that difference — a latency/port model
can.  This scoreboard models an out-of-order core the way analytical
tools like llvm-mca do:

* the front end issues at most ``issue_width`` instructions per cycle;
* each instruction starts when its register inputs are ready and its
  execution group has had aggregate capacity for all earlier work
  (cumulative-work bound: out-of-order cores do not suffer head-of-line
  blocking on ports, so groups bound *throughput*, not order);
* loads add the serving cache level's load-to-use latency, and misses to
  memory additionally queue on a per-core DRAM bandwidth bound;
* a load from a line with an in-flight older store waits for that store
  (store-to-load forwarding), which is what serializes kernels that
  accumulate output rows in memory instead of registers (paper §IV-D.1);
* a mispredicted branch stalls the front end for ``branch_miss_penalty``
  cycles (pipeline flush + refill, §III-B);
* the register-zeroing idiom (``vxorps r,r,r``) breaks dependencies, as
  on real hardware.

Geometry and latencies default to Skylake-SP-like values (the paper's
Xeon Gold 6126).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import InsnKind, Instruction
from repro.isa.registers import Register, VectorRegister

__all__ = ["PipelineModel", "PipelineSpec", "ReplayInsn", "ScoreboardReplay"]


@dataclass(frozen=True)
class PipelineSpec:
    """Microarchitecture parameters for the scoreboard."""

    issue_width: int = 4
    branch_miss_penalty: float = 16.0
    #: load-to-use latency per serving level
    load_latency: tuple[tuple[str, float], ...] = (
        ("l1", 5.0), ("l2", 14.0), ("mem", 80.0),
    )
    #: cycles of per-core DRAM bandwidth consumed per missing cache line
    dram_service: float = 6.0
    #: store-to-load forwarding latency (store data -> dependent load)
    forward_latency: float = 5.0
    #: execution-port groups: name -> number of identical pipes
    ports: tuple[tuple[str, int], ...] = (
        ("alu", 4), ("vec", 2), ("shuffle", 1),
        ("load", 2), ("store", 1), ("branch", 1), ("dram", 1),
    )
    #: instruction kind -> (latency cycles, port group)
    kind_costs: tuple[tuple[InsnKind, float, str], ...] = (
        (InsnKind.MOV_INT, 1.0, "alu"),
        (InsnKind.ALU_INT, 1.0, "alu"),
        (InsnKind.MUL_INT, 3.0, "alu"),
        (InsnKind.LEA, 1.0, "alu"),
        (InsnKind.BRANCH, 1.0, "branch"),
        (InsnKind.COND_BRANCH, 1.0, "branch"),
        (InsnKind.RET, 1.0, "branch"),
        (InsnKind.NOP, 0.0, "alu"),
        (InsnKind.ATOMIC, 20.0, "alu"),
        (InsnKind.VEC_MOV, 1.0, "vec"),
        (InsnKind.VEC_XOR, 1.0, "vec"),
        (InsnKind.VEC_ALU, 4.0, "vec"),
        (InsnKind.VEC_MUL, 4.0, "vec"),
        (InsnKind.VEC_FMA, 4.0, "vec"),
        (InsnKind.VEC_IMUL, 10.0, "vec"),
        (InsnKind.VEC_BCAST, 3.0, "shuffle"),
        (InsnKind.VEC_GATHER, 22.0, "load"),
        (InsnKind.VEC_HADD, 6.0, "shuffle"),
        (InsnKind.VEC_EXTRACT, 3.0, "shuffle"),
    )

    def load_latency_map(self) -> dict[str, float]:
        return dict(self.load_latency)

    def kind_cost_map(self) -> dict[InsnKind, tuple[float, str]]:
        return {kind: (lat, group) for kind, lat, group in self.kind_costs}


def _reg_key(reg: Register) -> tuple[str, int]:
    # XMM/YMM/ZMM aliases of the same physical register share a key, so a
    # write to zmm0 correctly feeds a later read of xmm0 (paper §IV-D.1).
    if isinstance(reg, VectorRegister):
        return ("v", reg.code)
    return ("g", reg.code)


class _PortGroup:
    """Aggregate-throughput bound: ``start >= total_prior_work / pipes``.

    An out-of-order core can execute ready instructions in any order, so
    per-pipe future reservations would wrongly serialize independent work
    behind one stalled instruction.  The cumulative-work bound keeps the
    group's *throughput* limit (no more than ``pipes`` service-cycles per
    cycle in the long run) without imposing order.
    """

    __slots__ = ("pipes", "work")

    def __init__(self, pipes: int) -> None:
        self.pipes = pipes
        self.work = 0.0

    def issue(self, ready: float, service: float = 1.0) -> float:
        start = self.work / self.pipes
        if ready > start:
            start = ready
        self.work += service
        return start


class PipelineModel:
    """Online scoreboard; feed it the dynamic instruction stream."""

    def __init__(self, spec: PipelineSpec | None = None) -> None:
        self.spec = spec or PipelineSpec()
        self._kind_cost = self.spec.kind_cost_map()
        self._load_latency = self.spec.load_latency_map()
        self._groups = {
            name: _PortGroup(count) for name, count in self.spec.ports
        }
        self._load_ports = dict(self.spec.ports).get("load", 2)
        self._reg_ready: dict[tuple[str, int], float] = {}
        self._line_ready: dict[int, float] = {}
        self._flags_ready = 0.0
        self._fetch_time = 0.0
        self._fetch_step = 1.0 / self.spec.issue_width
        self._last_complete = 0.0

    # ------------------------------------------------------------------
    def issue(
        self,
        insn: Instruction,
        load_refs: tuple[tuple[str, int], ...] = (),
        store_refs: tuple[tuple[str, int], ...] = (),
        mispredicted: bool = False,
        gather_lanes: int = 0,
    ) -> float:
        """Account for one executed instruction; returns completion cycle.

        ``load_refs`` / ``store_refs`` carry ``(cache_level, line_id)``
        pairs for each memory line the instruction touches.
        """
        latency, group = self._kind_cost[insn.kind]

        fetch = self._fetch_time
        reg_ready = self._reg_ready

        def ready_of(regs, base: float) -> float:
            t = base
            for reg in regs:
                v = reg_ready.get(_reg_key(reg))
                if v is not None and v > t:
                    t = v
            return t

        # Load micro-op: needs only the address registers (and, when an
        # older store to the same line is in flight, that store's data —
        # store-to-load forwarding).  Splitting it from the execution
        # micro-op lets e.g. an FMA's memory operand load ahead of the
        # accumulator chain, as real out-of-order cores do.
        load_done = 0.0
        if load_refs:
            addr_ready = ready_of(insn.registers_read_addr(), fetch)
            line_ready = self._line_ready
            forwarded = set()
            for _, line in load_refs:
                t = line_ready.get(line)
                if t is not None:
                    forwarded.add(line)
                    if t > addr_ready:
                        addr_ready = t
            load_start = self._groups["load"].issue(addr_ready)
            worst = 0.0
            dram = self._groups["dram"]
            for level, line in load_refs:
                if line in forwarded:
                    lat = self.spec.forward_latency
                else:
                    lat = self._load_latency[level]
                    if level == "mem":
                        dram_start = dram.issue(load_start,
                                                self.spec.dram_service)
                        lat += dram_start - load_start
                if lat > worst:
                    worst = lat
            load_done = load_start + worst

        ready = ready_of(insn.registers_read_data(), fetch)
        if insn.info.reads_flags and self._flags_ready > ready:
            ready = self._flags_ready
        if load_done > ready:
            ready = load_done

        if gather_lanes:
            # a gather occupies the load pipes; Skylake-class gathers
            # sustain ~2 lanes per cycle per load pipe
            service = max(1.0, gather_lanes / (2 * self._load_ports))
            start = self._groups[group].issue(ready, service=service)
        else:
            start = self._groups[group].issue(ready)
        complete = start + latency

        if store_refs:
            self._groups["store"].issue(start)
            line_ready = self._line_ready
            dram = self._groups["dram"]
            for level, line in store_refs:
                line_ready[line] = complete
                if level == "mem":
                    dram.issue(start, self.spec.dram_service)

        for reg in insn.registers_written():
            reg_ready[_reg_key(reg)] = complete
        if insn.info.writes_flags:
            self._flags_ready = complete

        self._fetch_time += self._fetch_step
        if mispredicted:
            # flush: the front end resumes after the branch resolves plus
            # the refill penalty
            self._fetch_time = complete + self.spec.branch_miss_penalty
        if complete > self._last_complete:
            self._last_complete = complete
        return complete

    @property
    def cycles(self) -> float:
        """Total elapsed cycles so far."""
        return max(self._last_complete, self._fetch_time)

    def advance(self, cycles: float) -> None:
        """Externally stall the core (e.g. atomic serialization in SMP)."""
        target = self.cycles + cycles
        if target > self._fetch_time:
            self._fetch_time = target


# ----------------------------------------------------------------------
# Trace-replay scoreboard
# ----------------------------------------------------------------------
def _dense_reg(reg: Register) -> int:
    """Dense scoreboard slot for a register (GPRs 0-15, vectors 16-47);
    same aliasing rule as :func:`_reg_key`."""
    if isinstance(reg, VectorRegister):
        return 16 + reg.code
    return reg.code


def _dense_regs(regs) -> tuple[int, ...]:
    """Ordered, deduplicated dense slots (a duplicate register cannot
    change a running max, so dropping it preserves the reference math)."""
    return tuple(dict.fromkeys(_dense_reg(reg) for reg in regs))


class ReplayInsn:
    """Static per-instruction replay metadata, built once at semantics
    compilation (record mode) and consumed by the trace-replay engine.

    ``ev_sizes`` lists the instruction's memory events in the exact
    order the reference accounting touches the cache — loads first,
    then stores; one size-4 event per gather lane."""

    __slots__ = ("insn", "loads", "stores", "ev_sizes", "gather_lanes",
                 "is_cond")

    def __init__(self, insn: Instruction, load_size: int = 0,
                 store_size: int = 0, gather_lanes: int = 0) -> None:
        self.insn = insn
        self.gather_lanes = gather_lanes
        if gather_lanes:
            self.loads = gather_lanes
            self.stores = 0
            self.ev_sizes: tuple[int, ...] = (4,) * gather_lanes
        else:
            self.loads = 1 if load_size else 0
            self.stores = 1 if store_size else 0
            sizes = []
            if load_size:
                sizes.append(load_size)
            if store_size:
                sizes.append(store_size)
            self.ev_sizes = tuple(sizes)
        self.is_cond = insn.is_cond_branch


#: compiled unit-function builders keyed by generated source — the
#: ``exec`` cost is paid once per distinct unit shape per process, not
#: per run (every execute builds fresh CPUs, hence fresh replayers).
#: Cleared wholesale past a cap so a long-lived serving process that
#: profiles a stream of distinct kernels cannot grow it forever.
_UNIT_BUILDERS: dict[str, object] = {}
_UNIT_BUILDERS_CAP = 65536


class ScoreboardReplay:
    """The scoreboard of :class:`PipelineModel`, replayed over a trace.

    Instead of one ``issue()`` call — closure allocations, dict lookups
    keyed by register tuples, attribute chases — per retired
    instruction, the replay engine compiles one straight-line Python
    function per *trace unit* (a contiguous pc range: a superblock
    chunk or a stepped instruction) with every static quantity baked in
    as a literal: latencies, port-group slots, issue-width step, dense
    register indices.  The generated code performs the same float
    operations in the same order as ``issue()``, so the resulting cycle
    count is bit-identical to the reference pipeline; only the dynamic
    inputs (cache level and line per memory event, mispredict flag per
    conditional branch) are read from the replayed trace columns.

    State lives in lists that are reset *in place* so the compiled unit
    closures stay valid across :meth:`reset`.
    """

    def __init__(self, spec: PipelineSpec | None = None) -> None:
        self.spec = spec or PipelineSpec()
        self._group_index = {name: i
                             for i, (name, _) in enumerate(self.spec.ports)}
        self._pipes = [count for _, count in self.spec.ports]
        self._kind_cost = self.spec.kind_cost_map()
        latency = self.spec.load_latency_map()
        self._level_latency = (latency["l1"], latency["l2"], latency["mem"])
        self._load_ports = dict(self.spec.ports).get("load", 2)
        #: fetch_time, flags_ready, last_complete
        self._scalars = [0.0, 0.0, 0.0]
        self._work = [0.0] * len(self._pipes)
        self._reg_ready = [0.0] * 48
        self._line_ready: dict = {}
        self._fetch_step = 1.0 / self.spec.issue_width

    def reset(self) -> None:
        """Restart the clock (a fresh :class:`PipelineModel`)."""
        scalars = self._scalars
        scalars[0] = scalars[1] = scalars[2] = 0.0
        for i in range(len(self._work)):
            self._work[i] = 0.0
        for i in range(48):
            self._reg_ready[i] = 0.0
        self._line_ready.clear()

    @property
    def cycles(self) -> float:
        """Total elapsed cycles so far (matches ``PipelineModel.cycles``)."""
        scalars = self._scalars
        return max(scalars[2], scalars[0])

    # ------------------------------------------------------------------
    # Unit compilation
    # ------------------------------------------------------------------
    def unit_builder(self, replay_insns: list[ReplayInsn]):
        """The compiled builder for one straight-line run of
        instructions — caller-cachable (the replay engine keys it by
        program fingerprint and pc range so the source is emitted once
        per process, not per run)."""
        body: list[str] = []
        for replay_insn in replay_insns:
            self._emit(body, replay_insn)
        source = (
            "def _make(S, rr, w, lr):\n"
            "    lr_get = lr.get\n"
            "    def unit(lv, ln, mi, ei, bi):\n"
            "        fetch = S[0]; flags = S[1]; last = S[2]\n"
            + "".join(f"        {line}\n" for line in body)
            + "        S[0] = fetch; S[1] = flags; S[2] = last\n"
            "        return ei, bi\n"
            "    return unit\n"
        )
        builder = _UNIT_BUILDERS.get(source)
        if builder is None:
            if len(_UNIT_BUILDERS) >= _UNIT_BUILDERS_CAP:
                _UNIT_BUILDERS.clear()
            namespace: dict = {}
            exec(source, namespace)  # generated from static metadata
            builder = _UNIT_BUILDERS[source] = namespace["_make"]
        return builder

    def bind_unit(self, builder):
        """Instantiate a unit builder over this replayer's state.

        The returned closure has signature ``unit(lv, ln, mi, ei, bi)``
        — cache-level and line columns, mispredict flags, and the event
        / branch cursors — and returns the advanced cursors.
        """
        return builder(self._scalars, self._reg_ready, self._work,
                       self._line_ready)

    def compile_unit(self, replay_insns: list[ReplayInsn]):
        """Build and bind in one step (uncached callers, tests)."""
        return self.bind_unit(self.unit_builder(replay_insns))

    def _emit(self, out: list[str], r: ReplayInsn) -> None:
        """Append the replay statements for one instruction (the exact
        float-operation sequence of :meth:`PipelineModel.issue`)."""
        insn = r.insn
        latency, group = self._kind_cost[insn.kind]
        gidx = self._group_index[group]
        pipes = self._pipes[gidx]
        load_g = self._group_index["load"]
        load_p = self._pipes[load_g]
        dram_g = self._group_index["dram"]
        dram_p = self._pipes[dram_g]
        l1_lat, l2_lat, mem_lat = map(repr, self._level_latency)
        fwd = repr(self.spec.forward_latency)
        dsv = repr(self.spec.dram_service)

        def ready_of(regs) -> None:
            out.append("t = fetch")
            for slot in _dense_regs(regs):
                out.append(f"v = rr[{slot}]")
                out.append("if v > t: t = v")

        def dram_penalty(level_var: str) -> list[str]:
            return [
                f"if {level_var} == 2:",
                f"    dd = w[{dram_g}] / {dram_p}",
                "    if s > dd: dd = s",
                f"    w[{dram_g}] = w[{dram_g}] + {dsv}",
                f"    wl = {mem_lat} + (dd - s)",
                f"elif {level_var} == 1:",
                f"    wl = {l2_lat}",
                "else:",
                f"    wl = {l1_lat}",
            ]

        if r.loads == 1:
            out.append("L0 = lv[ei]; N0 = ln[ei]; ei = ei + 1")
            ready_of(insn.registers_read_addr())
            out.append("fw = lr_get(N0)")
            out.append("if fw is not None and fw > t: t = fw")
            out.append(f"s = w[{load_g}] / {load_p}")
            out.append("if t > s: s = t")
            out.append(f"w[{load_g}] = w[{load_g}] + 1.0")
            out.append("if fw is not None:")
            out.append(f"    wl = {fwd}")
            first, *rest = dram_penalty("L0")
            out.append("el" + first)
            out.extend(rest)
            out.append("ld = s + wl")
        elif r.loads > 1:
            ready_of(insn.registers_read_addr())
            out.append(f"e2 = ei + {r.loads}")
            out.append("fws = set()")
            out.append("j = ei")
            out.append("while j < e2:")
            out.append("    nn = ln[j]")
            out.append("    fv = lr_get(nn)")
            out.append("    if fv is not None:")
            out.append("        fws.add(nn)")
            out.append("        if fv > t: t = fv")
            out.append("    j = j + 1")
            out.append(f"s = w[{load_g}] / {load_p}")
            out.append("if t > s: s = t")
            out.append(f"w[{load_g}] = w[{load_g}] + 1.0")
            out.append("worst = 0.0")
            out.append("j = ei")
            out.append("while j < e2:")
            out.append("    nn = ln[j]")
            out.append("    if nn in fws:")
            out.append(f"        wl = {fwd}")
            first, *rest = dram_penalty("lv[j]")
            out.append("    el" + first)
            out.extend("    " + line for line in rest)
            out.append("    if wl > worst: worst = wl")
            out.append("    j = j + 1")
            out.append("ld = s + worst")
            out.append("ei = e2")

        ready_of(insn.registers_read_data())
        if insn.info.reads_flags:
            out.append("if flags > t: t = flags")
        if r.loads:
            out.append("if ld > t: t = ld")
        if r.gather_lanes:
            service = repr(max(1.0, r.gather_lanes / (2 * self._load_ports)))
        else:
            service = "1.0"
        out.append(f"s = w[{gidx}] / {pipes}")
        out.append("if t > s: s = t")
        out.append(f"w[{gidx}] = w[{gidx}] + {service}")
        out.append(f"c = s + {latency!r}")
        if r.stores:
            store_g = self._group_index["store"]
            out.append(f"w[{store_g}] = w[{store_g}] + 1.0")
            out.append("L1 = lv[ei]; N1 = ln[ei]; ei = ei + 1")
            out.append("lr[N1] = c")
            out.append("if L1 == 2:")
            out.append(f"    w[{dram_g}] = w[{dram_g}] + {dsv}")
        for slot in _dense_regs(insn.registers_written()):
            out.append(f"rr[{slot}] = c")
        if insn.info.writes_flags:
            out.append("flags = c")
        out.append(f"fetch = fetch + {self._fetch_step!r}")
        if r.is_cond:
            out.append("if mi[bi]:")
            out.append(f"    fetch = c + {self.spec.branch_miss_penalty!r}")
            out.append("bi = bi + 1")
        out.append("if c > last: last = c")
