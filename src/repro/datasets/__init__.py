"""Scaled synthetic twins of the paper's 14 SuiteSparse matrices.

The paper evaluates on the 14 largest matrices of the SuiteSparse
collection (Table III, 0.9-11.6 billion non-zeros).  Downloading them is
impossible here and simulating a billion non-zeros is infeasible, so
each matrix gets a *scaled synthetic twin*: a generator from the same
structural family (uniform random, RMAT/Kronecker, power-law web/social
graph, Mycielskian construction, term-document corpus graph), sized down
by a common factor while preserving the properties the SpMM kernels are
sensitive to — the rows:nnz ratio (mean row length) and the row-length
skew that drives workload imbalance across the three split strategies.
"""

from repro.datasets.generators import (
    corpus_graph,
    mycielskian,
    power_law_graph,
    rmat,
    uniform_random,
)
from repro.datasets.suite import (
    DATASET_NAMES,
    DEFAULT_SCALE,
    DatasetSpec,
    load,
    spec,
    summary_table,
)

__all__ = [
    "DATASET_NAMES",
    "DEFAULT_SCALE",
    "DatasetSpec",
    "corpus_graph",
    "load",
    "mycielskian",
    "power_law_graph",
    "rmat",
    "spec",
    "summary_table",
    "uniform_random",
]
