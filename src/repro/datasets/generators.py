"""Sparse-matrix generators for the dataset twins.

Each generator produces a square :class:`CsrMatrix` with float32 values
uniform in ``(0, 1)`` (the paper multiplies by "a random-value dense
matrix"; the sparse values' distribution is irrelevant to the kernels,
only the structure matters).  All generators are deterministic given a
seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix

__all__ = [
    "corpus_graph",
    "mycielskian",
    "power_law_graph",
    "rmat",
    "uniform_random",
]


def _finish(nrows: int, rows: np.ndarray, cols: np.ndarray,
            rng: np.random.Generator, name: str) -> CsrMatrix:
    vals = rng.random(rows.size, dtype=np.float32).astype(np.float32)
    vals = np.maximum(vals, np.float32(1e-3))  # avoid exact zeros
    coo = CooMatrix(nrows, nrows, rows, cols, vals)
    return CsrMatrix.from_coo(coo, name=name)


def uniform_random(nrows: int, nnz: int, seed: int = 0,
                   name: str = "urand") -> CsrMatrix:
    """Erdős–Rényi-style uniform random matrix (GAP-urand's family).

    Row lengths concentrate around the mean (binomial), the easy case
    for row-split.
    """
    if nrows <= 0 or nnz < 0:
        raise DatasetError(f"bad shape: nrows={nrows}, nnz={nnz}")
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, size=nnz)
    cols = rng.integers(0, nrows, size=nnz)
    return _finish(nrows, rows, cols, rng, name)


def rmat(scale: int, nnz: int, a: float = 0.57, b: float = 0.19,
         c: float = 0.19, seed: int = 0, name: str = "rmat") -> CsrMatrix:
    """Recursive-MATrix (Kronecker) generator — GAP-kron / social graphs.

    Standard Graph500 parameters (a=0.57, b=c=0.19, d=0.05) give the
    heavy-tailed degree distribution that makes row-split imbalanced
    (paper §IV-B.1).
    """
    if scale <= 0 or scale > 24:
        raise DatasetError(f"rmat scale must be in 1..24, got {scale}")
    d = 1.0 - a - b - c
    if d < 0:
        raise DatasetError("rmat probabilities exceed 1")
    rng = np.random.default_rng(seed)
    nrows = 1 << scale
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    for _ in range(scale):
        rows <<= 1
        cols <<= 1
        pick = rng.random(nnz)
        # quadrant choice: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1)
        right = (pick >= a) & (pick < a + b)
        lower = (pick >= a + b) & (pick < a + b + c)
        both = pick >= a + b + c
        cols += (right | both).astype(np.int64)
        rows += (lower | both).astype(np.int64)
    return _finish(nrows, rows, cols, rng, name)


def power_law_graph(nrows: int, nnz: int, alpha: float = 2.1,
                    locality: float = 0.5, seed: int = 0,
                    name: str = "powerlaw") -> CsrMatrix:
    """Power-law out-degree graph with host locality — web/social twins.

    Out-degrees follow a truncated Pareto (exponent ``alpha``); targets
    mix near-diagonal links (crawl/host locality, probability
    ``locality``) with preferential global links, mimicking uk-2005-style
    web crawls and twitter-style social graphs.
    """
    if not 1.0 < alpha:
        raise DatasetError(f"alpha must exceed 1, got {alpha}")
    if not 0.0 <= locality <= 1.0:
        raise DatasetError(f"locality must be in [0,1], got {locality}")
    rng = np.random.default_rng(seed)
    raw = rng.pareto(alpha - 1.0, size=nrows) + 1.0
    degrees = np.maximum(1, np.round(raw * nnz / raw.sum())).astype(np.int64)
    degrees = np.minimum(degrees, nrows)
    rows = np.repeat(np.arange(nrows, dtype=np.int64), degrees)
    total = int(degrees.sum())
    local = rng.random(total) < locality
    # local links: small signed offsets around the source
    offsets = rng.geometric(0.05, size=total)
    signs = rng.integers(0, 2, size=total) * 2 - 1
    local_cols = (rows + signs * offsets) % nrows
    # global links: preferential attachment towards low ids (hubs)
    global_cols = (nrows * rng.power(2.0, size=total)).astype(np.int64)
    global_cols = nrows - 1 - np.minimum(global_cols, nrows - 1)
    cols = np.where(local, local_cols, global_cols)
    return _finish(nrows, rows, cols, rng, name)


def corpus_graph(nrows: int, nnz: int, seed: int = 0,
                 name: str = "corpus") -> CsrMatrix:
    """Term co-occurrence style graph — MOLIERE / AGATHA twins.

    Literature knowledge graphs have very high mean degree and a core of
    extremely dense hub rows (common terms); modeled as a Zipf-degree
    graph with Zipf-distributed targets and no locality.
    """
    rng = np.random.default_rng(seed)
    raw = rng.pareto(1.3, size=nrows) + 1.0
    degrees = np.maximum(1, np.round(raw * nnz / raw.sum())).astype(np.int64)
    degrees = np.minimum(degrees, nrows)
    rows = np.repeat(np.arange(nrows, dtype=np.int64), degrees)
    total = int(degrees.sum())
    cols = (nrows * rng.power(1.5, size=total)).astype(np.int64)
    cols = nrows - 1 - np.minimum(cols, nrows - 1)
    perm = rng.permutation(nrows)  # hubs scattered over the id space
    cols = perm[cols]
    return _finish(nrows, rows, cols, rng, name)


def mycielskian(k: int, seed: int = 0, name: str = "") -> CsrMatrix:
    """The Mycielskian graph M_k as a symmetric 0/1-pattern matrix.

    Exact construction (not a statistical twin): M_2 = K_2 and
    M_{i+1} = Mycielskian(M_i), the same family as the paper's
    mycielskian19/20.  ``M_k`` has ``3 * 2^(k-2) - 1`` vertices and is
    unusually dense — its huge mean row length is what stresses the
    column-merging kernels.
    """
    if k < 2 or k > 14:
        raise DatasetError(f"mycielskian order must be in 2..14, got {k}")
    edges = {(0, 1)}
    n = 2
    for _ in range(k - 2):
        # vertices: originals 0..n-1, copies n..2n-1, apex 2n
        new_edges = set(edges)
        for u, v in edges:
            new_edges.add((u, v + n))
            new_edges.add((v, u + n))
        for copy in range(n, 2 * n):
            new_edges.add((copy, 2 * n))
        edges = new_edges
        n = 2 * n + 1
    pairs = np.array(sorted(edges), dtype=np.int64)
    rows = np.concatenate([pairs[:, 0], pairs[:, 1]])
    cols = np.concatenate([pairs[:, 1], pairs[:, 0]])
    rng = np.random.default_rng(seed)
    return _finish(n, rows, cols, rng, name or f"mycielskian{k}")
