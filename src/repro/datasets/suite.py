"""The 14-dataset registry (paper Table III), scaled.

Every entry records the *paper* shape and a generator producing the
scaled twin.  The default scale divides rows and non-zeros by 2^17
(~131,000x), which preserves each matrix's mean row length — the quantity
the per-row kernels and the split strategies are sensitive to — while
keeping full-grid simulation affordable.  The Mycielskian twins use the
exact graph construction at a smaller order instead of statistical
scaling, so their (naturally enormous) density differs from a pure
down-scale; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets import generators as gen
from repro.errors import DatasetError
from repro.sparse.csr import CsrMatrix

__all__ = [
    "DATASET_NAMES",
    "DEFAULT_SCALE",
    "DatasetSpec",
    "load",
    "spec",
    "summary_table",
]

#: rows and nnz divisor relative to the paper's Table III
DEFAULT_SCALE = 2.0 ** -17


@dataclass(frozen=True)
class DatasetSpec:
    """One Table III matrix and how to build its scaled twin."""

    name: str
    paper_rows: int
    paper_nnz: int
    family: str
    builder: Callable[[int, int, int], CsrMatrix]  # (rows, nnz, seed)

    @property
    def paper_mean_row(self) -> float:
        return self.paper_nnz / self.paper_rows

    def build(self, scale: float = DEFAULT_SCALE, seed: int = 7) -> CsrMatrix:
        rows = max(64, int(self.paper_rows * scale))
        target_nnz = max(256, int(self.paper_nnz * scale))
        # Duplicate coordinates merge during CSR conversion, which would
        # erode the twin's mean row length; oversample until the realized
        # nnz is within 10% of target (or the matrix saturates).
        request = target_nnz
        matrix = self.builder(rows, request, seed)
        for _ in range(4):
            if matrix.nnz >= 0.9 * target_nnz:
                break
            if matrix.nnz >= 0.5 * rows * rows:
                break  # nearly dense; no room left
            request = int(request * min(2.0, 1.15 * target_nnz / max(1, matrix.nnz)))
            matrix = self.builder(rows, request, seed)
        return CsrMatrix(matrix.nrows, matrix.ncols, matrix.row_ptr,
                         matrix.col_indices, matrix.vals, name=self.name)


def _web(alpha: float, locality: float):
    def build(rows: int, nnz: int, seed: int) -> CsrMatrix:
        return gen.power_law_graph(rows, nnz, alpha=alpha,
                                   locality=locality, seed=seed)
    return build


def _social(alpha: float):
    def build(rows: int, nnz: int, seed: int) -> CsrMatrix:
        return gen.power_law_graph(rows, nnz, alpha=alpha, locality=0.1,
                                   seed=seed)
    return build


def _rmat(rows: int, nnz: int, seed: int) -> CsrMatrix:
    scale_bits = max(6, (rows - 1).bit_length())
    return gen.rmat(scale_bits, nnz, seed=seed)


def _urand(rows: int, nnz: int, seed: int) -> CsrMatrix:
    return gen.uniform_random(rows, nnz, seed=seed)


def _corpus(rows: int, nnz: int, seed: int) -> CsrMatrix:
    return gen.corpus_graph(rows, nnz, seed=seed)


def _mycielskian(order: int):
    def build(rows: int, nnz: int, seed: int) -> CsrMatrix:
        return gen.mycielskian(order, seed=seed)
    return build


_SPECS = [
    DatasetSpec("mycielskian19", 393_215, 903_194_710, "mycielskian",
                _mycielskian(9)),
    DatasetSpec("uk-2005", 39_459_925, 936_364_282, "web",
                _web(alpha=2.1, locality=0.6)),
    DatasetSpec("webbase-2001", 118_142_155, 1_019_903_190, "web",
                _web(alpha=2.3, locality=0.7)),
    DatasetSpec("it-2004", 41_291_594, 1_150_725_436, "web",
                _web(alpha=2.1, locality=0.6)),
    DatasetSpec("GAP-twitter", 61_578_415, 1_468_364_884, "social",
                _social(alpha=1.9)),
    DatasetSpec("twitter7", 41_652_230, 1_468_365_182, "social",
                _social(alpha=1.9)),
    DatasetSpec("GAP-web", 50_636_151, 1_930_292_948, "web",
                _web(alpha=2.0, locality=0.6)),
    DatasetSpec("sk-2005", 50_636_154, 1_949_412_601, "web",
                _web(alpha=2.0, locality=0.6)),
    DatasetSpec("mycielskian20", 786_431, 2_710_370_560, "mycielskian",
                _mycielskian(10)),
    DatasetSpec("com-Friendster", 65_608_366, 3_612_134_270, "social",
                _social(alpha=2.0)),
    DatasetSpec("GAP-kron", 134_217_726, 4_223_264_644, "kron", _rmat),
    DatasetSpec("GAP-urand", 134_217_728, 4_294_966_740, "uniform", _urand),
    DatasetSpec("MOLIERE_2016", 30_239_687, 6_677_301_366, "corpus", _corpus),
    DatasetSpec("AGATHA_2015", 183_964_077, 11_588_725_964, "corpus", _corpus),
]

_BY_NAME = {s.name: s for s in _SPECS}
DATASET_NAMES = tuple(s.name for s in _SPECS)

_CACHE: dict[tuple[str, float, int], CsrMatrix] = {}


def spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by its Table III name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        valid = ", ".join(DATASET_NAMES)
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of: {valid}"
        ) from None


def load(name: str, scale: float = DEFAULT_SCALE, seed: int = 7) -> CsrMatrix:
    """Build (and cache) the scaled twin of a Table III matrix."""
    key = (name, scale, seed)
    if key not in _CACHE:
        _CACHE[key] = spec(name).build(scale, seed)
    return _CACHE[key]


def summary_table(scale: float = DEFAULT_SCALE) -> str:
    """Render paper shapes vs scaled-twin shapes (sanity check)."""
    lines = [
        f"{'dataset':16s} {'paper rows':>12s} {'paper nnz':>14s} "
        f"{'mean':>7s} | {'rows':>7s} {'nnz':>9s} {'mean':>7s} {'gini':>5s}",
    ]
    for entry in _SPECS:
        twin = load(entry.name, scale)
        lines.append(
            f"{entry.name:16s} {entry.paper_rows:12,} {entry.paper_nnz:14,} "
            f"{entry.paper_mean_row:7.1f} | {twin.nrows:7,} {twin.nnz:9,} "
            f"{twin.mean_row_length():7.1f} {twin.gini_row_imbalance():5.2f}"
        )
    return "\n".join(lines)
