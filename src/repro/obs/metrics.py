"""Metrics: counters, gauges, histograms behind one snapshot surface.

Before :mod:`repro.obs`, every subsystem grew its own stat dict —
``ServiceStats``, ``CacheStats``, ``LockStats``, ``PoolStats``, the
autotune memo counters — each with its own reader that walked live
mutable state.  This module unifies them behind one registry with two
feeding modes:

* **instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` objects created once
  (``registry.counter("sim_instructions_total", backend="sim")``) and
  bumped from the code that owns the event;
* **collectors** — callables returning :class:`Sample` lists, for
  subsystems that already keep their own counters: the collector
  converts a *consistent snapshot* of the native stats into samples at
  read time, so nothing is double-counted and the hot paths pay zero
  new bookkeeping.

:meth:`MetricsRegistry.snapshot` materializes one
:class:`MetricsSnapshot` — instruments read under the registry lock,
collectors invoked once each — that the exporters
(:mod:`repro.obs.export`) render as Prometheus text or JSON.

Naming conventions (enforced by use, not code): ``snake_case`` metric
names, ``_total`` suffix for monotonic counters, ``_seconds`` /
``_bytes`` unit suffixes, and low-cardinality labels (``service``,
``backend``, ``system``, ``handle`` only where bounded).
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Sample",
    "get_registry",
    "labels_key",
]

#: fixed bucket layout for latency histograms, in seconds: 10us .. 10s
#: in 1-2.5-5 steps — wide enough for codegen, tight enough for serving
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5, 5.0, 10.0,
)


def labels_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) identity of one label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One exported time-series point: name + labels + value."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float
    kind: str = "gauge"              # "counter" | "gauge"

    @property
    def labels_dict(self) -> dict:
        return dict(self.labels)


class Counter:
    """A monotonically increasing count (requests, drops, events)."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[Sample]:
        return [Sample(self.name, self.labels, self._value, "counter")]


class Gauge:
    """A point-in-time level (live workspaces, retained bytes)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[Sample]:
        return [Sample(self.name, self.labels, self._value, "gauge")]


class Histogram:
    """A fixed-bucket distribution (latencies, batch sizes).

    Buckets are cumulative on export (Prometheus ``le`` convention):
    ``name_bucket{le="0.005"}`` counts observations <= 0.005, the
    ``le="+Inf"`` bucket equals ``name_count``, and ``name_sum``
    accumulates the raw values.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, labels: tuple,
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram buckets must be a sorted non-empty sequence, "
                f"got {buckets!r}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)   # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def samples(self) -> list[Sample]:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        out: list[Sample] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append(Sample(f"{self.name}_bucket",
                              self.labels + (("le", repr(bound)),),
                              running, "counter"))
        out.append(Sample(f"{self.name}_bucket",
                          self.labels + (("le", "+Inf"),), total, "counter"))
        out.append(Sample(f"{self.name}_count", self.labels, total,
                          "counter"))
        out.append(Sample(f"{self.name}_sum", self.labels, acc, "counter"))
        return out


class MetricsRegistry:
    """Get-or-create instruments plus pluggable collectors.

    Instruments are keyed by ``(name, labels)`` — a second
    ``counter("x", a=1)`` call returns the first instrument, so call
    sites need no caching of their own.  Registering the same name with
    a different instrument kind is an error (one name, one type).
    """

    def __init__(self) -> None:
        self._instruments: dict = {}
        self._kinds: dict[str, str] = {}
        self._collectors: list = []
        self._lock = threading.RLock()

    # -- instruments ----------------------------------------------------
    def _instrument(self, cls, name: str, labels: dict, **kwargs):
        key = (name, labels_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"not a {cls.__name__}")
                return existing
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {kind}")
            self._kinds[name] = cls.kind
            instrument = cls(name, labels_key(labels), **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS,
                  **labels) -> Histogram:
        return self._instrument(Histogram, name, labels, buckets=buckets)

    # -- collectors -----------------------------------------------------
    def register_collector(self, collect) -> object:
        """Add a callable returning an iterable of :class:`Sample`.

        A collector can mark itself finished by setting ``collect.dead``
        truthy; it is then pruned at the next snapshot (the weakref
        pattern service collectors use).
        """
        with self._lock:
            self._collectors.append(collect)
        return collect

    def unregister_collector(self, collect) -> bool:
        with self._lock:
            try:
                self._collectors.remove(collect)
                return True
            except ValueError:
                return False

    # -- reading --------------------------------------------------------
    def snapshot(self) -> "MetricsSnapshot":
        """One consistent pass over instruments and collectors."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        samples: list[Sample] = []
        for instrument in instruments:
            samples.extend(instrument.samples())
        dead = []
        for collect in collectors:
            if getattr(collect, "dead", False):
                dead.append(collect)
                continue
            samples.extend(collect())
        for collect in dead:
            self.unregister_collector(collect)
        samples.sort(key=lambda s: (s.name, s.labels))
        return MetricsSnapshot(samples=tuple(samples))


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable, sorted sample set from one registry pass."""

    samples: tuple[Sample, ...]

    def value(self, name: str, **labels) -> float:
        """The value of the sample matching ``name`` and (a superset of)
        ``labels``; raises KeyError when nothing matches."""
        wanted = set(labels_key(labels))
        for sample in self.samples:
            if sample.name == name and wanted <= set(sample.labels):
                return sample.value
        raise KeyError(f"no sample {name!r} with labels {labels!r}")

    def filter(self, name: str) -> list[Sample]:
        return [s for s in self.samples if s.name == name]

    def names(self) -> list[str]:
        seen: dict[str, None] = {}
        for sample in self.samples:
            seen.setdefault(sample.name, None)
        return list(seen)


# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry the built-in instrumentation feeds."""
    return _REGISTRY
