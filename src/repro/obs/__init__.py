"""repro.obs: unified tracing, metrics and profiling for the stack.

The paper's central claim is an accounting argument — specialization
wins only when codegen overhead is amortized across runs (Table IV) —
and this package is the accounting instrument: one low-overhead
observability layer threaded through serving, the plan→bind→execute
pipeline, autotuning, code generation and the simulator.

Three pieces:

* **tracing** (:mod:`repro.obs.trace`) — ``with obs.span("serve.
  multiply", handle=h): ...`` records timed, attributed spans into
  per-thread ring buffers.  Off by default: a disabled span costs one
  attribute check and returns a shared no-op, so the instrumented hot
  paths are effectively free until :func:`enable_tracing` is called.
  Trace ids scope a request's nested spans; the serving batch protocol
  stamps batch ids across leader and follower spans.
* **metrics** (:mod:`repro.obs.metrics`) — a registry of counters /
  gauges / histograms plus *collectors* that convert the existing stat
  surfaces (``ServiceStats``, ``CacheStats``, ``LockStats``, pool,
  autotune memo, replay-engine flush counters, simulated perf
  counters) into one snapshot-consistent sample set.
* **export** (:mod:`repro.obs.export`) — Chrome-trace/Perfetto JSON
  for spans (loadable at https://ui.perfetto.dev), Prometheus text and
  structured JSON for metrics.

Quick use::

    import repro.obs as obs

    obs.enable_tracing()
    ... serve traffic ...
    obs.write_chrome_trace("trace.json")      # -> ui.perfetto.dev
    print(obs.prometheus_text())              # every subsystem's stats

``python -m repro.bench obsoverhead`` measures the cost of all of this
on the serving hot path (CI gates: tracing off ~0%, tracing on <5%).
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    metrics_json,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Sample,
    get_registry,
    labels_key,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    event,
    get_tracer,
    span,
    trace_context,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Sample",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "event",
    "get_registry",
    "get_tracer",
    "labels_key",
    "metrics_json",
    "prometheus_text",
    "record_counters",
    "span",
    "trace_context",
    "tracing_enabled",
    "write_chrome_trace",
]


def record_counters(counters, **labels) -> None:
    """Publish one simulated run's perf counters into the registry.

    Each non-zero :class:`repro.machine.Counters` field becomes a
    ``sim_<field>_total`` counter labeled by the caller (``backend=``,
    ``system=``), so ``repro.run(..., backend="sim")`` results are
    inspectable with the same tooling as serving stats.
    """
    registry = get_registry()
    for name, value in counters.as_dict().items():
        if value:
            registry.counter(f"sim_{name}_total", **labels).inc(value)


# ----------------------------------------------------------------------
# Built-in collectors for process-wide stat surfaces.  Imports happen
# inside the collectors: obs stays import-light (core and serve import
# it from their hot modules), and the stats appear in snapshots as soon
# as — and only when — the owning subsystem has been imported.
# ----------------------------------------------------------------------
def _autotune_collector():
    import sys

    module = sys.modules.get("repro.core.autotune")
    if module is None:
        return ()
    memo = module.autotune_memo_stats()
    return (
        Sample("autotune_memo_hits_total", (), memo["hits"], "counter"),
        Sample("autotune_memo_misses_total", (), memo["misses"], "counter"),
        Sample("autotune_memo_entries", (), memo["entries"], "gauge"),
        Sample("autotune_memo_pass_entries", (), memo["pass_entries"],
               "gauge"),
    )


def _replay_collector():
    import sys

    module = sys.modules.get("repro.machine.replay")
    if module is None:
        return ()
    stats = module.flush_stats()
    return tuple(
        Sample(f"sim_replay_{name}_total", (), value, "counter")
        for name, value in stats.items()
    )


get_registry().register_collector(_autotune_collector)
get_registry().register_collector(_replay_collector)
