"""Structured tracing: per-thread span ring buffers, trace-id scopes.

The serving subsystem's request lifecycle — admit, resolve, coalesce,
execute — crosses thread and lock boundaries the aggregate stats cannot
attribute: a histogram says *some* batch had 7 members, a trace says
*which* requests waited on *which* leader and for how long.  This
module is the recording half of :mod:`repro.obs`:

* :func:`span` is a context manager emitting one timed
  :class:`SpanRecord` into the calling thread's ring buffer on exit.
  Disabled (the default), it returns a shared no-op object after one
  attribute check — the instrumented hot paths cost a function call and
  an argument dict, nothing else.  Enabled, a span costs two clock
  reads and one list store; no locks are taken on the hot path.
* Each thread writes to its own fixed-capacity ring.  A full ring
  overwrites its oldest record and counts the drop — emission never
  blocks, never allocates beyond the record itself, and never stalls
  another thread.
* Trace ids scope requests: the outermost (root) span of a thread
  allocates a fresh id and nested spans inherit it, so one served
  request's autotune, codegen and execute spans share an id without any
  caller plumbing.  :func:`trace_context` pins an explicit id across a
  region (for cross-thread propagation).

Spans are *records*, not live objects: readers snapshot the rings
(:meth:`Tracer.spans`) and feed exporters
(:func:`repro.obs.export.chrome_trace`); nothing here retains kernels,
plans or operands.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_CAPACITY",
    "SpanRecord",
    "Tracer",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "event",
    "get_tracer",
    "span",
    "trace_context",
    "tracing_enabled",
]

#: per-thread ring capacity (span records); at typical serving rates a
#: ring this size holds several seconds of history per thread
DEFAULT_CAPACITY = 8192


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named, attributed [start, end) interval."""

    name: str
    trace_id: str
    tid: int
    thread_name: str
    start: float                     # time.perf_counter() seconds
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NoopSpan:
    """The disabled-tracing span: enter/exit/annotate all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Ring:
    """One thread's span buffer: fixed capacity, overwrite-oldest.

    Only the owning thread writes; readers snapshot cross-thread.  The
    writes are plain list stores and integer bumps (GIL-atomic), so the
    emitting thread never blocks — a reader racing a writer may miss
    the very newest record, which is the documented trade.
    """

    __slots__ = ("records", "capacity", "count", "tid", "thread_name")

    def __init__(self, capacity: int, tid: int, thread_name: str) -> None:
        self.records: list = [None] * capacity
        self.capacity = capacity
        self.count = 0
        self.tid = tid
        self.thread_name = thread_name

    def push(self, record: SpanRecord) -> None:
        self.records[self.count % self.capacity] = record
        self.count += 1

    @property
    def dropped(self) -> int:
        """Records overwritten before any reader saw them."""
        return max(0, self.count - self.capacity)

    def snapshot(self) -> list[SpanRecord]:
        """The retained records, oldest first."""
        count, cap = self.count, self.capacity
        if count <= cap:
            return [r for r in self.records[:count] if r is not None]
        pivot = count % cap
        wrapped = self.records[pivot:] + self.records[:pivot]
        return [r for r in wrapped if r is not None]

    def reset(self) -> None:
        self.records = [None] * self.capacity
        self.count = 0


class _Span:
    """A live (entered, not yet exited) span."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def annotate(self, **attrs) -> "_Span":
        """Attach attributes discovered mid-span (batch ids, verdicts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._tracer._enter_span()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._record(self.name, self._start, end, self.attrs)
        self._tracer._exit_span()
        return False


class Tracer:
    """A set of per-thread span rings behind one enable switch.

    One process-wide instance (:func:`get_tracer`) backs the module-
    level :func:`span` / :func:`event` helpers every instrumented call
    site uses; independent instances exist only for tests.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._local = threading.local()
        self._rings: list[_Ring] = []
        self._rings_lock = threading.Lock()
        self._ids = itertools.count(1)

    # -- per-thread state ----------------------------------------------
    def _state(self):
        state = getattr(self._local, "state", None)
        if state is None:
            thread = threading.current_thread()
            ring = _Ring(self.capacity, thread.ident or 0, thread.name)
            # registration is once per thread — the only lock in the
            # emission path, never on the steady state
            with self._rings_lock:
                self._rings.append(ring)
            state = self._local.state = {
                "ring": ring, "depth": 0, "trace": "", "pinned": 0}
        return state

    def new_trace_id(self) -> str:
        return f"t{next(self._ids):06x}"

    def current_trace_id(self) -> str:
        """The active trace id for this thread ('' outside any span)."""
        state = getattr(self._local, "state", None)
        return state["trace"] if state is not None else ""

    def _enter_span(self) -> None:
        state = self._state()
        if state["depth"] == 0 and not state["pinned"]:
            state["trace"] = self.new_trace_id()
        state["depth"] += 1

    def _exit_span(self) -> None:
        state = self._state()
        state["depth"] -= 1
        if state["depth"] <= 0:
            state["depth"] = 0
            if not state["pinned"]:
                state["trace"] = ""

    def _record(self, name: str, start: float, end: float,
                attrs: dict) -> None:
        state = self._state()
        ring = state["ring"]
        ring.push(SpanRecord(
            name=name, trace_id=state["trace"], tid=ring.tid,
            thread_name=ring.thread_name, start=start, end=end,
            attrs=attrs,
        ))

    # -- emission -------------------------------------------------------
    def span(self, name: str, /, **attrs):
        """A context manager timing one named operation.

        Disabled, returns the shared no-op span; enabled, the span
        records on exit into the calling thread's ring.  ``name`` is
        positional-only so attributes may be called ``name`` too.
        """
        if not self.enabled:
            return _NOOP
        return _Span(self, name, attrs)

    def event(self, name: str, /, **attrs) -> None:
        """Record an instantaneous (zero-duration) marker."""
        if not self.enabled:
            return
        now = time.perf_counter()
        self._record(name, now, now, attrs)

    def trace_context(self, trace_id: str | None = None):
        """Pin a trace id across a region (cross-thread propagation).

        Spans inside the region record the pinned id instead of
        allocating per-root ids; the previous id is restored on exit.
        """
        return _TraceContext(self, trace_id or self.new_trace_id())

    # -- reading --------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        """All retained spans across threads (per-thread order kept)."""
        with self._rings_lock:
            rings = list(self._rings)
        collected: list[SpanRecord] = []
        for ring in rings:
            collected.extend(ring.snapshot())
        return collected

    def dropped(self) -> int:
        """Spans lost to ring wraparound, across all threads."""
        with self._rings_lock:
            return sum(ring.dropped for ring in self._rings)

    def clear(self) -> None:
        """Reset every ring in place (thread-local handles stay valid)."""
        with self._rings_lock:
            for ring in self._rings:
                ring.reset()


class _TraceContext:
    __slots__ = ("_tracer", "_trace_id", "_saved")

    def __init__(self, tracer: Tracer, trace_id: str) -> None:
        self._tracer = tracer
        self._trace_id = trace_id

    def __enter__(self) -> str:
        state = self._tracer._state()
        self._saved = (state["trace"], state["pinned"])
        state["trace"] = self._trace_id
        state["pinned"] += 1
        return self._trace_id

    def __exit__(self, *exc) -> bool:
        state = self._tracer._state()
        state["trace"], state["pinned"] = self._saved
        return False


# ----------------------------------------------------------------------
# The process-wide tracer behind every instrumented call site
# ----------------------------------------------------------------------
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer the instrumentation emits into."""
    return _TRACER


def span(name: str, /, **attrs):
    """Emit one span into the process-wide tracer (no-op when disabled)."""
    if not _TRACER.enabled:
        return _NOOP
    return _Span(_TRACER, name, attrs)


def event(name: str, /, **attrs) -> None:
    """Emit one instantaneous marker into the process-wide tracer."""
    _TRACER.event(name, **attrs)


def current_trace_id() -> str:
    return _TRACER.current_trace_id()


def trace_context(trace_id: str | None = None):
    return _TRACER.trace_context(trace_id)


def enable_tracing() -> Tracer:
    """Switch span recording on; returns the process-wide tracer."""
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> Tracer:
    """Switch span recording off (buffers are kept until cleared)."""
    _TRACER.enabled = False
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled
