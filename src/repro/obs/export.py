"""Exporters: Chrome-trace/Perfetto JSON for spans, Prometheus text and
structured JSON for metrics.

The trace format is the Chrome Trace Event JSON that
https://ui.perfetto.dev (and ``chrome://tracing``) loads directly: one
complete (``"ph": "X"``) event per :class:`~repro.obs.trace.SpanRecord`
with microsecond timestamps, per-thread tracks named after the emitting
threads, and every span attribute (trace id, batch id, flush reason,
...) under ``args`` where the UI's selection panel shows it.

The metrics exporters render a :class:`~repro.obs.metrics
.MetricsSnapshot`: :func:`prometheus_text` emits the text exposition
format (``# TYPE`` headers, ``name{label="v"} value`` lines) and
:func:`metrics_json` a stable JSON document for archival next to the
``BENCH_*.json`` files.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, get_registry
from repro.obs.trace import SpanRecord, Tracer, get_tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "metrics_json",
    "prometheus_text",
    "write_chrome_trace",
]


def chrome_trace(spans: list[SpanRecord] | None = None, *,
                 tracer: Tracer | None = None) -> dict:
    """Render spans as a Chrome Trace Event document (a JSON dict).

    With no ``spans`` given, snapshots ``tracer`` (default: the
    process-wide tracer).  Events are sorted by start time within each
    thread, so per-thread timestamps are monotonic; the document also
    records the tracer's drop count, making ring-buffer truncation
    visible in the artifact rather than silent.
    """
    source = tracer or get_tracer()
    if spans is None:
        spans = source.spans()
    pid = os.getpid()
    by_thread: dict[int, list[SpanRecord]] = {}
    names: dict[int, str] = {}
    for record in spans:
        by_thread.setdefault(record.tid, []).append(record)
        names.setdefault(record.tid, record.thread_name)
    events: list[dict] = []
    for tid in sorted(by_thread):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": names[tid]},
        })
        for record in sorted(by_thread[tid], key=lambda r: r.start):
            args = {str(k): v for k, v in record.attrs.items()}
            if record.trace_id:
                args["trace_id"] = record.trace_id
            events.append({
                "name": record.name,
                "cat": record.name.split(".", 1)[0],
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": record.start * 1e6,
                "dur": (record.end - record.start) * 1e6,
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(spans),
            "dropped_spans": source.dropped(),
        },
    }


def chrome_trace_json(spans: list[SpanRecord] | None = None, *,
                      tracer: Tracer | None = None, indent=None) -> str:
    """:func:`chrome_trace`, serialized (attrs must be JSON-encodable)."""
    return json.dumps(chrome_trace(spans, tracer=tracer), indent=indent,
                      default=str)


def write_chrome_trace(path: str, spans: list[SpanRecord] | None = None, *,
                       tracer: Tracer | None = None) -> str:
    """Dump the current trace to ``path``; returns the path."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(spans, tracer=tracer, indent=None))
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace(
        "\n", r"\n")


def prometheus_text(snapshot: MetricsSnapshot | None = None, *,
                    registry: MetricsRegistry | None = None) -> str:
    """The Prometheus text exposition of one metrics snapshot.

    With no ``snapshot`` given, takes one from ``registry`` (default:
    the process-wide registry).
    """
    if snapshot is None:
        snapshot = (registry or get_registry()).snapshot()
    lines: list[str] = []
    last_name = None
    for sample in snapshot.samples:
        # histogram children (_bucket/_count/_sum) share the parent's
        # TYPE header; emit one header per base series name
        base = sample.name
        for suffix in ("_bucket", "_count", "_sum"):
            if base.endswith(suffix):
                base = base[: -len(suffix)]
                break
        if base != last_name:
            kind = "histogram" if base != sample.name else sample.kind
            lines.append(f"# TYPE {base} {kind}")
            last_name = base
        if sample.labels:
            rendered = ",".join(
                f'{key}="{_escape_label(value)}"'
                for key, value in sample.labels)
            lines.append(f"{sample.name}{{{rendered}}} {sample.value:g}")
        else:
            lines.append(f"{sample.name} {sample.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(snapshot: MetricsSnapshot | None = None, *,
                 registry: MetricsRegistry | None = None) -> dict:
    """A stable JSON document for one metrics snapshot."""
    if snapshot is None:
        snapshot = (registry or get_registry()).snapshot()
    return {
        "metrics": [
            {
                "name": sample.name,
                "labels": sample.labels_dict,
                "value": sample.value,
                "kind": sample.kind,
            }
            for sample in snapshot.samples
        ],
    }
