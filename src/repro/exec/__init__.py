"""`repro.exec`: execution backends as a first-class layer.

The PR-2 pipeline (prepare → bind → execute) fixed *what* runs — a
system's kernel bound to a problem — but *how* it runs was smeared
across ad hoc booleans (``timing=``, ``JitSpMM.multiply`` vs
``.profile``).  This package names that axis: an
:class:`Executor` turns a bound plan into a
:class:`~repro.core.runner.RunResult`, and
``ExecutionConfig(backend=...)`` selects one by name everywhere —
``repro.run``, :class:`repro.core.engine.JitSpMM`,
:class:`repro.serve.SpmmService`, and the bench harness.

Built-ins (see :mod:`repro.exec.backends`): ``"native"`` (host-speed
numpy result), ``"counts"`` (functional + event counters), ``"sim"``
(cycle-accurate), and ``"sim-fused"`` (superblock-compiled counts
fidelity — the paper's own specialization trick applied to the
simulator, bit-identical to ``sim`` on results and event counters at
several times the simulated instructions/sec).

Example::

    import repro

    result = repro.run(A, X, system="jit", backend="sim-fused")
    print(result.backend, result.counters.instructions)

    for name in repro.available_backends():
        print(name, repro.get_backend(name).capabilities())
"""

from repro.exec.backend import (
    Executor,
    available_backends,
    backend_capabilities,
    canonical_name,
    get_backend,
    register_backend,
    unregister_backend,
)

__all__ = [
    "Executor",
    "available_backends",
    "backend_capabilities",
    "canonical_name",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
