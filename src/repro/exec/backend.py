"""The :class:`Executor` contract and the backend registry.

An execution backend is one point on the speed/fidelity axis: given a
bound plan (stage-2 output of the :mod:`repro.api` pipeline), it
produces a :class:`~repro.core.runner.RunResult`.  What varies is what
the result can be trusted for — declared by three capability flags:

===========  ======  ========  ======
backend      result  counters  cycles
===========  ======  ========  ======
native        yes      no        no
counts        yes      yes       no
sim           yes      yes       yes
sim-fused     yes      yes       yes
sim-ref       yes      yes       yes
===========  ======  ========  ======

``sim`` and ``sim-fused`` run the record/replay timing engine
(:mod:`repro.machine.replay`); ``sim-ref`` is the per-access reference
implementation, bit-identical on every counter.

The registry mirrors :mod:`repro.api.registry` for systems: built-ins
load lazily, third-party executors plug in with
:func:`register_backend` and immediately work with
``ExecutionConfig(backend=...)``, ``repro.run``, ``JitSpMM``,
``SpmmService`` and the bench harness — a GPU or process-pool engine is
a registration away, with no caller changes.
"""

from __future__ import annotations

import abc
import threading

from repro.errors import RegistryError

__all__ = [
    "Executor",
    "available_backends",
    "backend_capabilities",
    "canonical_name",
    "get_backend",
    "register_backend",
    "unregister_backend",
]

_BACKENDS: dict = {}
_ALIASES: dict[str, str] = {}
_LOCK = threading.Lock()
_BUILTINS_LOADED = False


class Executor(abc.ABC):
    """One execution backend (the backend registry's unit).

    Attributes:
        name: Registry name (``"native"``, ``"counts"``, ``"sim"``,
            ``"sim-fused"``).
        requires_kernel: False when the backend can serve a plan whose
            kernel was never resolved (the native numpy backend computes
            the result without generated code; the pipeline then skips
            codegen and cache probes entirely).
        provides_result: The returned ``y`` is the product ``A @ X``.
        provides_counters: Event counters (instructions, loads,
            branches, ...) are populated.
        provides_cycles: The modeled-cycle estimate is populated
            (cache + pipeline simulation ran).
    """

    name: str = ""
    requires_kernel: bool = True
    provides_result: bool = True
    provides_counters: bool = False
    provides_cycles: bool = False

    @abc.abstractmethod
    def execute(self, plan):
        """Run ``plan`` and return a :class:`repro.core.runner.RunResult`
        with :attr:`RunResult.backend` set to this executor's name."""

    def capabilities(self) -> dict[str, bool]:
        """The capability row for this backend (README's matrix)."""
        return {
            "result": self.provides_result,
            "counters": self.provides_counters,
            "cycles": self.provides_cycles,
        }


def _ensure_builtins() -> None:
    """Load the built-in executors exactly once (they import the
    machine and core layers, which the registry itself must not).

    The flag is raised *before* the import: the built-ins register
    themselves while their module loads, and those re-entrant
    ``register_backend`` calls must not recurse into the import.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        try:
            import repro.exec.backends  # noqa: F401  (registers on import)
        except BaseException:
            _BUILTINS_LOADED = False
            raise


def register_backend(name: str, executor: Executor, *,
                     aliases: tuple[str, ...] = ()) -> None:
    """Register ``executor`` under ``name`` (and optional aliases).

    Re-registering a name replaces the previous entry (last wins), so
    reloading a module that registers at import stays idempotent.
    """
    if not name:
        raise RegistryError("backend name must be non-empty")
    # load the built-ins first so the alias-collision check below sees
    # them even when a third party registers before any resolution ran
    _ensure_builtins()
    if not executor.name:
        # a third-party executor that never set the class attribute
        # still reports the name it is reachable under (RunResult
        # attribution and capability listings rely on it)
        executor.name = name
    with _LOCK:
        for alias in aliases:
            if alias in _BACKENDS and alias != name:
                # an alias must never shadow another backend's canonical
                # name — config normalization, serving traffic buckets
                # and bench memo keys all resolve through canonical_name
                raise RegistryError(
                    f"alias {alias!r} would shadow the registered "
                    f"backend of that name")
        _BACKENDS[name] = executor
        # last-wins: a canonical registration reclaims its name from
        # any alias previously pointing elsewhere
        _ALIASES.pop(name, None)
        for alias in aliases:
            _ALIASES[alias] = name


def unregister_backend(name: str) -> bool:
    """Drop a registration (and any aliases pointing at it)."""
    with _LOCK:
        found = _BACKENDS.pop(name, None) is not None
        for alias in [a for a, target in _ALIASES.items() if target == name]:
            del _ALIASES[alias]
        return found


def canonical_name(name: str) -> str:
    """Resolve a backend name or alias to its canonical registry key.

    The canonical key — not ``executor.name`` — is the identity every
    layer stores (config normalization, serving traffic buckets, bench
    memo keys), so alias spellings can never fragment one backend into
    several. Raises :class:`RegistryError` for unknown names.
    """
    _ensure_builtins()
    with _LOCK:
        # canonical names take precedence over aliases (register_backend
        # also refuses alias registrations that would shadow one)
        if name in _BACKENDS:
            return name
        canonical = _ALIASES.get(name)
        if canonical is not None and canonical in _BACKENDS:
            return canonical
    raise RegistryError(
        f"unknown execution backend {name!r}; available: "
        f"{', '.join(available_backends())}")


def get_backend(name: str) -> Executor:
    """Resolve a backend name (or alias) to its registered executor."""
    canonical = canonical_name(name)
    with _LOCK:
        return _BACKENDS[canonical]


def available_backends() -> tuple[str, ...]:
    """Every resolvable name: canonical registrations plus aliases."""
    _ensure_builtins()
    with _LOCK:
        return tuple(sorted(set(_BACKENDS) | set(_ALIASES)))


def backend_capabilities() -> dict[str, dict[str, bool]]:
    """The full capability matrix, canonical name -> capability row."""
    _ensure_builtins()
    with _LOCK:
        executors = dict(_BACKENDS)
    return {name: executor.capabilities()
            for name, executor in sorted(executors.items())}
