"""Built-in :class:`~repro.exec.Executor` implementations.

Four backends cover today's speed/fidelity spectrum:

* :class:`NativeExecutor` (``"native"``) — host-speed numpy over the
  plan's tuned row ranges; the production answer path.  No simulated
  machine, no kernel, no counters.
* :class:`CountsExecutor` (``"counts"``) — functional execution of the
  generated kernel with event counters (the pre-exec ``timing=False``).
* :class:`SimExecutor` (``"sim"``) — cycle-accurate: caches, branch
  predictors and the pipeline scoreboard run per instruction (the
  pre-exec ``timing=True``).
* :class:`FusedExecutor` (``"sim-fused"``) — counts fidelity through
  the superblock compiler (:mod:`repro.machine.fused`): basic blocks of
  instruction bodies fused into single closures with batched counter
  retirement.  Bit-identical results and event counters to ``counts``
  (and to ``sim``'s event counts), several times the simulated
  instructions/sec of ``sim``.
"""

from __future__ import annotations

from repro.core.engine import multiply_partitioned
from repro.core.runner import RunResult
from repro.machine import Counters, CpuConfig, Machine

from repro.exec.backend import Executor, register_backend

__all__ = ["CountsExecutor", "FusedExecutor", "NativeExecutor",
           "SimExecutor"]


class NativeExecutor(Executor):
    """Host-speed numpy evaluation over the plan's partitioning.

    Evaluates each partition's rows with vectorized numpy — the same
    row ownership the simulated threads would have, so a bad split
    configuration fails identically — and writes the product into the
    plan's live ``Y`` buffer.  Bit-equal to the reference kernel.
    """

    name = "native"
    requires_kernel = False

    def execute(self, plan) -> RunResult:
        operands = plan.operands
        y = multiply_partitioned(plan.matrix, operands.x_host, plan.ranges)
        operands.y_host[:] = y
        return RunResult(
            y=operands.y_host,
            counters=Counters(),
            per_thread=[],
            program=plan.kernel.program if plan.kernel is not None else None,
            codegen_seconds=plan.codegen_seconds,
            system=plan.system_name,
            split=plan.split,
            threads=plan.threads,
            partitions=plan.partitions,
            cache_hit=plan.cache_hit,
            backend=self.name,
        )


class MachineExecutor(Executor):
    """Shared driver for the simulated-machine backends."""

    provides_counters = True
    timing = False
    fused = False

    def execute(self, plan) -> RunResult:
        plan.ensure_kernel()
        config = plan.config
        machine = Machine(
            plan.operands.memory,
            CpuConfig(timing=self.timing, l1=config.l1, l2=config.l2,
                      max_instructions=config.max_steps),
        )
        merged, per_thread = machine.run(
            plan._thread_specs(),
            warmup=config.warmup and self.timing,
            between_runs=plan._between_runs(),
            fused=self.fused,
        )
        result = plan._make_result(merged, per_thread)
        result.backend = self.name
        return result


class CountsExecutor(MachineExecutor):
    """Functional execution + event counters (no caches, no cycles)."""

    name = "counts"


class SimExecutor(MachineExecutor):
    """Cycle-accurate simulation: caches, predictors, pipeline."""

    name = "sim"
    provides_cycles = True
    timing = True


class FusedExecutor(MachineExecutor):
    """Superblock-compiled counts-fidelity simulation.

    The paper's specialize-don't-interpret trick applied to the
    simulator itself; see :mod:`repro.machine.fused` for the fidelity
    contract (bit-identical to ``counts`` on everything, to ``sim`` on
    results and event counters; cycles stay 0).
    """

    name = "sim-fused"
    fused = True


register_backend("native", NativeExecutor(), aliases=("numpy",))
register_backend("counts", CountsExecutor())
register_backend("sim", SimExecutor())
register_backend("sim-fused", FusedExecutor(), aliases=("fused",))
