"""Built-in :class:`~repro.exec.Executor` implementations.

Five backends cover today's speed/fidelity spectrum:

* :class:`NativeExecutor` (``"native"``) — host-speed numpy over the
  plan's tuned row ranges; the production answer path.  No simulated
  machine, no kernel, no counters.
* :class:`CountsExecutor` (``"counts"``) — functional execution of the
  generated kernel with event counters (the pre-exec ``timing=False``).
* :class:`SimExecutor` (``"sim"``) — cycle-accurate via the
  record/replay timing engine (:mod:`repro.machine.replay`): stepped
  execution records a columnar trace, the vectorized cache / predictor
  / scoreboard models replay it in batch.
* :class:`FusedExecutor` (``"sim-fused"``) — cycle-accurate *and*
  superblock-compiled: fused basic-block execution feeds the same
  record/replay timing engine.  Bit-identical counters (cycles
  included) to ``sim`` and ``sim-ref``; several times the simulated
  instructions/sec of the per-access path.
* :class:`SimRefExecutor` (``"sim-ref"``) — the per-access reference:
  caches, predictors and the pipeline scoreboard interpreted per
  instruction.  The conformance oracle (and escape hatch) for the
  replay engine.
"""

from __future__ import annotations

from repro.core.engine import multiply_partitioned
from repro.core.runner import RunResult
from repro.machine import Counters, CpuConfig, Machine
from repro.obs import record_counters

from repro.exec.backend import Executor, register_backend

__all__ = ["CountsExecutor", "FusedExecutor", "NativeExecutor",
           "SimExecutor", "SimRefExecutor"]


class NativeExecutor(Executor):
    """Host-speed numpy evaluation over the plan's partitioning.

    Evaluates each partition's rows with vectorized numpy — the same
    row ownership the simulated threads would have, so a bad split
    configuration fails identically — and writes the product into the
    plan's live ``Y`` buffer.  Bit-equal to the reference kernel.
    """

    name = "native"
    requires_kernel = False

    def execute(self, plan) -> RunResult:
        # host-side buffers only: the simulated address space is never
        # read here, and the lazy-binding plans never map it for us
        y = multiply_partitioned(plan.matrix, plan.x_host, plan.ranges)
        plan.y_host[:] = y
        return RunResult(
            y=plan.y_host,
            counters=Counters(),
            per_thread=[],
            program=plan.kernel.program if plan.kernel is not None else None,
            codegen_seconds=plan.codegen_seconds,
            system=plan.system_name,
            split=plan.split,
            threads=plan.threads,
            partitions=plan.partitions,
            cache_hit=plan.cache_hit,
            backend=self.name,
        )


class MachineExecutor(Executor):
    """Shared driver for the simulated-machine backends."""

    provides_counters = True
    timing = False
    engine = "replay"
    fused = False

    def execute(self, plan) -> RunResult:
        plan.ensure_kernel()
        config = plan.config
        machine = Machine(
            plan.operands.memory,
            CpuConfig(timing=self.timing, engine=self.engine,
                      l1=config.l1, l2=config.l2,
                      max_instructions=config.max_steps),
        )
        merged, per_thread = machine.run(
            plan._thread_specs(),
            warmup=config.warmup and self.timing,
            between_runs=plan._between_runs(),
            fused=self.fused,
        )
        result = plan._make_result(merged, per_thread)
        result.backend = self.name
        # every simulated run's counters flow into the unified metrics
        # registry, labeled by backend and system
        record_counters(result.counters, backend=self.name,
                        system=plan.system_name)
        return result


class CountsExecutor(MachineExecutor):
    """Functional execution + event counters (no caches, no cycles)."""

    name = "counts"


class SimExecutor(MachineExecutor):
    """Cycle-accurate simulation through the record/replay timing
    engine: stepped execution, trace-replayed caches / predictors /
    scoreboard.  Bit-identical counters to ``sim-ref``."""

    name = "sim"
    provides_cycles = True
    timing = True


class SimRefExecutor(SimExecutor):
    """Cycle-accurate per-access reference: caches, predictors and the
    pipeline scoreboard interpreted at every instruction — the engine
    ``sim`` used before trace replay.  Slow; kept as the conformance
    oracle and escape hatch."""

    name = "sim-ref"
    engine = "ref"


class FusedExecutor(SimExecutor):
    """Superblock-compiled cycle-accurate simulation.

    The paper's specialize-don't-interpret trick applied to the
    simulator itself, twice over: basic blocks of instruction bodies
    fuse into single closures with batched counter retirement
    (:mod:`repro.machine.fused`), and the timing models replay the
    recorded trace in vectorized batches (:mod:`repro.machine.replay`).
    Bit-identical counters — cycles included — to ``sim`` and
    ``sim-ref``, at several times their simulated instructions/sec.
    """

    name = "sim-fused"
    fused = True


register_backend("native", NativeExecutor(), aliases=("numpy",))
register_backend("counts", CountsExecutor())
register_backend("sim", SimExecutor())
register_backend("sim-ref", SimRefExecutor())
register_backend("sim-fused", FusedExecutor(), aliases=("fused",))
