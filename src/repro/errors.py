"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SparseFormatError(ReproError):
    """A sparse matrix is structurally invalid (bad row_ptr, indices, ...)."""


class ShapeError(ReproError):
    """Operand shapes are incompatible for the requested operation."""


class AssemblyError(ReproError):
    """A program could not be assembled (unknown label, bad operands, ...)."""


class EncodingError(AssemblyError):
    """An instruction has no machine-code encoding in the supported subset."""


class DisassemblyError(ReproError):
    """A byte sequence could not be decoded back into an instruction."""


class MachineError(ReproError):
    """The simulated machine entered an invalid state."""


class SegmentationFault(MachineError):
    """A simulated access touched unmapped memory."""


class ExecutionLimitExceeded(MachineError):
    """The simulator hit its dynamic instruction budget (likely a hang)."""


class CompileError(ReproError):
    """The AOT compiler substrate failed to compile a kernel."""


class RegisterPressureError(CompileError):
    """A code generator ran out of architectural registers."""


class CodegenError(ReproError):
    """The JIT code generator was asked for an unsupported configuration."""


class DatasetError(ReproError):
    """A dataset name is unknown or a generator was misconfigured."""


class RegistryError(ReproError):
    """A system name could not be resolved by :mod:`repro.api`."""
