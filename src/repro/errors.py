"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SparseFormatError(ReproError):
    """A sparse matrix is structurally invalid (bad row_ptr, indices, ...)."""


class ShapeError(ReproError):
    """Operand shapes are incompatible for the requested operation."""


class AssemblyError(ReproError):
    """A program could not be assembled (unknown label, bad operands, ...)."""


class EncodingError(AssemblyError):
    """An instruction has no machine-code encoding in the supported subset."""


class DisassemblyError(ReproError):
    """A byte sequence could not be decoded back into an instruction."""


class MachineError(ReproError):
    """The simulated machine entered an invalid state."""


class SegmentationFault(MachineError):
    """A simulated access touched unmapped memory."""


class ExecutionLimitExceeded(MachineError):
    """The simulator hit its dynamic instruction budget (likely a hang)."""


class CompileError(ReproError):
    """The AOT compiler substrate failed to compile a kernel."""


class RegisterPressureError(CompileError):
    """A code generator ran out of architectural registers."""


class CodegenError(ReproError):
    """The JIT code generator was asked for an unsupported configuration."""


class DatasetError(ReproError):
    """A dataset name is unknown or a generator was misconfigured."""


class RegistryError(ReproError):
    """A system name could not be resolved by :mod:`repro.api`."""


class ServiceClosed(ReproError):
    """A request reached a service after :meth:`SpmmService.close`."""


class GatewayError(ReproError):
    """Base class for serving-gateway failures (:mod:`repro.serve.gateway`).

    Raised client-side for transport problems, and used as the fallback
    for remote error names that do not map onto a known exception class.
    """


class ProtocolError(GatewayError):
    """A wire frame is malformed: bad magic, unknown op, truncated or
    inconsistent payload."""


class FrameTooLarge(ProtocolError):
    """A frame (or the shm slot it must fit) exceeds the size limit."""


class GatewayOverloaded(GatewayError):
    """The gateway rejected a request under backpressure.

    Emitted instead of unbounded buffering when the gateway-wide
    in-flight cap, a per-tenant quota, the shared-memory ring, or an
    open per-worker circuit breaker refuses a request; ``reason``
    names which limit fired.
    """

    def __init__(self, message: str = "", reason: str = "overloaded"):
        super().__init__(message or f"gateway overloaded ({reason})")
        self.reason = reason


class WorkerCrashed(GatewayError):
    """A gateway worker process died while a request was in flight."""


class WorkerHung(GatewayError):
    """A gateway worker exceeded the hang threshold and was killed.

    The watchdog declares a worker hung when its oldest in-flight
    request ages past ``hang_threshold_ms``; the worker's in-flight
    requests fail fast with this error while the process is killed and
    respawned through the crash-recovery path.
    """


class GatewayDisconnected(ProtocolError):
    """The gateway connection dropped mid-exchange.

    Raised client-side when the socket breaks before a complete reply
    arrives (EOF mid-frame, reset, timeout).  Normalizes the raw
    ``ConnectionError`` / ``struct.error`` surface into one typed,
    retryable signal — :class:`~repro.serve.gateway.GatewayClient`
    reconnects and retries idempotent requests on it.
    """


class DeadlineExceeded(GatewayError):
    """A request's deadline budget was exhausted before completion.

    ``deadline_ms`` rides the wire-protocol header; the gateway rejects
    already-expired requests at admission, workers refuse to start
    bind/codegen/multiply past the deadline, and the client raises this
    rather than retrying into a dead budget.
    """


class FaultConfigError(ReproError):
    """A :class:`repro.faults.FaultPlan` is malformed (unknown site,
    out-of-range probability, bad JSON)."""
