"""Serving subsystem: cached, autotuned SpMM over request traffic.

The paper pays JIT code generation once per run (Table IV); a serving
workload pays it once per *kernel identity* and amortizes it across the
request stream.  Components:

* :mod:`repro.serve.cache` — :class:`KernelCache`, a thread-safe LRU
  over compiled kernels with a byte budget and hit/miss/eviction
  counters (also pluggable into :func:`repro.core.runner.run_jit` /
  :func:`~repro.core.runner.run_aot` and
  :class:`repro.core.engine.JitSpMM`), and :class:`ShardedKernelCache`,
  the same contract striped over per-shard LRUs with a combined budget;
* :mod:`repro.serve.service` — :class:`SpmmService`: register a matrix,
  get a handle, serve ``multiply`` (numpy fast path, optionally
  coalescing concurrent requests into stacked-operand batches) and
  ``profile`` (simulated, counter-reporting) requests with one-time
  autotuning and codegen;
* :mod:`repro.serve.pool` — :class:`WorkspacePool`, the size-bucketed
  free-list recycling batch gather buffers;
* :mod:`repro.serve.stats` — per-handle and service-wide request
  statistics, including the amortized Table-IV ``codegen_overhead``,
  the coalescing batch-size histogram and lock-contention counters;
* :mod:`repro.serve.tier` — tiered execution: cold handles serve from
  the address-free template tier (near-instant registration and first
  request) and are promoted to specialized kernels in the background
  once hot (:class:`PromotionExecutor`, :class:`TierStats`).

See :mod:`repro.bench.serving` for the amortization experiment,
:mod:`repro.bench.servethroughput` for the coalescing throughput
harness, and ``examples/serving_traffic.py`` for a request-replay demo.
"""

from repro.serve.cache import (
    CacheStats,
    KernelCache,
    KernelKey,
    ShardedKernelCache,
    aot_key,
    jit_key,
    mkl_key,
)
from repro.serve.pool import PoolStats, WorkspacePool
from repro.serve.service import MatrixHandle, SpmmService
from repro.serve.stats import (
    HandleStats,
    LatencyStat,
    LockStats,
    ServiceStats,
    TimedLock,
)
from repro.serve.tier import (
    PROMOTION_OUTCOMES,
    PromotionExecutor,
    TIER_FAILED,
    TIER_INLINE,
    TIER_MODES,
    TIER_PROMOTED,
    TIER_PROMOTING,
    TIER_TEMPLATE,
    TierSnapshot,
    TierStats,
)

__all__ = [
    "CacheStats",
    "HandleStats",
    "KernelCache",
    "KernelKey",
    "LatencyStat",
    "LockStats",
    "MatrixHandle",
    "PROMOTION_OUTCOMES",
    "PoolStats",
    "PromotionExecutor",
    "ServiceStats",
    "ShardedKernelCache",
    "SpmmService",
    "TIER_FAILED",
    "TIER_INLINE",
    "TIER_MODES",
    "TIER_PROMOTED",
    "TIER_PROMOTING",
    "TIER_TEMPLATE",
    "TierSnapshot",
    "TierStats",
    "TimedLock",
    "WorkspacePool",
    "aot_key",
    "jit_key",
    "mkl_key",
]
