"""Blocking gateway client: the wire protocol behind a service-like API.

:class:`GatewayClient` mirrors the in-process
:class:`~repro.serve.SpmmService` surface — ``register`` / ``multiply``
/ ``profile`` / ``unregister`` — over one TCP connection, so swapping a
benchmark or an application between in-process and networked serving is
a one-line change.  Each call is strict request-reply on the shared
socket (guarded by a lock, so one client is safe to share across
threads — concurrency across the pool comes from opening one client per
closed-loop worker, the bench's shape).

Remote failures arrive as typed :mod:`repro.errors` exceptions: a quota
rejection raises :class:`~repro.errors.GatewayOverloaded` here exactly
as it would in-process, and a worker death mid-request raises
:class:`~repro.errors.WorkerCrashed`.

Resilience: transport failures — EOF mid-frame, reset, timeout, a raw
``struct.error`` from a torn header — are normalized to one typed,
retryable :class:`~repro.errors.GatewayDisconnected`; the broken socket
is discarded and the next request transparently reconnects.
*Idempotent* ops (multiply / profile / stats / ping — never register,
whose replay could double-register) additionally retry up to
``max_retries`` times with capped exponential backoff plus seeded
jitter, and a retryable worker failure
(:class:`~repro.errors.WorkerCrashed` / ``WorkerHung``) retries the
same way since the pool respawns behind the gateway.  A per-request
``deadline_ms`` budget bounds the whole dance: the *remaining* budget
rides each attempt's wire header (so the gateway and worker stop
working the moment it runs out), caps the per-attempt socket timeout,
and exhausting it raises :class:`~repro.errors.DeadlineExceeded`
instead of retrying into a dead budget.
"""

from __future__ import annotations

import itertools
import socket
import struct
import threading
import time
from random import Random

import numpy as np

from repro import faults
from repro.errors import (DeadlineExceeded, GatewayDisconnected,
                          ProtocolError, WorkerCrashed, WorkerHung)
from repro.serve.gateway import protocol as proto
from repro.sparse.csr import CsrMatrix

__all__ = ["GatewayClient"]

#: ops safe to replay after an ambiguous failure (the request may or
#: may not have executed): pure reads and idempotent computations
_IDEMPOTENT = frozenset({proto.OP_MULTIPLY, proto.OP_PROFILE,
                         proto.OP_STATS, proto.OP_PING})

#: failures worth a retry: the transport broke (reconnect + replay) or
#: a worker died/hung mid-request (the pool respawns behind the
#: gateway, so a replay lands on a healthy process)
_RETRYABLE = (GatewayDisconnected, WorkerCrashed, WorkerHung)


class GatewayClient:
    """One TCP connection to a :class:`~repro.serve.gateway.Gateway`.

    Args:
        host / port: The gateway's bound address.
        tenant: Tenant name stamped on every request (the unit of
            per-tenant quota accounting at the gateway).
        timeout: Socket timeout in seconds for connect and each reply
            (a request deadline caps it further per attempt).
        max_frame: Largest reply frame this client will accept.
        max_retries: Extra attempts for idempotent ops after a
            retryable failure (0 disables; ``register`` never retries).
        deadline_ms: Default per-request deadline budget in
            milliseconds (``None``: no deadline).  Per-call
            ``deadline_ms`` arguments override it; 0 means explicitly
            no deadline for that call.
        backoff_base / backoff_cap: Exponential-backoff schedule in
            seconds: attempt ``n`` sleeps
            ``min(cap, base * 2**n) * jitter``.
        retry_seed: Seed for the jitter stream — two clients with the
            same seed back off identically (deterministic chaos runs).
    """

    def __init__(self, host: str, port: int, *, tenant: str = "default",
                 timeout: float = 60.0,
                 max_frame: int = proto.DEFAULT_MAX_FRAME,
                 max_retries: int = 2,
                 deadline_ms: float | None = None,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 1.0,
                 retry_seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.max_frame = max_frame
        self.max_retries = max_retries
        self.deadline_ms = deadline_ms
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = Random(retry_seed)
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._closed = False
        self._sock: socket.socket | None = None
        self._connect()                 # fail fast on a bad address
        #: retryable failures absorbed by successful retries (telemetry
        #: for tests and benches; reset at will)
        self.retries_used = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def _ensure_connected(self) -> None:
        if self._closed:
            raise GatewayDisconnected("client is closed")
        if self._sock is None:
            try:
                self._connect()
            except OSError as error:
                raise GatewayDisconnected(
                    f"reconnect to {self.host}:{self.port} failed: "
                    f"{error}") from error

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:                    # pragma: no cover
                pass

    @property
    def connected(self) -> bool:
        """Whether a live socket exists right now (reconnect is lazy)."""
        return self._sock is not None and not self._closed

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _exchange(self, op: int, payload: bytes, request_id: int,
                  wire_deadline_ms: int, budget: float | None) -> bytes:
        """One attempt on the live socket (caller holds the lock).

        Any transport-level failure — connect refusal, timeout, reset,
        EOF mid-frame, a ``struct.error`` from a torn header — drops
        the socket and surfaces as typed ``GatewayDisconnected``; the
        next attempt reconnects.
        """
        try:
            self._ensure_connected()
            remaining = self.timeout
            if budget is not None:
                remaining = min(remaining, budget - time.monotonic())
            self._sock.settimeout(max(remaining, 1e-3))
            proto.send_frame(self._sock, op, payload, request_id,
                             wire_deadline_ms)
            if faults.check("conn.drop", request=request_id):
                self._drop_connection()
                raise GatewayDisconnected(
                    "connection dropped before the reply "
                    "(fault plan: conn.drop)")
            reply_op, reply_id, reply = proto.recv_frame(
                self._sock, self.max_frame)
        except GatewayDisconnected:
            self._drop_connection()
            raise
        except (ConnectionError, OSError, struct.error) as error:
            self._drop_connection()
            raise GatewayDisconnected(
                f"connection lost mid-exchange: "
                f"{type(error).__name__}: {error}") from error
        if reply_op != proto.OP_REPLY:
            raise ProtocolError(
                f"expected a reply frame, got op "
                f"{proto.OP_NAMES.get(reply_op, hex(reply_op))}")
        if reply_id not in (request_id, 0):
            # 0 is the gateway's connection-level error echo (it could
            # not parse a request id out of the broken frame)
            raise ProtocolError(
                f"reply for request {reply_id} arrived while awaiting "
                f"{request_id} (client is strict request-reply)")
        return bytes(proto.decode_reply(reply))

    def _request(self, op: int, payload: bytes,
                 deadline_ms: float | None = None) -> bytes:
        """Request-reply with reconnect/retry; returns the success body.

        ``deadline_ms`` overrides the client default for this call
        (0: explicitly none).  The budget is anchored once, here: every
        retry attempt, backoff sleep, and the wire header's relative
        deadline all draw down the same clock.
        """
        if deadline_ms is None:
            deadline_ms = self.deadline_ms
        budget = (time.monotonic() + deadline_ms / 1e3
                  if deadline_ms else None)
        retries = self.max_retries if op in _IDEMPOTENT else 0
        attempt = 0
        while True:
            wire_deadline_ms = 0
            if budget is not None:
                left = budget - time.monotonic()
                if left <= 0:
                    raise DeadlineExceeded(
                        f"deadline budget ({deadline_ms:g}ms) exhausted "
                        f"after {attempt} attempt(s)")
                wire_deadline_ms = max(1, int(left * 1e3))
            request_id = next(self._request_ids)
            try:
                with self._lock:
                    body = self._exchange(op, payload, request_id,
                                          wire_deadline_ms, budget)
                if attempt:
                    self.retries_used += attempt
                return body
            except _RETRYABLE:
                if attempt >= retries:
                    raise
                delay = min(self.backoff_cap,
                            self.backoff_base * (2 ** attempt))
                delay *= 0.5 + self._rng.random()      # jitter [0.5, 1.5)
                if budget is not None:
                    delay = min(delay, max(0.0, budget - time.monotonic()))
                attempt += 1
                time.sleep(delay)

    # ------------------------------------------------------------------
    def register(self, matrix: CsrMatrix, name: str = "") -> int:
        """Register ``matrix`` on every gateway worker; returns the
        gateway handle id.

        Never retried: after an ambiguous transport failure a replay
        could register the matrix twice under two handles.  Callers
        retry explicitly if they can tolerate that.
        """
        body = self._request(
            proto.OP_REGISTER,
            proto.encode_register(matrix, name, tenant=self.tenant))
        return int(proto.decode_json_op(body)["handle"])

    def unregister(self, handle: int) -> None:
        self._request(proto.OP_UNREGISTER,
                      proto.encode_json_op(handle=handle))

    def multiply(self, handle: int, x: np.ndarray,
                 deadline_ms: float | None = None) -> np.ndarray:
        """Serve ``A @ x`` for the registered matrix behind ``handle``."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        body = self._request(proto.OP_MULTIPLY,
                             proto.encode_multiply(handle, x, self.tenant),
                             deadline_ms)
        return proto.decode_multiply_reply(body)

    def profile(self, handle: int, x: np.ndarray,
                backend: str | None = None,
                deadline_ms: float | None = None) -> tuple[np.ndarray, dict]:
        """Serve one profiled request; returns ``(y, counters meta)``."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        body = self._request(
            proto.OP_PROFILE,
            proto.encode_profile(handle, x, backend, tenant=self.tenant),
            deadline_ms)
        meta, y = proto.decode_profile_reply(body)
        return y, meta

    def stats(self) -> str:
        """Prometheus text combining gateway and all-worker series."""
        return self._request(proto.OP_STATS,
                             proto.encode_json_op()).decode("utf-8")

    def ping(self) -> dict:
        return proto.decode_json_op(
            self._request(proto.OP_PING, proto.encode_json_op()))

    def shutdown_gateway(self) -> None:
        """Ask the gateway to shut down (its owner's ``serve_forever``
        unblocks; in-flight requests still complete)."""
        self._request(proto.OP_SHUTDOWN, proto.encode_json_op())

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._drop_connection()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
