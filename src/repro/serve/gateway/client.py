"""Blocking gateway client: the wire protocol behind a service-like API.

:class:`GatewayClient` mirrors the in-process
:class:`~repro.serve.SpmmService` surface — ``register`` / ``multiply``
/ ``profile`` / ``unregister`` — over one TCP connection, so swapping a
benchmark or an application between in-process and networked serving is
a one-line change.  Each call is strict request-reply on the shared
socket (guarded by a lock, so one client is safe to share across
threads — concurrency across the pool comes from opening one client per
closed-loop worker, the bench's shape).

Remote failures arrive as typed :mod:`repro.errors` exceptions: a quota
rejection raises :class:`~repro.errors.GatewayOverloaded` here exactly
as it would in-process, and a worker death mid-request raises
:class:`~repro.errors.WorkerCrashed`.
"""

from __future__ import annotations

import itertools
import socket
import threading

import numpy as np

from repro.errors import ProtocolError
from repro.serve.gateway import protocol as proto
from repro.sparse.csr import CsrMatrix

__all__ = ["GatewayClient"]


class GatewayClient:
    """One TCP connection to a :class:`~repro.serve.gateway.Gateway`.

    Args:
        host / port: The gateway's bound address.
        tenant: Tenant name stamped on every request (the unit of
            per-tenant quota accounting at the gateway).
        timeout: Socket timeout in seconds for connect and each reply.
        max_frame: Largest reply frame this client will accept.
    """

    def __init__(self, host: str, port: int, *, tenant: str = "default",
                 timeout: float = 60.0,
                 max_frame: int = proto.DEFAULT_MAX_FRAME) -> None:
        self.tenant = tenant
        self.max_frame = max_frame
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------
    def _request(self, op: int, payload: bytes) -> bytes:
        """One request-reply exchange; returns the success body."""
        request_id = next(self._request_ids)
        with self._lock:
            proto.send_frame(self._sock, op, payload, request_id)
            reply_op, reply_id, reply = proto.recv_frame(
                self._sock, self.max_frame)
        if reply_op != proto.OP_REPLY:
            raise ProtocolError(
                f"expected a reply frame, got op "
                f"{proto.OP_NAMES.get(reply_op, hex(reply_op))}")
        if reply_id not in (request_id, 0):
            # 0 is the gateway's connection-level error echo (it could
            # not parse a request id out of the broken frame)
            raise ProtocolError(
                f"reply for request {reply_id} arrived while awaiting "
                f"{request_id} (client is strict request-reply)")
        return bytes(proto.decode_reply(reply))

    # ------------------------------------------------------------------
    def register(self, matrix: CsrMatrix, name: str = "") -> int:
        """Register ``matrix`` on every gateway worker; returns the
        gateway handle id."""
        body = self._request(
            proto.OP_REGISTER,
            proto.encode_register(matrix, name, tenant=self.tenant))
        return int(proto.decode_json_op(body)["handle"])

    def unregister(self, handle: int) -> None:
        self._request(proto.OP_UNREGISTER,
                      proto.encode_json_op(handle=handle))

    def multiply(self, handle: int, x: np.ndarray) -> np.ndarray:
        """Serve ``A @ x`` for the registered matrix behind ``handle``."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        body = self._request(proto.OP_MULTIPLY,
                             proto.encode_multiply(handle, x, self.tenant))
        return proto.decode_multiply_reply(body)

    def profile(self, handle: int, x: np.ndarray,
                backend: str | None = None) -> tuple[np.ndarray, dict]:
        """Serve one profiled request; returns ``(y, counters meta)``."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        body = self._request(
            proto.OP_PROFILE,
            proto.encode_profile(handle, x, backend, tenant=self.tenant))
        meta, y = proto.decode_profile_reply(body)
        return y, meta

    def stats(self) -> str:
        """Prometheus text combining gateway and all-worker series."""
        return self._request(proto.OP_STATS,
                             proto.encode_json_op()).decode("utf-8")

    def ping(self) -> dict:
        return proto.decode_json_op(
            self._request(proto.OP_PING, proto.encode_json_op()))

    def shutdown_gateway(self) -> None:
        """Ask the gateway to shut down (its owner's ``serve_forever``
        unblocks; in-flight requests still complete)."""
        self._request(proto.OP_SHUTDOWN, proto.encode_json_op())

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:                        # pragma: no cover
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
