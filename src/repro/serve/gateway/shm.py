"""Shared-memory operand transport: a ring of fixed-size slots.

The gateway and its worker processes exchange operands through one
:class:`multiprocessing.shared_memory.SharedMemory` segment carved into
``slots`` equal slices.  The gateway (the only allocator) copies a
request's operand bytes into a free slot, ships the *slot index* over
the worker's control pipe, and the worker maps a zero-copy numpy view
over the same physical pages — no pickling of matrices, no per-request
segment churn.  The worker writes the result back into the identical
slot (request and result never overlap in time: the operand is fully
consumed before the result exists) and the gateway serves the reply
bytes straight out of the slot.

Slot exhaustion is backpressure, not buffering: :meth:`ShmRing.acquire`
returns ``None`` when every slot is in flight and the gateway turns
that into a typed :class:`~repro.errors.GatewayOverloaded` rejection.

Attachment detail: in CPython < 3.13, *attaching* to an existing
segment also registers it with the process-local ``resource_tracker``,
which then unlinks the segment when the attaching process exits —
destroying it under every other user (bpo-38119).  :func:`attach_shm`
unregisters after attach (or passes ``track=False`` where supported),
so only the creating gateway ever unlinks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

__all__ = ["ShmRing", "ShmRingStats", "attach_shm", "set_attach_untrack"]

#: default slot size: comfortably holds tiny-CI-scale operands and
#: results with room for production-ish widths; override per gateway
DEFAULT_SLOT_BYTES = 1 << 20


#: whether :func:`attach_shm` must undo the tracker registration.  True
#: for spawn-started processes (each has its own tracker, which would
#: unlink the segment under the owner at exit); False for fork-started
#: workers, which *share* the owner's tracker — unregistering there
#: would strip the owner's own registration (worker_main sets this).
_untrack_on_attach = True


def set_attach_untrack(flag: bool) -> None:
    global _untrack_on_attach
    _untrack_on_attach = bool(flag)


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink duty."""
    if not _untrack_on_attach:
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:                        # Python < 3.13: no track=
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:                    # pragma: no cover - best effort
            pass
        return segment


@dataclass(frozen=True)
class ShmRingStats:
    """Point-in-time counters for one ring."""

    slots: int
    slot_bytes: int
    in_use: int
    acquires: int
    rejections: int
    peak_in_use: int

    def render(self) -> str:
        return (f"shm ring: {self.in_use}/{self.slots} slots in use "
                f"(peak {self.peak_in_use}), {self.acquires} acquires, "
                f"{self.rejections} rejected, "
                f"{self.slot_bytes:,} B/slot")


class ShmRing:
    """Fixed-slot allocator over one shared-memory segment.

    The creating side (the gateway) owns allocation and the segment's
    lifetime; attached sides (workers) only map views.  ``acquire`` /
    ``release`` are thread-safe, but by design only the creator calls
    them.
    """

    def __init__(self, slot_bytes: int = DEFAULT_SLOT_BYTES,
                 slots: int = 16, *, name: str | None = None) -> None:
        if slot_bytes <= 0:
            raise ValueError(f"slot_bytes must be positive, got {slot_bytes}")
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        self.slot_bytes = slot_bytes
        self.slots = slots
        self._owner = name is None
        if self._owner:
            self._shm = shared_memory.SharedMemory(
                create=True, size=slot_bytes * slots)
        else:
            self._shm = attach_shm(name)
            if self._shm.size < slot_bytes * slots:
                raise ValueError(
                    f"segment {name!r} holds {self._shm.size} bytes, "
                    f"ring needs {slot_bytes * slots}")
        self._free = list(range(slots - 1, -1, -1))
        self._lock = threading.Lock()
        self._acquires = 0
        self._rejections = 0
        self._peak = 0
        self._closed = False

    @classmethod
    def attach(cls, name: str, slot_bytes: int, slots: int) -> "ShmRing":
        """A worker-side view of the gateway's ring (no allocation)."""
        return cls(slot_bytes, slots, name=name)

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    # ------------------------------------------------------------------
    def acquire(self) -> int | None:
        """A free slot index, or ``None`` when the ring is exhausted."""
        with self._lock:
            if not self._free:
                self._rejections += 1
                return None
            slot = self._free.pop()
            self._acquires += 1
            self._peak = max(self._peak, self.slots - len(self._free))
            return slot

    def release(self, slot: int) -> None:
        """Return ``slot`` to the free list (double-release is a bug)."""
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range [0, {self.slots})")
        with self._lock:
            if slot in self._free:
                raise ValueError(f"slot {slot} released twice")
            self._free.append(slot)

    def in_use(self) -> int:
        with self._lock:
            return self.slots - len(self._free)

    def stats(self) -> ShmRingStats:
        with self._lock:
            return ShmRingStats(
                slots=self.slots, slot_bytes=self.slot_bytes,
                in_use=self.slots - len(self._free),
                acquires=self._acquires, rejections=self._rejections,
                peak_in_use=self._peak,
            )

    # ------------------------------------------------------------------
    def view(self, slot: int, nbytes: int | None = None) -> memoryview:
        """A writable view of ``slot``'s first ``nbytes`` bytes."""
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range [0, {self.slots})")
        nbytes = self.slot_bytes if nbytes is None else nbytes
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"{nbytes} bytes exceed the {self.slot_bytes}-byte slot")
        start = slot * self.slot_bytes
        return self._shm.buf[start:start + nbytes]

    def write(self, slot: int, data) -> int:
        """Copy ``data`` (bytes / memoryview / ndarray) into ``slot``."""
        raw = memoryview(data).cast("B")
        view = self.view(slot, raw.nbytes)
        try:
            view[:] = raw
        finally:
            view.release()
        return raw.nbytes

    def read(self, slot: int, nbytes: int) -> bytes:
        """An owned copy of ``slot``'s first ``nbytes`` bytes."""
        view = self.view(slot, nbytes)
        try:
            return bytes(view)
        finally:
            view.release()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (and the segment, if owner)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:                  # pragma: no cover - exported
            return                           # views still alive; the OS
                                             # reclaims at process exit
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:        # pragma: no cover
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
