"""Gateway worker: one process, one :class:`SpmmService`, shm operands.

Each worker is a separate interpreter — the whole point of the gateway:
:class:`~repro.serve.SpmmService` is GIL-bound, so process boundaries
are what let coalesced serving scale past one core's worth of Python.
A worker owns a private service (its own sharded kernel cache and
workspace pool) and speaks a tiny pickled control protocol with the
gateway over a :class:`multiprocessing.connection.Connection`:

* ``("reg", msg_id, segment, meta)`` — replicate one registration: the
  CSR arrays arrive *once*, in a dedicated shared-memory segment, are
  copied into worker-owned arrays, fingerprint-verified against the
  client's digest, and registered with the service under the
  gateway-assigned handle id;
* ``("mul", msg_id, request_id, slot, handle, rows, cols)`` — serve one
  multiply: the operand is a zero-copy numpy view over the shm ring
  slot, the result is written back into the same slot, and only dims
  (plus any fresh autotune verdicts) travel over the pipe;
* ``("prof", ...)``, ``("unreg", ...)``, ``("stats", msg_id)``,
  ``("seed", entries)``, ``("shutdown",)`` — the cold control plane.

Requests are executed on a small thread pool so concurrent dispatches
from the gateway coalesce inside the service exactly like in-process
traffic (``max_batch``/``flush_us`` apply per worker).  Every reply is
``("ok", msg_id, payload)`` or ``("err", msg_id, name, message)``;
exceptions never cross the pipe as pickles, only as ``(class name,
message)`` pairs the gateway re-frames for the client.

Autotune replication: after any request that grew the process-wide
:func:`~repro.core.autotune.choose_split` memo, the delta rides along
on the reply; the gateway broadcasts it to the sibling workers
(``seed``), so each kernel identity is tuned once per fleet.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict

import numpy as np

from repro.core.autotune import export_autotune_memo, seed_autotune_memo
from repro.obs.trace import span as _span
from repro.serve.gateway.shm import ShmRing, attach_shm, set_attach_untrack
from repro.serve.service import SpmmService
from repro.sparse.csr import CsrMatrix

__all__ = ["WORKER_EXECUTOR_THREADS", "worker_main"]

#: request-execution threads per worker: enough concurrency for the
#: service's coalescing to form batches from pipelined dispatches,
#: small enough that a worker never oversubscribes its host share
WORKER_EXECUTOR_THREADS = 4


class _MemoSync:
    """Tracks which autotune verdicts this worker already shipped."""

    def __init__(self) -> None:
        self._known = set(export_autotune_memo())
        self._lock = threading.Lock()

    def delta(self) -> dict | None:
        memo = export_autotune_memo()
        with self._lock:
            fresh = {key: memo[key] for key in memo.keys() - self._known}
            self._known |= set(fresh)
        return fresh or None

    def absorb(self, entries: dict) -> None:
        seed_autotune_memo(entries)
        with self._lock:
            self._known |= set(entries)


def worker_main(index: int, conn, ring_name: str, slot_bytes: int,
                slots: int, service_kwargs: dict,
                untrack_shm: bool = True) -> None:
    """Entry point of one worker process (spawn- and fork-safe).

    ``untrack_shm`` is False for fork-started workers: they share the
    gateway's resource tracker, so undoing the attach-time registration
    would strip the gateway's own.
    """
    set_attach_untrack(untrack_shm)
    ring = ShmRing.attach(ring_name, slot_bytes, slots)
    try:
        service = SpmmService(obs_label=f"gateway-worker{index}",
                              **service_kwargs)
    except BaseException as error:
        conn.send(("fail", type(error).__name__, str(error)))
        conn.close()
        return
    conn.send(("ready", index, os.getpid()))
    handles: dict[int, object] = {}
    memo = _MemoSync()
    send_lock = threading.Lock()
    pool = ThreadPoolExecutor(
        max_workers=WORKER_EXECUTOR_THREADS,
        thread_name_prefix=f"gw-worker{index}")

    def reply(msg_id: int, payload) -> None:
        with send_lock:
            conn.send(("ok", msg_id, payload))

    def reply_error(msg_id: int, error: BaseException) -> None:
        with send_lock:
            conn.send(("err", msg_id, type(error).__name__, str(error)))

    def serve_multiply(msg) -> None:
        _, msg_id, request_id, slot, handle, rows, cols = msg
        view = None
        try:
            with _span("gateway.worker.multiply", request=request_id,
                       worker=index, handle=handle):
                view = ring.view(slot, 4 * rows * cols)
                x = np.frombuffer(view, dtype=np.float32).reshape(rows, cols)
                y = service.multiply(handles[handle], x)
                # the operand has been fully consumed; the result takes
                # over the slot (y can be a batch-scatter column view —
                # make it contiguous before the flat byte copy)
                ring.write(slot, np.ascontiguousarray(y))
            reply(msg_id, {"rows": int(y.shape[0]), "cols": int(y.shape[1]),
                           "memo": memo.delta()})
        except KeyError:
            reply_error(msg_id, _unknown_handle(handle))
        except BaseException as error:
            reply_error(msg_id, error)
        finally:
            if view is not None:
                view.release()

    def serve_profile(msg) -> None:
        _, msg_id, request_id, slot, handle, rows, cols, backend = msg
        view = None
        try:
            with _span("gateway.worker.profile", request=request_id,
                       worker=index, handle=handle):
                view = ring.view(slot, 4 * rows * cols)
                x = np.frombuffer(view, dtype=np.float32).reshape(rows, cols)
                result = service.profile(handles[handle], x, backend=backend)
                ring.write(slot, np.ascontiguousarray(result.y))
            reply(msg_id, {
                "rows": int(result.y.shape[0]),
                "cols": int(result.y.shape[1]),
                "meta": {
                    "counters": asdict(result.counters),
                    "backend": result.backend,
                    "system": result.system,
                    "split": result.split,
                    "threads": result.threads,
                    "cache_hit": bool(result.cache_hit),
                    "codegen_seconds": result.codegen_seconds,
                },
                "memo": memo.delta(),
            })
        except KeyError:
            reply_error(msg_id, _unknown_handle(handle))
        except BaseException as error:
            reply_error(msg_id, error)
        finally:
            if view is not None:
                view.release()

    def serve_register(msg) -> None:
        _, msg_id, segment_name, meta = msg
        try:
            matrix = _matrix_from_segment(segment_name, meta)
            handle = service.register(matrix, meta.get("name", ""))
            handles[int(meta["gid"])] = handle
            reply(msg_id, {"handle": int(meta["gid"]),
                           "memo": memo.delta()})
        except BaseException as error:
            reply_error(msg_id, error)

    running = True
    while running:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "mul":
            pool.submit(serve_multiply, msg)
        elif kind == "prof":
            pool.submit(serve_profile, msg)
        elif kind == "reg":
            serve_register(msg)
        elif kind == "unreg":
            _, msg_id, gid = msg
            try:
                service.unregister(handles.pop(gid))
                reply(msg_id, {"handle": gid})
            except BaseException as error:
                reply_error(msg_id, error)
        elif kind == "stats":
            _, msg_id = msg
            try:
                reply(msg_id, {"snapshot": service.snapshot(),
                               "pid": os.getpid()})
            except BaseException as error:
                reply_error(msg_id, error)
        elif kind == "seed":
            memo.absorb(msg[1])
        elif kind == "shutdown":
            running = False
            if len(msg) > 1:            # acked shutdown: (shutdown, msg_id)
                reply(msg[1], {"pid": os.getpid()})
        # unknown kinds are dropped: a newer gateway may speak ops this
        # worker build does not know, and the pipe must stay in sync
    pool.shutdown(wait=True)
    service.close()
    ring.close()
    conn.close()


def _unknown_handle(handle: int):
    from repro.errors import ShapeError

    return ShapeError(f"unknown handle {handle}; register the matrix "
                      f"through this gateway first")


def _matrix_from_segment(segment_name: str, meta: dict) -> CsrMatrix:
    """Rebuild (and verify) one registered matrix from its shm segment.

    The arrays are copied out — the segment is unlinked by the gateway
    as soon as every worker has acknowledged — and the content hash is
    recomputed and checked against the client-supplied fingerprint, so
    a corrupted transport surfaces at registration, not as wrong
    results later.
    """
    nrows = int(meta["nrows"])
    nnz = int(meta["nnz"])
    segment = attach_shm(segment_name)
    try:
        offset = 0
        row_ptr = np.frombuffer(segment.buf, dtype=np.int64,
                                count=nrows + 1, offset=offset).copy()
        offset += 8 * (nrows + 1)
        col = np.frombuffer(segment.buf, dtype=np.int64, count=nnz,
                            offset=offset).copy()
        offset += 8 * nnz
        vals = np.frombuffer(segment.buf, dtype=np.float32, count=nnz,
                             offset=offset).copy()
    finally:
        segment.close()
    matrix = CsrMatrix(nrows, int(meta["ncols"]), row_ptr, col, vals,
                       name=str(meta.get("name", "")))
    expected = meta.get("fingerprint")
    if expected and matrix.fingerprint() != expected:
        from repro.errors import ProtocolError

        raise ProtocolError(
            f"registration fingerprint mismatch for {matrix!r}: operands "
            f"were corrupted in transport")
    return matrix
