"""Gateway worker: one process, one :class:`SpmmService`, shm operands.

Each worker is a separate interpreter — the whole point of the gateway:
:class:`~repro.serve.SpmmService` is GIL-bound, so process boundaries
are what let coalesced serving scale past one core's worth of Python.
A worker owns a private service (its own sharded kernel cache and
workspace pool) and speaks a tiny pickled control protocol with the
gateway over a :class:`multiprocessing.connection.Connection`:

* ``("reg", msg_id, segment, meta)`` — replicate one registration: the
  CSR arrays arrive *once*, in a dedicated shared-memory segment, are
  copied into worker-owned arrays, fingerprint-verified against the
  client's digest, and registered with the service under the
  gateway-assigned handle id;
* ``("mul", msg_id, request_id, slot, handle, rows, cols, deadline)`` —
  serve one multiply: the operand is a zero-copy numpy view over the
  shm ring slot, the result is written back into the same slot, and
  only dims (plus any fresh autotune verdicts) travel over the pipe;
  ``deadline`` is an absolute ``time.monotonic()`` stamp (``None`` =
  no deadline; CLOCK_MONOTONIC is system-wide on Linux, so the
  gateway's clock is the worker's clock) checked at dispatch, around
  bind/codegen inside the service, and again after execution — a late
  result is discarded and replied as typed ``DeadlineExceeded``;
* ``("prof", ...)``, ``("unreg", ...)``, ``("stats", msg_id)``,
  ``("seed", entries)``, ``("fault", plan_dict | None)``,
  ``("shutdown",)`` — the cold control plane.  ``fault`` arms (or,
  with ``None``, disarms) a :class:`repro.faults.FaultPlan` in this
  process; the request paths honor the ``worker.crash`` /
  ``worker.hang`` / ``codegen.raise`` injection sites.

Requests are executed on a small thread pool so concurrent dispatches
from the gateway coalesce inside the service exactly like in-process
traffic (``max_batch``/``flush_us`` apply per worker).  Every reply is
``("ok", msg_id, payload)`` or ``("err", msg_id, name, message)``;
exceptions never cross the pipe as pickles, only as ``(class name,
message)`` pairs the gateway re-frames for the client.

Autotune replication: after any request that grew the process-wide
:func:`~repro.core.autotune.choose_split` memo, the delta rides along
on the reply; the gateway broadcasts it to the sibling workers
(``seed``), so each kernel identity is tuned once per fleet.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict

import numpy as np

from repro import faults
from repro.core.autotune import export_autotune_memo, seed_autotune_memo
from repro.errors import CodegenError, DeadlineExceeded
from repro.obs.trace import span as _span
from repro.serve.gateway.shm import ShmRing, attach_shm, set_attach_untrack
from repro.serve.service import SpmmService
from repro.sparse.csr import CsrMatrix

__all__ = ["WORKER_EXECUTOR_THREADS", "worker_main"]

#: request-execution threads per worker: enough concurrency for the
#: service's coalescing to form batches from pipelined dispatches,
#: small enough that a worker never oversubscribes its host share
WORKER_EXECUTOR_THREADS = 4


class _MemoSync:
    """Tracks which autotune verdicts this worker already shipped."""

    def __init__(self) -> None:
        self._known = set(export_autotune_memo())
        self._lock = threading.Lock()

    def delta(self) -> dict | None:
        memo = export_autotune_memo()
        with self._lock:
            fresh = {key: memo[key] for key in memo.keys() - self._known}
            self._known |= set(fresh)
        return fresh or None

    def absorb(self, entries: dict) -> None:
        seed_autotune_memo(entries)
        with self._lock:
            self._known |= set(entries)


def worker_main(index: int, conn, ring_name: str, slot_bytes: int,
                slots: int, service_kwargs: dict,
                untrack_shm: bool = True,
                fault_plan: dict | None = None) -> None:
    """Entry point of one worker process (spawn- and fork-safe).

    ``untrack_shm`` is False for fork-started workers: they share the
    gateway's resource tracker, so undoing the attach-time registration
    would strip the gateway's own.

    ``fault_plan`` (a serialized :class:`repro.faults.FaultPlan`) arms
    fault injection from birth — how a respawned worker inherits the
    plan the gateway broadcast before its predecessor died.
    """
    set_attach_untrack(untrack_shm)
    # a fork-started worker inherits the gateway process's module
    # state, including any plan installed *there* (set_fault_plan
    # installs locally before broadcasting); shed it so only the spawn
    # argument, a later broadcast, or this process's own read of
    # REPRO_FAULT_PLAN arms injection
    faults.reset_inherited_state()
    if fault_plan is not None:
        faults.install_plan(faults.FaultPlan.from_dict(fault_plan))
    ring = ShmRing.attach(ring_name, slot_bytes, slots)
    try:
        service = SpmmService(obs_label=f"gateway-worker{index}",
                              **service_kwargs)
    except BaseException as error:
        conn.send(("fail", type(error).__name__, str(error)))
        conn.close()
        return
    conn.send(("ready", index, os.getpid()))
    handles: dict[int, object] = {}
    memo = _MemoSync()
    send_lock = threading.Lock()
    pool = ThreadPoolExecutor(
        max_workers=WORKER_EXECUTOR_THREADS,
        thread_name_prefix=f"gw-worker{index}")

    def reply(msg_id: int, payload) -> None:
        with send_lock:
            conn.send(("ok", msg_id, payload))

    def reply_error(msg_id: int, error: BaseException) -> None:
        with send_lock:
            conn.send(("err", msg_id, type(error).__name__, str(error)))

    def fault_hooks(request_id: int) -> None:
        """Honor the worker-side injection sites for one request.

        Runs on the executor thread, before any service work: a crash
        takes the whole process (exercising gateway crash recovery), a
        hang outlives the watchdog's threshold, and ``codegen.raise``
        surfaces as the typed error a real codegen failure would.
        """
        if faults.check("worker.crash", request=request_id, worker=index):
            os._exit(17)
        rule = faults.check("worker.hang", request=request_id, worker=index)
        if rule is not None:
            time.sleep(rule.hang_seconds)
        if faults.check("codegen.raise", request=request_id, worker=index):
            raise CodegenError(
                "injected codegen failure (fault plan: codegen.raise)")

    def check_deadline(deadline, stage: str) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(f"deadline expired {stage}")

    def serve_multiply(msg) -> None:
        _, msg_id, request_id, slot, handle, rows, cols, deadline = msg
        view = None
        try:
            fault_hooks(request_id)
            check_deadline(deadline, "before worker dispatch")
            with _span("gateway.worker.multiply", request=request_id,
                       worker=index, handle=handle):
                view = ring.view(slot, 4 * rows * cols)
                x = np.frombuffer(view, dtype=np.float32).reshape(rows, cols)
                y = service.multiply(handles[handle], x, deadline=deadline)
                # the operand has been fully consumed; the result takes
                # over the slot (y can be a batch-scatter column view —
                # make it contiguous before the flat byte copy)
                ring.write(slot, np.ascontiguousarray(y))
            # a result that lands past its deadline is discarded — the
            # client gave up on it, and replying "ok" late would let a
            # reply race the caller's timeout handling
            check_deadline(deadline, "before the reply (result discarded)")
            reply(msg_id, {"rows": int(y.shape[0]), "cols": int(y.shape[1]),
                           "memo": memo.delta()})
        except KeyError:
            reply_error(msg_id, _unknown_handle(handle))
        except BaseException as error:
            reply_error(msg_id, error)
        finally:
            if view is not None:
                view.release()

    def serve_profile(msg) -> None:
        _, msg_id, request_id, slot, handle, rows, cols, backend, \
            deadline = msg
        view = None
        try:
            fault_hooks(request_id)
            check_deadline(deadline, "before worker dispatch")
            with _span("gateway.worker.profile", request=request_id,
                       worker=index, handle=handle):
                view = ring.view(slot, 4 * rows * cols)
                x = np.frombuffer(view, dtype=np.float32).reshape(rows, cols)
                result = service.profile(handles[handle], x, backend=backend,
                                         deadline=deadline)
                ring.write(slot, np.ascontiguousarray(result.y))
            check_deadline(deadline, "before the reply (result discarded)")
            reply(msg_id, {
                "rows": int(result.y.shape[0]),
                "cols": int(result.y.shape[1]),
                "meta": {
                    "counters": asdict(result.counters),
                    "backend": result.backend,
                    "system": result.system,
                    "split": result.split,
                    "threads": result.threads,
                    "cache_hit": bool(result.cache_hit),
                    "codegen_seconds": result.codegen_seconds,
                },
                "memo": memo.delta(),
            })
        except KeyError:
            reply_error(msg_id, _unknown_handle(handle))
        except BaseException as error:
            reply_error(msg_id, error)
        finally:
            if view is not None:
                view.release()

    def serve_register(msg) -> None:
        _, msg_id, segment_name, meta = msg
        try:
            matrix = _matrix_from_segment(segment_name, meta)
            handle = service.register(matrix, meta.get("name", ""))
            handles[int(meta["gid"])] = handle
            reply(msg_id, {"handle": int(meta["gid"]),
                           "memo": memo.delta()})
        except BaseException as error:
            reply_error(msg_id, error)

    running = True
    while running:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "mul":
            pool.submit(serve_multiply, msg)
        elif kind == "prof":
            pool.submit(serve_profile, msg)
        elif kind == "reg":
            serve_register(msg)
        elif kind == "unreg":
            _, msg_id, gid = msg
            try:
                service.unregister(handles.pop(gid))
                reply(msg_id, {"handle": gid})
            except BaseException as error:
                reply_error(msg_id, error)
        elif kind == "stats":
            _, msg_id = msg
            try:
                reply(msg_id, {"snapshot": service.snapshot(),
                               "pid": os.getpid()})
            except BaseException as error:
                reply_error(msg_id, error)
        elif kind == "seed":
            memo.absorb(msg[1])
        elif kind == "fault":
            if msg[1] is None:
                faults.clear_plan()
            else:
                faults.install_plan(faults.FaultPlan.from_dict(msg[1]))
        elif kind == "shutdown":
            running = False
            if len(msg) > 1:            # acked shutdown: (shutdown, msg_id)
                reply(msg[1], {"pid": os.getpid()})
        # unknown kinds are dropped: a newer gateway may speak ops this
        # worker build does not know, and the pipe must stay in sync
    pool.shutdown(wait=True)
    service.close()
    ring.close()
    conn.close()


def _unknown_handle(handle: int):
    from repro.errors import ShapeError

    return ShapeError(f"unknown handle {handle}; register the matrix "
                      f"through this gateway first")


def _matrix_from_segment(segment_name: str, meta: dict) -> CsrMatrix:
    """Rebuild (and verify) one registered matrix from its shm segment.

    The arrays are copied out — the segment is unlinked by the gateway
    as soon as every worker has acknowledged — and the content hash is
    recomputed and checked against the client-supplied fingerprint, so
    a corrupted transport surfaces at registration, not as wrong
    results later.
    """
    nrows = int(meta["nrows"])
    nnz = int(meta["nnz"])
    segment = attach_shm(segment_name)
    try:
        offset = 0
        row_ptr = np.frombuffer(segment.buf, dtype=np.int64,
                                count=nrows + 1, offset=offset).copy()
        offset += 8 * (nrows + 1)
        col = np.frombuffer(segment.buf, dtype=np.int64, count=nnz,
                            offset=offset).copy()
        offset += 8 * nnz
        vals = np.frombuffer(segment.buf, dtype=np.float32, count=nnz,
                             offset=offset).copy()
    finally:
        segment.close()
    matrix = CsrMatrix(nrows, int(meta["ncols"]), row_ptr, col, vals,
                       name=str(meta.get("name", "")))
    expected = meta.get("fingerprint")
    if expected and matrix.fingerprint() != expected:
        from repro.errors import ProtocolError

        raise ProtocolError(
            f"registration fingerprint mismatch for {matrix!r}: operands "
            f"were corrupted in transport")
    return matrix
