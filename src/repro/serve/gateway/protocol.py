"""Wire protocol for the serving gateway: length-prefixed binary frames.

One frame per request and per reply, framed by a fixed 20-byte struct
header (no per-request JSON on the hot path)::

    <HBBIQI  little-endian
    ┌───────┬─────────┬────┬─────────────┬────────────┬─────────────┐
    │ magic │ version │ op │ payload_len │ request_id │ deadline_ms │
    │  u16  │   u8    │ u8 │     u32     │    u64     │     u32     │
    └───────┴─────────┴────┴─────────────┴────────────┴─────────────┘

``request_id`` is chosen by the client and echoed verbatim in the
reply, so a client may pipeline requests on one connection and match
replies out of band.  ``deadline_ms`` is the request's remaining
deadline budget in milliseconds at send time (0 = no deadline): the
gateway anchors an absolute deadline when the header arrives, rejects
already-expired requests at admission with a typed
:class:`~repro.errors.DeadlineExceeded` before any work, and forwards
the remaining budget to the worker so bind/codegen/multiply never run
past it.  Replies carry 0.  Payload layouts per op:

* ``MULTIPLY``  — ``<IIIH`` (handle, rows, cols, tenant_len) + tenant
  utf-8 + row-major float32 operand bytes.  The hottest op is parsed
  with two ``struct`` calls and zero JSON.
* ``REGISTER``  — ``<I`` meta_len + JSON meta (``nrows ncols nnz name
  fingerprint tenant``) + raw ``row_ptr`` (int64) + ``col_indices``
  (int64) + ``vals`` (float32) bytes: the CSR arrays cross the wire
  exactly once, already in kernel layout.
* ``PROFILE``   — ``<I`` meta_len + JSON meta (``handle tenant backend
  rows cols``) + float32 operand bytes.
* ``UNREGISTER`` / ``STATS`` / ``SHUTDOWN`` / ``PING`` — ``<I``
  meta_len + JSON meta (tiny control ops).

Replies reuse the header with ``op=OP_REPLY``; the payload starts with
one status byte — 0 for success, 1 for failure.  A failure body is
``<H`` name_len + exception class name + ``<H`` reason_len + reason
(the machine-readable backpressure tag, usually empty) + utf-8
message; the client maps the name back onto the
:mod:`repro.errors` hierarchy
(:func:`raise_remote_error`), so a quota rejection raises
:class:`~repro.errors.GatewayOverloaded` on the caller's side of the
socket, not a stringly-typed RuntimeError.

Malformed input is rejected with typed errors at parse time:
:class:`~repro.errors.ProtocolError` for bad magic/version/op or
inconsistent lengths, :class:`~repro.errors.FrameTooLarge` for frames
above the size limit, and truncation (EOF mid-frame) raises
:class:`~repro.errors.GatewayDisconnected` — the retryable
connection-dropped signal — from the socket helpers.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro import errors
from repro.errors import (FrameTooLarge, GatewayDisconnected, ProtocolError,
                          ReproError)
from repro.sparse.csr import CsrMatrix

__all__ = [
    "DEFAULT_MAX_FRAME",
    "HEADER",
    "MAGIC",
    "OP_MULTIPLY",
    "OP_NAMES",
    "OP_PING",
    "OP_PROFILE",
    "OP_REGISTER",
    "OP_REPLY",
    "OP_SHUTDOWN",
    "OP_STATS",
    "OP_UNREGISTER",
    "VERSION",
    "decode_json_op",
    "decode_multiply",
    "decode_multiply_reply",
    "decode_profile",
    "decode_profile_reply",
    "decode_register",
    "decode_reply",
    "encode_frame",
    "encode_json_op",
    "encode_multiply",
    "encode_multiply_reply",
    "encode_profile",
    "encode_profile_reply",
    "encode_register",
    "encode_reply_error",
    "encode_reply_ok",
    "parse_header",
    "raise_remote_error",
    "recv_frame",
    "send_frame",
]

MAGIC = 0x5247                  # "GR": gateway repro
VERSION = 2                     # v2 added deadline_ms to the header

HEADER = struct.Struct("<HBBIQI")

OP_REGISTER = 1
OP_UNREGISTER = 2
OP_MULTIPLY = 3
OP_PROFILE = 4
OP_STATS = 5
OP_SHUTDOWN = 6
OP_PING = 7
OP_REPLY = 0x80

OP_NAMES = {
    OP_REGISTER: "register",
    OP_UNREGISTER: "unregister",
    OP_MULTIPLY: "multiply",
    OP_PROFILE: "profile",
    OP_STATS: "stats",
    OP_SHUTDOWN: "shutdown",
    OP_PING: "ping",
    OP_REPLY: "reply",
}

#: refuse to even read frames above this (oversized-frame backpressure
#: happens *before* the payload is buffered)
DEFAULT_MAX_FRAME = 256 << 20

_MULTIPLY = struct.Struct("<IIIH")
_MULTIPLY_REPLY = struct.Struct("<II")
_META_LEN = struct.Struct("<I")
_ERR = struct.Struct("<H")

_STATUS_OK = b"\x00"
_STATUS_ERR = b"\x01"


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(op: int, payload: bytes, request_id: int = 0,
                 deadline_ms: int = 0) -> bytes:
    """One complete frame: header + payload."""
    return HEADER.pack(MAGIC, VERSION, op, len(payload), request_id,
                       deadline_ms) + payload


def parse_header(header: bytes, max_frame: int = DEFAULT_MAX_FRAME
                 ) -> tuple[int, int, int, int]:
    """Validate a 20-byte header; returns ``(op, payload_len,
    request_id, deadline_ms)``.

    Raises :class:`ProtocolError` for bad magic/version/op and
    :class:`FrameTooLarge` when the announced payload exceeds
    ``max_frame`` — before any payload byte is read.
    """
    if len(header) != HEADER.size:
        raise ProtocolError(
            f"truncated header: {len(header)} of {HEADER.size} bytes")
    magic, version, op, length, request_id, deadline_ms = \
        HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04x} (expected "
                            f"0x{MAGIC:04x}); not a gateway frame")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version} "
                            f"(this gateway speaks {VERSION})")
    if op not in OP_NAMES:
        raise ProtocolError(f"unknown op 0x{op:02x}")
    if length > max_frame:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit")
    return op, length, request_id, deadline_ms


# ----------------------------------------------------------------------
# Request payloads
# ----------------------------------------------------------------------
def encode_multiply(handle: int, x: np.ndarray,
                    tenant: str = "default") -> bytes:
    """The ``MULTIPLY`` payload for one contiguous-float32 operand."""
    tenant_bytes = tenant.encode("utf-8")
    rows, cols = x.shape
    return (_MULTIPLY.pack(handle, rows, cols, len(tenant_bytes))
            + tenant_bytes + x.tobytes())


def decode_multiply(payload: bytes | memoryview
                    ) -> tuple[int, str, int, int, memoryview]:
    """Parse a ``MULTIPLY`` payload without copying the operand.

    Returns ``(handle, tenant, rows, cols, operand_bytes)``; the
    operand stays a memoryview over the frame buffer so the gateway can
    copy it straight into a shared-memory slot.
    """
    view = memoryview(payload)
    if len(view) < _MULTIPLY.size:
        raise ProtocolError(
            f"multiply payload of {len(view)} bytes is shorter than its "
            f"{_MULTIPLY.size}-byte fixed part")
    handle, rows, cols, tenant_len = _MULTIPLY.unpack_from(view)
    offset = _MULTIPLY.size + tenant_len
    expected = offset + 4 * rows * cols
    if len(view) != expected:
        raise ProtocolError(
            f"multiply payload is {len(view)} bytes, expected {expected} "
            f"for a {rows}x{cols} float32 operand")
    tenant = bytes(view[_MULTIPLY.size:offset]).decode("utf-8")
    return handle, tenant, rows, cols, view[offset:]


def encode_multiply_reply(y: np.ndarray | None, rows: int, cols: int,
                          data: bytes | memoryview | None = None) -> bytes:
    """The success body of a multiply reply: dims + result bytes.

    Accepts either a result array or pre-serialized ``data`` (the
    gateway reads result bytes straight out of the shm slot)."""
    if data is None:
        data = y.tobytes()
    return _MULTIPLY_REPLY.pack(rows, cols) + bytes(data)


def decode_multiply_reply(body: bytes | memoryview) -> np.ndarray:
    """Parse a multiply reply body back into an owned float32 array."""
    view = memoryview(body)
    if len(view) < _MULTIPLY_REPLY.size:
        raise ProtocolError("truncated multiply reply")
    rows, cols = _MULTIPLY_REPLY.unpack_from(view)
    expected = _MULTIPLY_REPLY.size + 4 * rows * cols
    if len(view) != expected:
        raise ProtocolError(
            f"multiply reply is {len(view)} bytes, expected {expected} "
            f"for a {rows}x{cols} result")
    flat = np.frombuffer(view, dtype=np.float32,
                         offset=_MULTIPLY_REPLY.size)
    return flat.reshape(rows, cols).copy()


def encode_profile_reply(meta: dict, data: bytes | memoryview) -> bytes:
    """The success body of a profile reply: JSON meta + result bytes."""
    meta_bytes = json.dumps(meta).encode("utf-8")
    return _META_LEN.pack(len(meta_bytes)) + meta_bytes + bytes(data)


def decode_profile_reply(body: bytes | memoryview
                         ) -> tuple[dict, np.ndarray]:
    """Parse a profile reply; returns ``(meta, owned float32 result)``."""
    meta, offset, view = _decode_meta(body)
    try:
        rows, cols = int(meta["rows"]), int(meta["cols"])
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"profile reply meta missing dims: {error}")
    if len(view) - offset != 4 * rows * cols:
        raise ProtocolError(
            f"profile reply carries {len(view) - offset} result bytes, "
            f"expected {4 * rows * cols} for a {rows}x{cols} result")
    flat = np.frombuffer(view, dtype=np.float32, offset=offset)
    return meta, flat.reshape(rows, cols).copy()


def encode_register(matrix: CsrMatrix, name: str = "",
                    tenant: str = "default") -> bytes:
    """The ``REGISTER`` payload: JSON meta + the three raw CSR arrays."""
    meta = {
        "nrows": matrix.nrows,
        "ncols": matrix.ncols,
        "nnz": matrix.nnz,
        "name": name or matrix.name,
        "fingerprint": matrix.fingerprint(),
        "tenant": tenant,
    }
    meta_bytes = json.dumps(meta).encode("utf-8")
    return b"".join([
        _META_LEN.pack(len(meta_bytes)), meta_bytes,
        matrix.row_ptr.tobytes(), matrix.col_indices.tobytes(),
        matrix.vals.tobytes(),
    ])


def decode_register(payload: bytes | memoryview) -> tuple[dict, CsrMatrix]:
    """Parse a ``REGISTER`` payload; returns ``(meta, matrix)``.

    The matrix arrays are zero-copy views over the payload buffer
    (read-only — :class:`CsrMatrix` never mutates them); construction
    re-validates the CSR invariants, so a malformed registration fails
    here with the library's own typed errors.
    """
    meta, offset, view = _decode_meta(payload)
    try:
        nrows = int(meta["nrows"])
        ncols = int(meta["ncols"])
        nnz = int(meta["nnz"])
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"register meta missing dims: {error}")
    sizes = (8 * (nrows + 1), 8 * nnz, 4 * nnz)
    if len(view) - offset != sum(sizes):
        raise ProtocolError(
            f"register payload carries {len(view) - offset} array bytes, "
            f"expected {sum(sizes)} for nrows={nrows} nnz={nnz}")
    row_ptr = np.frombuffer(view, dtype=np.int64, count=nrows + 1,
                            offset=offset)
    offset += sizes[0]
    col = np.frombuffer(view, dtype=np.int64, count=nnz, offset=offset)
    offset += sizes[1]
    vals = np.frombuffer(view, dtype=np.float32, count=nnz, offset=offset)
    matrix = CsrMatrix(nrows, ncols, row_ptr, col, vals,
                       name=str(meta.get("name", "")))
    return meta, matrix


def encode_profile(handle: int, x: np.ndarray, backend: str | None = None,
                   tenant: str = "default") -> bytes:
    """The ``PROFILE`` payload: JSON meta + float32 operand bytes."""
    rows, cols = x.shape
    meta = {"handle": handle, "tenant": tenant, "backend": backend,
            "rows": rows, "cols": cols}
    meta_bytes = json.dumps(meta).encode("utf-8")
    return _META_LEN.pack(len(meta_bytes)) + meta_bytes + x.tobytes()


def decode_profile(payload: bytes | memoryview
                   ) -> tuple[dict, memoryview]:
    """Parse a ``PROFILE`` payload; returns ``(meta, operand_bytes)``."""
    meta, offset, view = _decode_meta(payload)
    try:
        expected = 4 * int(meta["rows"]) * int(meta["cols"])
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"profile meta missing dims: {error}")
    if len(view) - offset != expected:
        raise ProtocolError(
            f"profile payload carries {len(view) - offset} operand bytes, "
            f"expected {expected}")
    return meta, view[offset:]


def encode_json_op(**meta) -> bytes:
    """Payload for the small control ops (unregister/stats/shutdown)."""
    meta_bytes = json.dumps(meta).encode("utf-8")
    return _META_LEN.pack(len(meta_bytes)) + meta_bytes


def decode_json_op(payload: bytes | memoryview) -> dict:
    meta, offset, view = _decode_meta(payload)
    if len(view) != offset:
        raise ProtocolError(
            f"{len(view) - offset} trailing bytes after control-op meta")
    return meta


def _decode_meta(payload: bytes | memoryview) -> tuple[dict, int, memoryview]:
    view = memoryview(payload)
    if len(view) < _META_LEN.size:
        raise ProtocolError("payload shorter than its meta-length prefix")
    (meta_len,) = _META_LEN.unpack_from(view)
    offset = _META_LEN.size + meta_len
    if len(view) < offset:
        raise ProtocolError(
            f"meta length {meta_len} overruns the {len(view)}-byte payload")
    try:
        meta = json.loads(bytes(view[_META_LEN.size:offset]))
    except ValueError as error:
        raise ProtocolError(f"meta is not valid JSON: {error}")
    if not isinstance(meta, dict):
        raise ProtocolError(f"meta must be a JSON object, got "
                            f"{type(meta).__name__}")
    return meta, offset, view


# ----------------------------------------------------------------------
# Replies
# ----------------------------------------------------------------------
def encode_reply_ok(body: bytes = b"") -> bytes:
    return _STATUS_OK + body


def encode_reply_error(error: BaseException) -> bytes:
    """Serialize a failure as ``(class name, reason, message)``.

    ``reason`` is the machine-readable backpressure tag carried by
    :class:`~repro.errors.GatewayOverloaded` (empty for everything
    else) — it survives the wire so clients can branch on *which*
    limit fired without parsing the message."""
    name = type(error).__name__.encode("utf-8")
    reason = str(getattr(error, "reason", "") or "").encode("utf-8")
    message = str(error).encode("utf-8")
    return (_STATUS_ERR + _ERR.pack(len(name)) + name
            + _ERR.pack(len(reason)) + reason + message)


def decode_reply(payload: bytes | memoryview) -> memoryview:
    """The success body of a reply; raises the typed remote error
    otherwise."""
    view = memoryview(payload)
    if len(view) < 1:
        raise ProtocolError("empty reply payload")
    if view[0] == _STATUS_OK[0]:
        return view[1:]
    if view[0] != _STATUS_ERR[0]:
        raise ProtocolError(f"unknown reply status {view[0]}")
    body = view[1:]
    name, offset = _decode_err_field(body, 0, "name")
    reason, offset = _decode_err_field(body, offset, "reason")
    message = bytes(body[offset:]).decode("utf-8")
    raise_remote_error(name, message, reason)


def _decode_err_field(body: memoryview, offset: int,
                      label: str) -> tuple[str, int]:
    if len(body) < offset + _ERR.size:
        raise ProtocolError("truncated error reply")
    (length,) = _ERR.unpack_from(body, offset)
    offset += _ERR.size
    if len(body) < offset + length:
        raise ProtocolError(
            f"error reply {label} overruns the payload")
    return bytes(body[offset:offset + length]).decode("utf-8"), \
        offset + length


def raise_remote_error(name: str, message: str, reason: str = "") -> None:
    """Re-raise a remote failure as its local typed equivalent.

    Names resolving to a :class:`~repro.errors.ReproError` subclass in
    :mod:`repro.errors` raise that class; anything else — including
    remote programming errors — raises
    :class:`~repro.errors.GatewayError` carrying the original name.
    A non-empty ``reason`` is reattached to
    :class:`~repro.errors.GatewayOverloaded` so backpressure handling
    can branch on it client-side.
    """
    cls = getattr(errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        if reason and issubclass(cls, errors.GatewayOverloaded):
            raise cls(message, reason=reason)
        raise cls(message)
    raise errors.GatewayError(f"remote {name}: {message}")


# ----------------------------------------------------------------------
# Blocking-socket helpers (the client and the tests)
# ----------------------------------------------------------------------
def send_frame(sock, op: int, payload: bytes, request_id: int = 0,
               deadline_ms: int = 0) -> None:
    sock.sendall(encode_frame(op, payload, request_id, deadline_ms))


def recv_exactly(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes; EOF mid-read raises the typed,
    retryable :class:`~repro.errors.GatewayDisconnected`."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            got = n - remaining
            raise GatewayDisconnected(
                f"truncated frame: connection closed after {got} of "
                f"{n} bytes")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock, max_frame: int = DEFAULT_MAX_FRAME
               ) -> tuple[int, int, bytes]:
    """Read one frame; returns ``(op, request_id, payload)``."""
    op, length, request_id, _deadline = parse_header(
        recv_exactly(sock, HEADER.size), max_frame)
    return op, request_id, recv_exactly(sock, length)
