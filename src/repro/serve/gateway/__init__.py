"""Network-facing serving gateway: sockets in, worker processes out.

The package splits into four layers:

* :mod:`~repro.serve.gateway.protocol` — the length-prefixed binary
  wire protocol (struct-framed header, binary multiply payloads, JSON
  control ops, typed error replies);
* :mod:`~repro.serve.gateway.shm` — the shared-memory slot ring
  operands and results travel through (the hot path never pickles a
  matrix);
* :mod:`~repro.serve.gateway.worker` — the per-process serving loop:
  one :class:`~repro.serve.SpmmService` per worker, zero-copy operand
  views, autotune-memo deltas riding back on replies;
* :mod:`~repro.serve.gateway.gateway` / ``client`` — the asyncio front
  end (admission control, backpressure, crash recovery, replication)
  and the blocking client that mirrors the in-process service API.

``python -m repro.serve.gateway`` runs a standalone gateway.
"""

from repro.serve.gateway.client import GatewayClient
from repro.serve.gateway.gateway import Gateway
from repro.serve.gateway.protocol import DEFAULT_MAX_FRAME
from repro.serve.gateway.shm import DEFAULT_SLOT_BYTES, ShmRing, ShmRingStats

__all__ = [
    "DEFAULT_MAX_FRAME",
    "DEFAULT_SLOT_BYTES",
    "Gateway",
    "GatewayClient",
    "ShmRing",
    "ShmRingStats",
]
