"""``python -m repro.serve.gateway``: run a standalone serving gateway.

Binds the binary protocol on ``--host``/``--port``, spawns ``--workers``
worker processes, prints the bound address, and serves until a wire
``SHUTDOWN`` op or Ctrl-C.  ``examples/gateway_traffic.py`` drives one.
"""

from __future__ import annotations

import argparse

from repro.api.config import ExecutionConfig
from repro.serve.gateway.gateway import Gateway


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.gateway",
        description="Serve SpMM over the binary gateway protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks a free port (printed on start)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--threads", type=int, default=1,
                        help="simulated CPU threads per worker service")
    parser.add_argument("--split", default="auto")
    parser.add_argument("--backend", default="native")
    parser.add_argument("--system", default="jit")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="per-worker request-coalescing cap")
    parser.add_argument("--flush-us", type=float, default=100.0)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--tenant-quota", type=int, default=None)
    parser.add_argument("--slot-bytes", type=int, default=1 << 20)
    parser.add_argument("--mp-start", default="spawn",
                        choices=("spawn", "fork", "forkserver"))
    args = parser.parse_args(argv)

    config = ExecutionConfig(
        split=args.split, threads=args.threads, backend=args.backend,
        max_batch=args.max_batch, flush_us=args.flush_us,
        workers=args.workers, max_inflight=args.max_inflight,
        tenant_quota=args.tenant_quota)
    gateway = Gateway(config, host=args.host, port=args.port,
                      system=args.system, slot_bytes=args.slot_bytes,
                      mp_start=args.mp_start)
    gateway.start()
    print(f"gateway listening on {gateway.host}:{gateway.port} "
          f"({args.workers} workers, backend={args.backend})", flush=True)
    try:
        gateway.serve_forever()
    except KeyboardInterrupt:
        gateway.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
