"""The serving gateway: asyncio front end over a worker-process pool.

:class:`Gateway` is the network face of :mod:`repro.serve`.  It owns

* one asyncio TCP server (on a background loop thread — the public API
  stays synchronous) speaking the length-prefixed binary protocol of
  :mod:`repro.serve.gateway.protocol`;
* a pool of worker *processes*, each running a private
  :class:`~repro.serve.SpmmService` (its own sharded kernel cache and
  workspace pool — process boundaries are what let GIL-bound serving
  scale across cores);
* one shared-memory slot ring (:class:`~repro.serve.gateway.shm.ShmRing`)
  that operands and results travel through — the hot path never pickles
  a matrix: the gateway copies request columns from the socket buffer
  into a slot, the worker maps a zero-copy view, computes, writes the
  result back in place, and the gateway serves the reply bytes straight
  out of the slot.

Admission control is strictly bounded: a gateway-wide ``max_inflight``
cap, optional per-tenant quotas, and slot exhaustion each reject with a
typed :class:`~repro.errors.GatewayOverloaded` (carrying a ``reason``)
instead of queueing unboundedly.  Worker death is detected by pipe EOF;
the dead process is joined *before* any of its in-flight slots are
released (a half-written slot is never recycled), its requests fail
with :class:`~repro.errors.WorkerCrashed`, and a replacement is spawned
and re-fed every registration and the accumulated autotune memo.

Resilience (on top of crash recovery): request deadlines ride the wire
header as a relative budget, are anchored to the monotonic clock at
header arrival, checked at admission (typed
:class:`~repro.errors.DeadlineExceeded` before any work), and shipped
to the worker as an absolute stamp so queue wait decrements the budget
for free.  A watchdog thread tracks each worker's oldest in-flight
dispatch; past ``hang_threshold_ms`` the worker is declared hung — its
requests fail fast with :class:`~repro.errors.WorkerHung`, the process
is killed and respawned through the crash path.  A per-worker-slot
circuit breaker (closed → open → half-open; state survives respawns)
stops routing to repeat offenders; all live breakers open rejects with
``GatewayOverloaded(reason="breaker")``.  Every failure mode is
reproducible on demand through :meth:`Gateway.set_fault_plan`
(:mod:`repro.faults`).

Registration replicates to all workers: the CSR arrays are written once
into a dedicated shared-memory segment, every worker copies them out
(fingerprint-verified) and registers under the gateway-assigned handle
id, and the segment is unlinked.  The :func:`~repro.core.autotune`
memo is fleet-shared through the gateway: any worker's fresh verdicts
ride back on its replies and are broadcast to the siblings, so each
kernel identity is tuned once per fleet, not once per process.

Observability: ``gateway.admit`` / ``gateway.dispatch`` /
``gateway.reply`` spans carry the gateway-assigned request id (the same
id the worker's ``gateway.worker.multiply`` span annotates), and
``gateway_*`` metrics land in the process registry.  The ``STATS`` op
renders Prometheus text combining the gateway's own series with every
worker's service snapshot, each stamped with a distinct ``worker``
label.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import threading
import time
from multiprocessing import get_context, shared_memory

import numpy as np

from repro import errors as _errors
from repro import faults
from repro.api.config import ExecutionConfig
from repro.errors import (DeadlineExceeded, FrameTooLarge, GatewayError,
                          GatewayOverloaded, ProtocolError, ReproError,
                          ShapeError, WorkerCrashed, WorkerHung)
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsSnapshot, get_registry
from repro.obs.trace import span as _span
from repro.serve.gateway import protocol as proto
from repro.serve.gateway.shm import DEFAULT_SLOT_BYTES, ShmRing
from repro.serve.gateway.worker import worker_main
from repro.sparse.csr import CsrMatrix

__all__ = ["Gateway"]

_GATEWAY_IDS = itertools.count()

#: default bound on admitted-but-unanswered requests when no config is
#: given (mirrors :class:`ExecutionConfig.max_inflight`)
_SPAWN_TIMEOUT = 120.0


class _WorkerHandle:
    """Gateway-side state for one worker process."""

    __slots__ = ("index", "process", "conn", "reader", "pending", "alive",
                 "seq", "pid", "started")

    def __init__(self, index: int, process, conn, pid: int) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.pid = pid
        self.reader: threading.Thread | None = None
        self.pending: dict[int, asyncio.Future] = {}
        #: msg_id -> dispatch time.monotonic(); the watchdog's view of
        #: this worker's in-flight age (loop thread only)
        self.started: dict[int, float] = {}
        self.alive = True
        self.seq = 0


class _Breaker:
    """One worker slot's circuit breaker: closed → open → half-open.

    Keyed by worker *index*, not process — state survives respawns, so
    a slot whose fresh processes keep hanging stays open instead of
    earning a clean slate per corpse.  All transitions happen on the
    gateway's loop thread (picks, replies, death/hang handling), so no
    lock is needed.

    * CLOSED: routing normally; ``threshold`` consecutive hang/crash
      failures open it.
    * OPEN: no requests routed for ``cooldown`` seconds.
    * HALF_OPEN: exactly one in-flight probe request at a time; a reply
      closes the breaker, another failure re-opens it.

    Any worker reply — ok *or* typed error — counts as success here:
    the breaker tracks process liveness, not request outcomes.
    """

    CLOSED, OPEN, HALF_OPEN = 0, 1, 2

    __slots__ = ("threshold", "cooldown", "state", "failures",
                 "opened_at", "probing")

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False

    def allow(self, now: float) -> bool:
        """May a request route to this worker right now?"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at < self.cooldown:
                return False
            self.state = self.HALF_OPEN
            self.probing = False
        if self.probing:
            return False
        self.probing = True
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self.probing = False

    def record_failure(self, now: float) -> None:
        self.probing = False
        if (self.state == self.HALF_OPEN
                or self.failures + 1 >= self.threshold):
            self.state = self.OPEN
            self.opened_at = now
            self.failures = 0
        else:
            self.failures += 1


class Gateway:
    """Network-facing SpMM serving gateway over a worker-process pool.

    Args:
        config: An :class:`~repro.api.ExecutionConfig`; ``workers``,
            ``max_inflight`` and ``tenant_quota`` shape the gateway,
            the execution knobs (threads/split/isa/backend/coalescing)
            shape each worker's service.  ``None`` serves the native
            backend with autotuned splits on one worker.
        host / port: Bind address; port 0 (default) picks a free port
            (``gateway.port`` after :meth:`start`).
        system: Registry system every worker serves (``"jit"`` default).
        slot_bytes: Byte capacity of one shm operand slot — bounds the
            largest operand *and* result a request may carry.
        slots: Slot count of the ring; ``None`` sizes it to
            ``max_inflight`` (clamped to [4, 64]).  Fewer slots than
            ``max_inflight`` makes slot exhaustion a real backpressure
            signal.
        max_frame: Reject request frames above this many payload bytes
            *before* buffering them.
        mp_start: Multiprocessing start method for workers (``"spawn"``
            default — robust; ``"fork"`` starts much faster where safe,
            e.g. single-threaded test drivers).
        obs_label: ``gateway=`` label on exported metrics.

    Lifecycle: :meth:`start` → traffic → :meth:`close`; also a context
    manager.  All public methods are thread-safe and synchronous — the
    asyncio machinery is an implementation detail on a daemon thread.
    """

    def __init__(self, config: ExecutionConfig | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 system: str = "jit",
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 slots: int | None = None,
                 max_frame: int = proto.DEFAULT_MAX_FRAME,
                 mp_start: str = "spawn",
                 breaker_cooldown: float = 1.0,
                 obs_label: str | None = None) -> None:
        if config is None:
            config = ExecutionConfig(split="auto", backend="native")
        self.config = config
        self.workers = config.workers
        self.max_inflight = config.max_inflight
        self.tenant_quota = config.tenant_quota
        #: seconds before a worker's oldest in-flight request means hung
        self.hang_threshold = config.hang_threshold_ms / 1e3
        #: seconds an open breaker waits before admitting a probe
        self.breaker_cooldown = breaker_cooldown
        self.host = host
        self.port = port
        self.system = system
        self.max_frame = max_frame
        self.slot_bytes = slot_bytes
        self.slots = (slots if slots is not None
                      else max(4, min(64, config.max_inflight)))
        self.obs_label = obs_label or f"gateway{next(_GATEWAY_IDS)}"
        self._ctx = get_context(mp_start)
        self._service_kwargs = {
            "threads": config.threads,
            "split": config.split,
            "isa": config.isa,
            "backend": config.effective_backend,
            "max_batch": config.max_batch,
            "flush_us": config.flush_us,
            "l1": config.l1,
            "l2": config.l2,
            "system": system,
            # tiered execution is per worker: each worker promotes its
            # own hot handles, and the autotune-memo broadcast riding
            # every reply converges the pool's promoted split choices;
            # a respawned worker re-promotes from its replayed
            # registrations as traffic returns
            "tier_mode": config.tier_mode,
            "promote_after": config.promote_after,
            "promotion_workers": config.promotion_workers,
            "opt_level": config.opt_level,
            "search_budget": config.search_budget,
        }
        self._ring: ShmRing | None = None
        self._workers: list[_WorkerHandle] = []
        self._rr = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.Task] = set()
        self._started = False
        self._closing = False
        # admission state — mutated only on the loop thread
        self._inflight = 0
        self._tenants: dict[str, int] = {}
        #: wakes close()'s drain wait whenever in-flight hits zero
        self._drain = threading.Condition()
        # supervision: per-slot breakers + the watchdog thread
        self._breakers = [_Breaker(config.breaker_threshold,
                                   breaker_cooldown)
                          for _ in range(self.workers)]
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()
        self._fault_plan: faults.FaultPlan | None = None
        # registration / memo state — shared with respawn threads
        self._state_lock = threading.Lock()
        self._matrices: dict[int, tuple[CsrMatrix, str, str]] = {}
        self._next_gid = itertools.count(1)
        self._memo: dict = {}
        self._next_request_id = itertools.count(1)
        #: set when a wire SHUTDOWN op arrives; ``serve_forever`` waits
        #: on it (the gateway itself keeps serving until ``close``)
        self.shutdown_requested = threading.Event()
        reg = get_registry()
        lbl = {"gateway": self.obs_label}
        self._c_requests = {
            op: reg.counter("gateway_requests_total", op=name, **lbl)
            for op, name in proto.OP_NAMES.items() if op != proto.OP_REPLY}
        self._c_rejects = {
            reason: reg.counter("gateway_rejections_total", reason=reason,
                                **lbl)
            for reason in ("inflight", "tenant", "shm", "frame", "protocol",
                           "breaker")}
        self._g_inflight = reg.gauge("gateway_inflight", **lbl)
        self._g_handles = reg.gauge("gateway_registered_handles", **lbl)
        self._g_shm = reg.gauge("gateway_shm_slots_in_use", **lbl)
        self._c_crashes = reg.counter("gateway_worker_crashes_total", **lbl)
        self._c_hangs = reg.counter("gateway_worker_hangs_total", **lbl)
        self._c_deadline = reg.counter("gateway_deadline_exceeded_total",
                                       **lbl)
        self._g_breaker = [
            reg.gauge("gateway_breaker_state", worker=str(i), **lbl)
            for i in range(self.workers)]
        self._h_latency = {
            name: reg.histogram("gateway_request_seconds", op=name, **lbl)
            for name in ("multiply", "profile")}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Gateway":
        """Spawn workers, bind the server; returns ``self`` when live."""
        if self._started:
            raise GatewayError("gateway already started")
        self._started = True
        self._ring = ShmRing(self.slot_bytes, self.slots)
        try:
            self._workers = [self._spawn_worker(i)
                             for i in range(self.workers)]
        except BaseException:
            self._emergency_teardown()
            raise
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, daemon=True,
            name=f"{self.obs_label}-loop")
        self._loop_thread.start()
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._start_server(), self._loop)
            self.host, self.port = future.result(timeout=30.0)
        except BaseException:
            self._emergency_teardown()
            raise
        for wh in self._workers:
            self._start_reader(wh)
        self._watchdog = threading.Thread(
            target=self._watchdog_main, daemon=True,
            name=f"{self.obs_label}-watchdog")
        self._watchdog.start()
        return self

    async def _start_server(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def close(self, drain_seconds: float = 5.0) -> None:
        """Drain in-flight traffic, stop workers, free the shm ring.

        The drain parks on a condition variable that :meth:`_release`
        signals when the last in-flight request completes — no
        busy-wait; the thread sleeps until drained or the budget runs
        out, whichever comes first.
        """
        if not self._started or self._closing:
            return
        self._closing = True
        self._watchdog_stop.set()
        deadline = time.perf_counter() + drain_seconds
        with self._drain:
            while self._inflight:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._drain.wait(remaining)
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
        if self._server is not None:
            asyncio.run_coroutine_threadsafe(
                self._stop_server(), self._loop).result(timeout=10.0)
        for wh in self._workers:
            wh.alive = False
            try:
                wh.conn.send(("shutdown",))
            except (OSError, ValueError):
                pass
        for wh in self._workers:
            wh.process.join(timeout=10.0)
            if wh.process.is_alive():          # pragma: no cover - stuck
                wh.process.terminate()
                wh.process.join(timeout=5.0)
            try:
                wh.conn.close()
            except OSError:                    # pragma: no cover
                pass
            if wh.reader is not None:
                wh.reader.join(timeout=5.0)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=10.0)
            self._loop.close()
        if self._ring is not None:
            self._ring.close()

    async def _stop_server(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        # connections linger after the listener dies (handlers park on
        # readexactly); cancel them so no task is destroyed pending when
        # the loop closes.  In-flight *requests* were already drained —
        # only the idle read awaits get interrupted here.
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)

    def _emergency_teardown(self) -> None:
        """Best-effort cleanup when ``start`` fails part-way."""
        self._watchdog_stop.set()
        for wh in self._workers:
            wh.alive = False
            try:
                wh.process.terminate()
                wh.process.join(timeout=5.0)
                wh.conn.close()
            except (OSError, ValueError):      # pragma: no cover
                pass
        self._workers = []
        if self._loop is not None and self._loop_thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=5.0)
            self._loop.close()
        if self._ring is not None:
            self._ring.close()

    def __enter__(self) -> "Gateway":
        return self.start() if not self._started else self

    def __exit__(self, *exc) -> None:
        self.close()

    def serve_forever(self) -> None:
        """Block until a wire ``SHUTDOWN`` op arrives, then close."""
        try:
            self.shutdown_requested.wait()
        finally:
            self.close()

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _spawn_worker(self, index: int) -> _WorkerHandle:
        """Spawn one worker and replicate current state to it (sync).

        Called from :meth:`start` and from respawn threads — never from
        the event loop.  The handshake (ready ack, registration
        replication, memo seeding) happens directly on the pipe, before
        the reader thread exists, so no future bookkeeping is needed.
        """
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            # untrack_shm=False: multiprocessing children inherit the
            # gateway's resource tracker (spawn passes its fd through
            # preparation data), so attach-side unregistering would
            # strip the gateway's own registrations; untracking is for
            # *foreign* processes attaching by name
            args=(index, child, self._ring.name, self.slot_bytes,
                  self.slots, self._service_kwargs, False),
            daemon=True, name=f"{self.obs_label}-worker{index}")
        process.start()
        child.close()
        if not parent.poll(_SPAWN_TIMEOUT):
            process.terminate()
            raise GatewayError(f"worker {index} did not report ready "
                               f"within {_SPAWN_TIMEOUT}s")
        msg = parent.recv()
        if msg[0] == "fail":
            process.join(timeout=5.0)
            raise GatewayError(
                f"worker {index} failed to start: {msg[1]}: {msg[2]}")
        _, _, pid = msg
        wh = _WorkerHandle(index, process, parent, pid)
        with self._state_lock:
            registrations = sorted(self._matrices.items())
            memo = dict(self._memo)
        for gid, (matrix, name, _tenant) in registrations:
            segment, meta = self._stage_registration(gid, matrix, name)
            try:
                parent.send(("reg", wh.seq, segment.name, meta))
                wh.seq += 1
                reply = parent.recv()
            finally:
                segment.close()
                segment.unlink()
            if reply[0] != "ok":
                process.terminate()
                raise GatewayError(
                    f"worker {index} failed to replay registration "
                    f"{gid}: {reply[2]}: {reply[3]}")
        if memo:
            parent.send(("seed", memo))
        return wh

    def _stage_registration(self, gid: int, matrix: CsrMatrix,
                            name: str) -> tuple[shared_memory.SharedMemory,
                                                dict]:
        """Write one matrix's CSR arrays into a fresh shm segment."""
        blobs = (matrix.row_ptr.tobytes(), matrix.col_indices.tobytes(),
                 matrix.vals.tobytes())
        segment = shared_memory.SharedMemory(
            create=True, size=sum(len(b) for b in blobs))
        offset = 0
        for blob in blobs:
            segment.buf[offset:offset + len(blob)] = blob
            offset += len(blob)
        meta = {"gid": gid, "nrows": matrix.nrows, "ncols": matrix.ncols,
                "nnz": matrix.nnz, "name": name,
                "fingerprint": matrix.fingerprint()}
        return segment, meta

    def _start_reader(self, wh: _WorkerHandle) -> None:
        wh.reader = threading.Thread(
            target=self._reader_main, args=(wh,), daemon=True,
            name=f"{self.obs_label}-reader{wh.index}")
        wh.reader.start()

    def _reader_main(self, wh: _WorkerHandle) -> None:
        """Pump one worker's pipe into the event loop; EOF means death."""
        while True:
            try:
                msg = wh.conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._on_worker_msg, wh, msg)
            except RuntimeError:               # loop closed mid-shutdown
                return
        try:
            self._loop.call_soon_threadsafe(self._on_worker_death, wh)
        except RuntimeError:                   # pragma: no cover
            pass

    def _on_worker_msg(self, wh: _WorkerHandle, msg) -> None:
        kind = msg[0]
        if kind == "ok":
            wh.started.pop(msg[1], None)
            self._breaker_success(wh.index)
            future = wh.pending.pop(msg[1], None)
            if future is not None and not future.done():
                future.set_result(msg[2])
        elif kind == "err":
            # a typed error is still a *live* worker: breaker success
            wh.started.pop(msg[1], None)
            self._breaker_success(wh.index)
            future = wh.pending.pop(msg[1], None)
            if future is not None and not future.done():
                future.set_exception(_remote_exception(msg[2], msg[3]))

    def _on_worker_death(self, wh: _WorkerHandle) -> None:
        """Loop-thread handler for a worker pipe reaching EOF.

        Deliberate shutdowns arrive with ``alive`` already False.  For a
        crash: the process is joined *first* — only a provably dead
        worker's in-flight slots may be recycled — then every pending
        request fails with :class:`WorkerCrashed` (which is what lets
        the awaiting tasks release those slots), and a replacement is
        spawned off-loop.
        """
        if not wh.alive or self._closing:
            return
        wh.alive = False
        self._c_crashes.inc()
        self._breaker_failure(wh.index)
        wh.process.join(timeout=10.0)
        if wh.process.is_alive():              # pragma: no cover - EOF but
            wh.process.terminate()             # process wedged
            wh.process.join(timeout=5.0)
        pending = list(wh.pending.values())
        wh.pending.clear()
        wh.started.clear()
        crash = WorkerCrashed(
            f"worker {wh.index} (pid {wh.pid}) died with "
            f"{len(pending)} requests in flight")
        for future in pending:
            if not future.done():
                future.set_exception(crash)
        threading.Thread(target=self._respawn, args=(wh.index,),
                         daemon=True,
                         name=f"{self.obs_label}-respawn{wh.index}").start()

    def _respawn(self, index: int) -> None:
        try:
            replacement = self._spawn_worker(index)
        except BaseException:
            # the pool keeps serving on the surviving workers; a second
            # death with no survivors surfaces as WorkerCrashed upstream
            return

        def install() -> None:
            if self._closing:
                replacement.alive = False
                try:
                    replacement.conn.send(("shutdown",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
                return
            self._workers[index] = replacement
            self._start_reader(replacement)

        try:
            self._loop.call_soon_threadsafe(install)
        except RuntimeError:                   # pragma: no cover
            replacement.process.terminate()

    # ------------------------------------------------------------------
    # Supervision: hang watchdog + circuit breakers
    # ------------------------------------------------------------------
    def _watchdog_main(self) -> None:
        """Ticks the loop-thread hang check a few times per threshold."""
        interval = max(0.01, self.hang_threshold / 4.0)
        while not self._watchdog_stop.wait(interval):
            if self._closing or self._loop is None:
                return
            try:
                self._loop.call_soon_threadsafe(self._check_hangs)
            except RuntimeError:               # pragma: no cover - closing
                return

    def _check_hangs(self) -> None:
        """Loop thread: declare workers with over-age requests hung.

        Runs on the loop thread so ``started``/``pending`` are only
        ever touched where every other mutation happens — the watchdog
        thread itself never reads worker state.
        """
        if self._closing:
            return
        now = time.monotonic()
        for wh in list(self._workers):
            if wh.alive and wh.started:
                age = now - min(wh.started.values())
                if age >= self.hang_threshold:
                    self._declare_hung(wh, age)

    def _declare_hung(self, wh: _WorkerHandle, age: float) -> None:
        """Kill one hung worker; its requests fail fast, typed.

        ``alive`` flips first so the reader thread's pipe-EOF handler
        (which fires when the kill closes the pipe) early-returns —
        this path owns failing the pending futures, reaping and
        respawning.
        """
        wh.alive = False
        self._c_hangs.inc()
        self._breaker_failure(wh.index)
        pending = list(wh.pending.values())
        wh.pending.clear()
        wh.started.clear()
        hung = WorkerHung(
            f"worker {wh.index} (pid {wh.pid}) exceeded the "
            f"{self.hang_threshold * 1e3:.0f}ms hang threshold (oldest "
            f"in-flight request {age * 1e3:.0f}ms old); killed")
        for future in pending:
            if not future.done():
                future.set_exception(hung)
        try:
            wh.process.kill()
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            pass
        threading.Thread(target=self._reap_and_respawn, args=(wh,),
                         daemon=True,
                         name=f"{self.obs_label}-reap{wh.index}").start()

    def _reap_and_respawn(self, wh: _WorkerHandle) -> None:
        """Off-loop: join the killed process, then the usual respawn."""
        wh.process.join(timeout=10.0)
        try:
            wh.conn.close()
        except OSError:                        # pragma: no cover
            pass
        self._respawn(wh.index)

    def _breaker_success(self, index: int) -> None:
        breaker = self._breakers[index]
        breaker.record_success()
        self._g_breaker[index].set(breaker.state)

    def _breaker_failure(self, index: int) -> None:
        breaker = self._breakers[index]
        breaker.record_failure(time.monotonic())
        self._g_breaker[index].set(breaker.state)

    def _pick_worker(self) -> _WorkerHandle:
        """Round-robin over live, breaker-admitted workers (loop thread).

        Dead workers are skipped as before; a live worker whose breaker
        is open (or half-open with its probe already in flight) is
        passed over.  All live workers refused means the pool is
        breaker-limited: typed ``GatewayOverloaded(reason="breaker")``
        rather than silently queueing into known-bad processes.
        """
        count = len(self._workers)
        now = time.monotonic()
        alive = 0
        for _ in range(count):
            wh = self._workers[self._rr % count]
            self._rr += 1
            if not wh.alive:
                continue
            alive += 1
            breaker = self._breakers[wh.index]
            allowed = breaker.allow(now)
            self._g_breaker[wh.index].set(breaker.state)
            if allowed:
                return wh
        if alive:
            raise GatewayOverloaded(
                f"all {alive} live workers' circuit breakers are open",
                reason="breaker")
        raise WorkerCrashed("no live workers to dispatch to")

    def _post(self, wh: _WorkerHandle, kind: str, *rest) -> asyncio.Future:
        """Send one control message; the future resolves on its reply."""
        msg_id = wh.seq
        wh.seq += 1
        future = self._loop.create_future()
        wh.pending[msg_id] = future
        wh.started[msg_id] = time.monotonic()
        try:
            wh.conn.send((kind, msg_id) + rest)
        except (OSError, ValueError):
            wh.pending.pop(msg_id, None)
            wh.started.pop(msg_id, None)
            future.set_exception(WorkerCrashed(
                f"worker {wh.index} pipe closed mid-send"))
        return future

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:                    # pragma: no cover - e.g. UDS
                pass
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        me = asyncio.current_task()
        if me is not None:
            self._conns.add(me)
        try:
            while True:
                try:
                    header = await reader.readexactly(proto.HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    break
                try:
                    op, length, request_id, deadline_ms = proto.parse_header(
                        header, self.max_frame)
                except ProtocolError as error:
                    # framing is broken (or the frame is refused before
                    # buffering): answer with the typed error, then drop
                    # the connection — stream sync is unrecoverable
                    reason = ("frame" if isinstance(error, FrameTooLarge)
                              else "protocol")
                    self._c_rejects[reason].inc()
                    await self._write_reply(
                        writer, write_lock, 0,
                        proto.encode_reply_error(error))
                    break
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    break
                counter = self._c_requests.get(op)
                if counter is not None:
                    counter.inc()
                # the wire carries a *relative* budget; anchor it to
                # this host's monotonic clock the moment the header is
                # in — queue wait, dispatch and worker time all burn
                # the same absolute deadline from here on
                deadline = (time.monotonic() + deadline_ms / 1e3
                            if deadline_ms else None)
                task = asyncio.ensure_future(self._serve_request(
                    op, payload, request_id, writer, write_lock, deadline))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            # _stop_server cancels idle connections at shutdown; finish
            # normally so asyncio's stream machinery sees a clean task
            pass
        finally:
            if me is not None:
                self._conns.discard(me)
            # never cancel in-flight tasks: their finally blocks own the
            # slot/accounting lifecycle and must run to completion
            if tasks:
                await asyncio.shield(
                    asyncio.gather(*tasks, return_exceptions=True))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass    # RuntimeError: loop tore down mid-handler

    async def _write_reply(self, writer, write_lock, request_id: int,
                           reply_payload: bytes) -> None:
        rule = faults.check("reply.delay", request=request_id)
        if rule is not None and rule.delay_ms:
            await asyncio.sleep(rule.delay_ms / 1e3)
        async with write_lock:
            with _span("gateway.reply", request=request_id,
                       bytes=len(reply_payload)):
                try:
                    writer.write(proto.encode_frame(
                        proto.OP_REPLY, reply_payload, request_id))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass                        # client went away; the
                                                # request already ran

    async def _serve_request(self, op: int, payload: bytes,
                             request_id: int, writer, write_lock,
                             deadline: float | None = None) -> None:
        t0 = time.perf_counter()
        try:
            if op == proto.OP_MULTIPLY:
                body = await self._op_multiply(payload, deadline)
            elif op == proto.OP_PROFILE:
                body = await self._op_profile(payload, deadline)
            elif op == proto.OP_REGISTER:
                body = await self._op_register(payload)
            elif op == proto.OP_UNREGISTER:
                body = await self._op_unregister(payload)
            elif op == proto.OP_STATS:
                body = await self._op_stats()
            elif op == proto.OP_PING:
                body = proto.encode_json_op(ok=True, gateway=self.obs_label,
                                            workers=len(self._workers))
            elif op == proto.OP_SHUTDOWN:
                proto.decode_json_op(payload)
                self.shutdown_requested.set()
                body = proto.encode_json_op(ok=True)
            else:                              # pragma: no cover - header
                raise ProtocolError(f"unknown op 0x{op:02x}")  # validated
            reply_payload = proto.encode_reply_ok(body)
        except DeadlineExceeded as error:
            self._c_deadline.inc()
            reply_payload = proto.encode_reply_error(error)
        except GatewayOverloaded as error:
            self._c_rejects.get(error.reason,
                                self._c_rejects["inflight"]).inc()
            reply_payload = proto.encode_reply_error(error)
        except BaseException as error:
            reply_payload = proto.encode_reply_error(error)
        histogram = self._h_latency.get(proto.OP_NAMES.get(op, ""))
        if histogram is not None:
            histogram.observe(time.perf_counter() - t0)
        await self._write_reply(writer, write_lock, request_id,
                                reply_payload)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _admit(self, grid: int, op_name: str, tenant: str,
               need_bytes: int) -> int:
        """Admission control (loop thread): returns an acquired slot.

        Every rejection is typed and counted; nothing is ever queued.
        """
        with _span("gateway.admit", request=grid, op=op_name,
                   tenant=tenant) as sp:
            if need_bytes > self.slot_bytes:
                raise FrameTooLarge(
                    f"request needs {need_bytes} operand/result bytes, "
                    f"slot capacity is {self.slot_bytes} (raise "
                    f"slot_bytes)")
            if self._inflight >= self.max_inflight:
                raise GatewayOverloaded(
                    f"{self._inflight} requests in flight (cap "
                    f"{self.max_inflight})", reason="inflight")
            if self.tenant_quota is not None:
                used = self._tenants.get(tenant, 0)
                if used >= self.tenant_quota:
                    raise GatewayOverloaded(
                        f"tenant {tenant!r} has {used} requests in "
                        f"flight (quota {self.tenant_quota})",
                        reason="tenant")
            slot = (None if faults.check("shm.exhaust", request=grid)
                    else self._ring.acquire())
            if slot is None:
                raise GatewayOverloaded(
                    f"all {self.slots} shared-memory slots in flight",
                    reason="shm")
            self._inflight += 1
            self._tenants[tenant] = self._tenants.get(tenant, 0) + 1
            self._g_inflight.set(self._inflight)
            sp.annotate(slot=slot, inflight=self._inflight)
            return slot

    def _release(self, slot: int, tenant: str) -> None:
        self._inflight -= 1
        remaining = self._tenants.get(tenant, 1) - 1
        if remaining <= 0:
            self._tenants.pop(tenant, None)
        else:
            self._tenants[tenant] = remaining
        self._g_inflight.set(self._inflight)
        self._ring.release(slot)
        if self._inflight == 0:
            with self._drain:               # wake a close() drain wait
                self._drain.notify_all()

    def _lookup_matrix(self, handle: int) -> CsrMatrix:
        with self._state_lock:
            entry = self._matrices.get(handle)
        if entry is None:
            raise ShapeError(f"unknown handle {handle}; register the "
                             f"matrix through this gateway first")
        return entry[0]

    @staticmethod
    def _check_deadline(deadline: float | None, stage: str) -> None:
        """Reject with typed ``DeadlineExceeded`` past the budget."""
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(f"deadline expired {stage}")

    async def _op_multiply(self, payload: bytes,
                           deadline: float | None = None) -> bytes:
        self._check_deadline(deadline, "at gateway admission")
        handle, tenant, rows, cols, operand = proto.decode_multiply(payload)
        matrix = self._lookup_matrix(handle)
        grid = next(self._next_request_id)
        need = 4 * max(rows, matrix.nrows) * cols
        slot = self._admit(grid, "multiply", tenant, need)
        try:
            with _span("gateway.dispatch", request=grid, op="multiply",
                       handle=handle, rows=rows, d=cols) as sp:
                self._ring.write(slot, operand)
                wh = self._pick_worker()
                sp.annotate(worker=wh.index)
                future = self._post(wh, "mul", grid, slot, handle, rows,
                                    cols, deadline)
            reply = await future
            self._share_memo(reply.get("memo"), wh)
            out = self._ring.view(slot, 4 * reply["rows"] * reply["cols"])
            try:
                return proto.encode_multiply_reply(
                    None, reply["rows"], reply["cols"], data=out)
            finally:
                out.release()
        finally:
            self._release(slot, tenant)

    async def _op_profile(self, payload: bytes,
                          deadline: float | None = None) -> bytes:
        self._check_deadline(deadline, "at gateway admission")
        meta, operand = proto.decode_profile(payload)
        handle = int(meta["handle"])
        tenant = str(meta.get("tenant", "default"))
        rows, cols = int(meta["rows"]), int(meta["cols"])
        matrix = self._lookup_matrix(handle)
        grid = next(self._next_request_id)
        need = 4 * max(rows, matrix.nrows) * cols
        slot = self._admit(grid, "profile", tenant, need)
        try:
            with _span("gateway.dispatch", request=grid, op="profile",
                       handle=handle, rows=rows, d=cols) as sp:
                self._ring.write(slot, operand)
                wh = self._pick_worker()
                sp.annotate(worker=wh.index)
                future = self._post(wh, "prof", grid, slot, handle, rows,
                                    cols, meta.get("backend"), deadline)
            reply = await future
            self._share_memo(reply.get("memo"), wh)
            out = self._ring.view(slot, 4 * reply["rows"] * reply["cols"])
            try:
                return proto.encode_profile_reply(
                    {"rows": reply["rows"], "cols": reply["cols"],
                     **reply["meta"]}, out)
            finally:
                out.release()
        finally:
            self._release(slot, tenant)

    async def _op_register(self, payload: bytes) -> bytes:
        meta, wire_matrix = proto.decode_register(payload)
        # own the arrays: the payload buffer dies with this request, and
        # the matrix must outlive it (crash respawns re-register from it)
        matrix = CsrMatrix(
            wire_matrix.nrows, wire_matrix.ncols,
            wire_matrix.row_ptr.copy(), wire_matrix.col_indices.copy(),
            wire_matrix.vals.copy(), name=wire_matrix.name)
        expected = meta.get("fingerprint")
        if expected and matrix.fingerprint() != expected:
            raise ProtocolError(
                "registration fingerprint mismatch at the gateway: "
                "operands were corrupted in transport")
        name = str(meta.get("name", ""))
        tenant = str(meta.get("tenant", "default"))
        gid = next(self._next_gid)
        segment, wmeta = self._stage_registration(gid, matrix, name)
        live = [wh for wh in self._workers if wh.alive]
        if not live:
            segment.close()
            segment.unlink()
            raise WorkerCrashed("no live workers to register with")
        futures = [self._post(wh, "reg", segment.name, wmeta)
                   for wh in live]
        results = await asyncio.gather(*futures, return_exceptions=True)
        segment.close()
        segment.unlink()
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            # roll back the workers that did accept it, then surface the
            # first failure; nothing is recorded, so a retry is clean
            for wh, result in zip(live, results):
                if not isinstance(result, BaseException) and wh.alive:
                    self._post(wh, "unreg", gid)
            raise failures[0]
        with self._state_lock:
            self._matrices[gid] = (matrix, name, tenant)
            self._g_handles.set(len(self._matrices))
        return proto.encode_json_op(handle=gid, name=name,
                                    fingerprint=matrix.fingerprint(),
                                    workers=len(live))

    async def _op_unregister(self, payload: bytes) -> bytes:
        meta = proto.decode_json_op(payload)
        gid = int(meta["handle"])
        with self._state_lock:
            if gid not in self._matrices:
                raise ShapeError(f"unknown handle {gid}")
            del self._matrices[gid]
            self._g_handles.set(len(self._matrices))
        futures = [self._post(wh, "unreg", gid)
                   for wh in self._workers if wh.alive]
        await asyncio.gather(*futures, return_exceptions=True)
        return proto.encode_json_op(handle=gid)

    async def _op_stats(self) -> bytes:
        """Prometheus text: gateway series + every worker's snapshot."""
        self._g_shm.set(self._ring.in_use())
        snapshots = await self._gather_snapshots()
        samples = list(get_registry().snapshot().samples)
        for index, _pid, snapshot in snapshots:
            samples.extend(snapshot.metric_samples(
                service=self.obs_label, worker=str(index)))
        text = prometheus_text(MetricsSnapshot(samples=tuple(samples)))
        return text.encode("utf-8")

    async def _gather_snapshots(self) -> list:
        live = [wh for wh in self._workers if wh.alive]
        futures = [self._post(wh, "stats") for wh in live]
        results = await asyncio.gather(*futures, return_exceptions=True)
        out = []
        for wh, result in zip(live, results):
            if not isinstance(result, BaseException):
                out.append((wh.index, result["pid"], result["snapshot"]))
        return out

    def _share_memo(self, entries, source: _WorkerHandle) -> None:
        """Merge a worker's fresh autotune verdicts; broadcast the news."""
        if not entries:
            return
        with self._state_lock:
            fresh = {key: choice for key, choice in entries.items()
                     if key not in self._memo}
            self._memo.update(fresh)
        if not fresh:
            return
        for wh in self._workers:
            if wh.alive and wh is not source:
                try:
                    wh.conn.send(("seed", fresh))
                except (OSError, ValueError):  # pragma: no cover - dying
                    pass                       # worker; respawn reseeds

    # ------------------------------------------------------------------
    # Synchronous conveniences (tests, benches, the CLI)
    # ------------------------------------------------------------------
    def _run(self, coro, timeout: float = 60.0):
        if self._loop is None:
            raise GatewayError("gateway is not started")
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop).result(timeout=timeout)

    @property
    def inflight(self) -> int:
        """Admitted-but-unanswered requests right now."""
        return self._inflight

    def worker_pids(self) -> list[int]:
        """Live worker process ids (respawns change these)."""
        return [wh.pid for wh in self._workers if wh.alive]

    def worker_snapshots(self) -> list:
        """``(index, pid, ServiceSnapshot)`` per live worker."""
        return self._run(self._gather_snapshots())

    def stats_text(self) -> str:
        """The STATS op's Prometheus text, without a socket."""
        return self._run(self._op_stats()).decode("utf-8")

    def registered_handles(self) -> dict[int, str]:
        """Gateway handle id -> registered name."""
        with self._state_lock:
            return {gid: name
                    for gid, (_m, name, _t) in self._matrices.items()}

    def autotune_memo_size(self) -> int:
        with self._state_lock:
            return len(self._memo)

    def shm_stats(self):
        """Live :class:`~repro.serve.gateway.shm.ShmRingStats`.

        The leak check chaos runs gate on: ``in_use`` must return to 0
        once traffic drains, whatever faults fired in between.
        """
        return self._ring.stats()

    def breaker_states(self) -> list[int]:
        """Per-worker breaker state (0 closed, 1 open, 2 half-open)."""
        return [breaker.state for breaker in self._breakers]

    def set_fault_plan(self, plan: faults.FaultPlan | None) -> None:
        """Arm (``None``: disarm) a fault plan, fleet-wide.

        Installs the plan in the gateway process and broadcasts it to
        every live worker over the control pipes (serialized through
        the event loop, so the send never races a dispatch).  A worker
        respawned *afterwards* starts with no plan — deliberate: a
        one-shot ``worker.crash`` rule must not crash-loop its own
        replacements.  Export :data:`repro.faults.ENV_VAR` instead to
        arm every worker incarnation for a process's whole life.
        """
        if plan is None:
            faults.clear_plan()
            payload = None
        else:
            faults.install_plan(plan)
            payload = plan.to_dict()
        self._fault_plan = plan
        if self._started and not self._closing and self._loop is not None:
            self._run(self._broadcast_fault(payload), timeout=10.0)

    async def _broadcast_fault(self, payload: dict | None) -> None:
        for wh in self._workers:
            if wh.alive:
                try:
                    wh.conn.send(("fault", payload))
                except (OSError, ValueError):  # pragma: no cover - dying
                    pass

    def connect(self, **kwargs):
        """A :class:`~repro.serve.gateway.client.GatewayClient` to self.

        The client inherits the gateway config's resilience defaults
        (``max_retries``, ``deadline_ms``); explicit keyword arguments
        win.
        """
        from repro.serve.gateway.client import GatewayClient

        kwargs.setdefault("max_retries", self.config.max_retries)
        if self.config.deadline_ms is not None:
            kwargs.setdefault("deadline_ms", self.config.deadline_ms)
        return GatewayClient(self.host, self.port, **kwargs)


def _remote_exception(name: str, message: str) -> BaseException:
    """A worker-reported failure as its local typed equivalent."""
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return GatewayError(f"worker {name}: {message}")
