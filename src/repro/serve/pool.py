"""Size-bucketed free-list of float32 scratch buffers.

The batched serving fast path gathers the dense operands of a whole
request batch into one stacked buffer before the single coalesced SpMM.
Allocating that buffer per batch would put a fresh ``O(n * d * k)``
numpy allocation (and the page faults behind it) on the hot path;
:class:`WorkspacePool` keeps released buffers on power-of-two free
lists instead, so steady-state traffic recycles the same few arenas and
the allocator drops out of the request path entirely.

Buffers are handed out *flat* (1-D float32); callers slice and reshape
views over them — zero-copy by construction — and must hand the flat
buffer back with :meth:`WorkspacePool.release` once the batch result
has been scattered.  Result buffers escape to callers as views and are
therefore never pooled.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = ["PoolStats", "WorkspacePool"]

#: smallest bucket handed out, in float32 elements (256 B): keeps tiny
#: requests from fragmenting the free lists into dozens of classes
_MIN_BUCKET = 64

#: default retained-bytes cap: far above any realistic stacked-operand
#: working set at bench scale, far below anything that would matter to
#: a host serving real traffic
DEFAULT_POOL_BYTES = 64 << 20


@dataclass(frozen=True)
class PoolStats:
    """A point-in-time snapshot of one pool's counters."""

    allocations: int
    reuses: int
    releases: int
    dropped: int
    retained_bytes: int
    max_bytes: int | None

    @property
    def requests(self) -> int:
        return self.allocations + self.reuses

    @property
    def reuse_rate(self) -> float:
        return self.reuses / self.requests if self.requests else 0.0

    def render(self) -> str:
        cap = (f"{self.max_bytes:,}" if self.max_bytes is not None
               else "unbounded")
        return (f"workspace pool: {self.reuses}/{self.requests} reuses "
                f"({100.0 * self.reuse_rate:.1f}%), "
                f"{self.retained_bytes:,} B retained (cap {cap}), "
                f"{self.dropped} dropped")


class WorkspacePool:
    """Thread-safe free-list of flat float32 buffers, bucketed by size.

    :meth:`acquire` returns a 1-D float32 array of at least ``n``
    elements (the next power-of-two bucket), recycled from the free
    list when one is available.  :meth:`release` returns a buffer to
    its bucket; buffers beyond ``max_bytes`` of total retained capacity
    are dropped to the garbage collector instead, so a burst of huge
    batches cannot pin memory forever.

    Contents are *not* zeroed between uses — callers overwrite the
    region they slice (the batched gather writes every element it
    reads).
    """

    def __init__(self, max_bytes: int | None = DEFAULT_POOL_BYTES) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(
                f"max_bytes must be non-negative or None, got {max_bytes}")
        self.max_bytes = max_bytes
        self._buckets: dict[int, list[np.ndarray]] = {}
        self._retained = 0          # float32 elements across all buckets
        self._allocations = 0
        self._reuses = 0
        self._releases = 0
        self._dropped = 0
        self._lock = threading.Lock()

    @staticmethod
    def bucket_size(n: int) -> int:
        """The free-list class serving an ``n``-element request."""
        if n <= _MIN_BUCKET:
            return _MIN_BUCKET
        return 1 << (n - 1).bit_length()

    # ------------------------------------------------------------------
    def acquire(self, n: int) -> np.ndarray:
        """A flat float32 buffer of at least ``n`` elements."""
        if n <= 0:
            raise ValueError(f"buffer size must be positive, got {n}")
        bucket = self.bucket_size(n)
        with self._lock:
            free = self._buckets.get(bucket)
            if free:
                self._reuses += 1
                self._retained -= bucket
                return free.pop()
            self._allocations += 1
        return np.empty(bucket, dtype=np.float32)

    def release(self, buffer: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`acquire` to its bucket."""
        bucket = buffer.size
        if bucket != self.bucket_size(bucket):
            raise ValueError(
                f"buffer of {bucket} elements is not a pool bucket; "
                f"release the flat array acquire() returned, not a view")
        with self._lock:
            self._releases += 1
            retained_bytes = 4 * (self._retained + bucket)
            if self.max_bytes is not None and retained_bytes > self.max_bytes:
                self._dropped += 1
                return
            self._retained += bucket
            self._buckets.setdefault(bucket, []).append(buffer)

    def clear(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._retained = 0

    # ------------------------------------------------------------------
    @property
    def retained_bytes(self) -> int:
        with self._lock:
            return 4 * self._retained

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                allocations=self._allocations, reuses=self._reuses,
                releases=self._releases, dropped=self._dropped,
                retained_bytes=4 * self._retained, max_bytes=self.max_bytes,
            )
