"""Tiered execution for the serving subsystem.

The paper's trade-off (Table IV) prices specialization per run; PRs
1-9 amortized it across steady-state traffic, but the *first* request
for a new handle still paid autotune + codegen inline — the cold-start
latency a gateway deadline faithfully turns into an overrun.  This
module holds the policy layer :class:`repro.serve.SpmmService` uses to
remove that cost the way a tiered VM does (interpret first, compile
hot paths):

* **template tier** — a new ``(handle, d)`` binds the system's cached
  address-free template (:meth:`repro.api.System.tier_template`): zero
  per-matrix codegen, so the first request costs partitioning plus one
  SpMM;
* **promotion** — per-``(handle, d)`` traffic counters cross a
  configured threshold (``promote_after``; ``tier_mode="eager"``
  promotes on the first request) and a bounded background
  :class:`PromotionExecutor` runs autotune + specialization off the
  request path, then hot-swaps the workspace's plan under the
  service's refcounted kernel-identity guard;
* **degradation** — a failed promotion leaves the workspace serving
  the template tier forever, with the failure's exception type counted
  in :class:`TierStats` (the typed reason a report names).

Both tiers compute bit-identical results: the fast path executes
``multiply_partitioned`` over the plan's row ranges, which accumulates
each output element in ascending non-zero order regardless of the
partitioning, and a promoted plan only changes the partitioning.

The tier state machine per ``(handle, d)`` workspace::

    template ──(traffic >= promote_after)──> promoting ──ok──> promoted
        ^                                        │
        └────────(stale: evicted/unregistered)───┤
                                                 └──error──> failed

``"inline"`` is the pseudo-tier of an untiered service (tier_mode
``"off"``, or a system with no template): every request serves the
specialized plan, exactly the pre-tiering behavior.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.api.config import TIER_MODES

__all__ = [
    "PROMOTION_OUTCOMES",
    "PromotionExecutor",
    "TIER_FAILED",
    "TIER_INLINE",
    "TIER_MODES",
    "TIER_PROMOTED",
    "TIER_PROMOTING",
    "TIER_TEMPLATE",
    "TierSnapshot",
    "TierStats",
]

#: workspace serves the shared address-free template (cold tier)
TIER_TEMPLATE = "template"
#: template tier, with a promotion job submitted and not yet landed
TIER_PROMOTING = "promoting"
#: workspace serves its specialized (autotuned/JIT) plan (hot tier)
TIER_PROMOTED = "promoted"
#: promotion failed; the workspace serves the template tier for good
TIER_FAILED = "failed"
#: untiered service: every workspace is specialized from the start
TIER_INLINE = "inline"

#: terminal accounting buckets for one promotion job
PROMOTION_OUTCOMES = ("promoted", "failed", "stale")


@dataclass(frozen=True)
class TierSnapshot:
    """Point-in-time tiering state, riding :class:`ServiceSnapshot`.

    Picklable (it crosses the gateway worker pipe inside the stats
    reply), and the single source for the tier line of the human
    report and the ``serve_tier_*`` metric series.
    """

    mode: str
    template: str
    promote_after: int
    pending: int
    outcomes: dict[str, int] = field(default_factory=dict)
    failure_reasons: dict[str, int] = field(default_factory=dict)
    codegen_seconds: float = 0.0

    def render(self) -> str:
        parts = [
            f"tier: mode={self.mode} template={self.template} "
            f"promote_after={self.promote_after}",
            "promotions " + " ".join(
                f"{name}={self.outcomes.get(name, 0)}"
                for name in PROMOTION_OUTCOMES)
            + f" pending={self.pending}",
            f"background codegen {1e3 * self.codegen_seconds:.3f}ms",
        ]
        if self.failure_reasons:
            parts.append("failures " + " ".join(
                f"{reason}={count}" for reason, count
                in sorted(self.failure_reasons.items())))
        return ", ".join(parts)


class TierStats:
    """Thread-safe promotion accounting for one service.

    Counters are mutated by request threads (job submission) and
    promotion workers (job completion); :meth:`snapshot` freezes a
    mutually consistent copy under the same lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending = 0
        self._outcomes: dict[str, int] = {}
        self._failure_reasons: dict[str, int] = {}
        self._codegen_seconds = 0.0

    def begin(self) -> None:
        """Count one promotion job as submitted and in flight."""
        with self._lock:
            self._pending += 1

    def finish(self, outcome: str, codegen_seconds: float = 0.0,
               reason: str | None = None) -> None:
        """Settle one in-flight job into its terminal bucket.

        ``reason`` is the typed failure cause (exception class name)
        counted for ``outcome="failed"`` jobs.
        """
        if outcome not in PROMOTION_OUTCOMES:
            raise ValueError(f"unknown promotion outcome {outcome!r}")
        with self._lock:
            self._pending -= 1
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
            self._codegen_seconds += codegen_seconds
            if reason:
                self._failure_reasons[reason] = (
                    self._failure_reasons.get(reason, 0) + 1)

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def outcome(self, name: str) -> int:
        with self._lock:
            return self._outcomes.get(name, 0)

    def snapshot(self, *, mode: str, template: str,
                 promote_after: int) -> TierSnapshot:
        with self._lock:
            return TierSnapshot(
                mode=mode, template=template,
                promote_after=promote_after, pending=self._pending,
                outcomes=dict(self._outcomes),
                failure_reasons=dict(self._failure_reasons),
                codegen_seconds=self._codegen_seconds,
            )


class PromotionExecutor:
    """A bounded pool of daemon threads running promotion jobs.

    Deliberately minimal (submit / drain / close): jobs are opaque
    callables that must not raise — the service's promotion routine
    owns its own error accounting, and a job that escapes anyway is
    swallowed so one bad promotion can never kill the pool.
    """

    def __init__(self, workers: int = 1, name: str = "tier-promote") -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self._queue: queue.Queue = queue.Queue()
        self._cv = threading.Condition()
        self._inflight = 0
        self._closed = False
        self._threads = [
            threading.Thread(target=self._run, daemon=True,
                             name=f"{name}-{index}")
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn) -> bool:
        """Queue one job; False (job not queued) after :meth:`close`."""
        with self._cv:
            if self._closed:
                return False
            self._inflight += 1
        self._queue.put(fn)
        return True

    def _run(self) -> None:
        while True:
            fn = self._queue.get()
            if fn is None:                  # close() sentinel
                return
            try:
                fn()
            except BaseException:
                pass                        # job owns its accounting
            finally:
                with self._cv:
                    self._inflight -= 1
                    self._cv.notify_all()

    @property
    def inflight(self) -> int:
        """Jobs submitted and not yet finished (queued or running)."""
        with self._cv:
            return self._inflight

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every submitted job has finished.

        Returns False if ``timeout`` seconds elapsed first.  Used by
        tests (and service close) to sequence assertions after the
        background work they provoked.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._cv:
            while self._inflight:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._cv.wait(remaining)
            return True

    def close(self, timeout: float | None = 5.0) -> None:
        """Stop accepting jobs and join the workers (idempotent).

        Jobs already queued still run before the workers exit — a
        promotion in flight at service close settles through the
        service's stale-commit path rather than vanishing mid-swap.
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
