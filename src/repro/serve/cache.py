"""Thread-safe LRU cache for compiled SpMM kernels.

The paper's Table IV measures JIT codegen as a fraction of one run's
total time; a serving workload pays that cost on *every* request unless
the compiled kernel is kept.  :class:`KernelCache` is the keep: a byte-
budgeted LRU map from a kernel's full identity — shape, ISA, dispatch
mode, batch size and the operand addresses baked into the instruction
stream — to the generated :class:`~repro.core.codegen.CodegenOutput`
(or an AOT :class:`~repro.aot.compiler.CompiledKernel`, whose identity
is address-free).

Because :class:`repro.machine.memory.Memory` lays segments out
deterministically, two runs over operands of identical shapes bake
identical addresses, so the address tuple doubles as a shape
fingerprint: ``run_jit`` on a same-shaped problem is a cache hit even
across independently mapped address spaces.

:class:`ShardedKernelCache` spreads one combined byte budget over
independent :class:`KernelCache` shards (keys routed by hash), so
register/evict traffic on one kernel identity never serializes lookups
of another behind a single cache lock — the serving subsystem's
default.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.codegen import CodegenOutput, JitKernelSpec

__all__ = ["CacheStats", "KernelCache", "KernelKey", "ShardedKernelCache",
           "aot_key", "jit_key", "mkl_key"]


@dataclass(frozen=True)
class KernelKey:
    """Full identity of one compiled kernel.

    Attributes:
        kind: ``"jit-dynamic"``, ``"jit-range"``, ``"aot"`` or ``"mkl"``.
        d: Dense column count baked into the code (0 for address-free
            AOT kernels, which read ``d`` from the param block).
        m: Sparse row count (baked into the dynamic kernel's bounds).
        isa: ISA level name.
        batch: Dynamic-dispatch batch size (baked immediate).
        addresses: The baked operand addresses ``(row_ptr, col, vals,
            x, y, next)`` — empty for address-free templates.
        variant: Free-form discriminator (AOT personality, MKL lanes).
    """

    kind: str
    d: int = 0
    m: int = 0
    isa: str = ""
    batch: int = 0
    addresses: tuple[int, ...] = ()
    variant: str = ""


def jit_key(spec: JitKernelSpec, dynamic: bool) -> KernelKey:
    """The cache identity of the JIT kernel ``spec`` would generate."""
    return KernelKey(
        kind="jit-dynamic" if dynamic else "jit-range",
        d=spec.d, m=spec.m, isa=spec.isa.name, batch=spec.batch,
        addresses=(spec.row_ptr_addr, spec.col_addr, spec.vals_addr,
                   spec.x_addr, spec.y_addr, spec.next_addr),
    )


def aot_key(personality: str, passes: str = "") -> KernelKey:
    """The cache identity of an AOT personality (address-free template).

    ``passes`` discriminates optimized builds by their
    :meth:`~repro.aot.passes.PassConfig.ident` string; the default
    (empty) keeps the historical fixed-function identity, so caches
    shared with older writers keep hitting.
    """
    variant = f"{personality}|{passes}" if passes else personality
    return KernelKey(kind="aot", variant=variant)


def mkl_key(lanes: int = 16) -> KernelKey:
    """The cache identity of the MKL-like kernel (address-free template,
    discriminated by its SIMD strip width)."""
    return KernelKey(kind="mkl", variant=f"lanes{lanes}")


@dataclass
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes: int
    budget_bytes: int | None

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def render(self) -> str:
        budget = (f"{self.budget_bytes:,}" if self.budget_bytes is not None
                  else "unbounded")
        return (f"kernel cache: {self.entries} entries, {self.bytes:,} B "
                f"(budget {budget}), {self.hits}/{self.requests} hits "
                f"({100.0 * self.hit_rate:.1f}%), "
                f"{self.evictions} evictions")


class _Entry:
    __slots__ = ("value", "nbytes")

    def __init__(self, value, nbytes: int) -> None:
        self.value = value
        self.nbytes = nbytes


class _TypedLookups:
    """Typed convenience wrappers shared by every kernel-cache flavor.

    The runner talks to these; they only assume the core
    ``get``/``put`` mapping interface.
    """

    def get_jit(self, spec: JitKernelSpec, dynamic: bool) -> CodegenOutput | None:
        """Look up the JIT kernel for ``spec``; None on a miss."""
        return self.get(jit_key(spec, dynamic))

    def put_jit(self, spec: JitKernelSpec, dynamic: bool,
                output: CodegenOutput) -> None:
        """Cache a freshly generated JIT kernel under its full identity."""
        self.put(jit_key(spec, dynamic), output, output.code_bytes)

    def get_aot(self, personality: str):
        """Look up a compiled AOT personality; None on a miss."""
        return self.get(aot_key(personality))

    def put_aot(self, personality: str, kernel) -> None:
        """Cache a compiled AOT kernel (sized by its encoded bytes)."""
        self.put(aot_key(personality), kernel, len(kernel.program.encode()))


class KernelCache(_TypedLookups):
    """Thread-safe LRU kernel cache with an optional byte budget.

    Values are opaque (``CodegenOutput`` for JIT entries, a
    ``CompiledKernel`` for AOT ones); eviction is strictly LRU over the
    caller-reported entry sizes.  The most recently inserted entry is
    never evicted by its own insertion, so a single kernel larger than
    the budget still serves (the budget bounds *retained* history, not
    admission).
    """

    def __init__(self, budget_bytes: int | None = None,
                 max_entries: int | None = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.budget_bytes = budget_bytes
        self.max_entries = max_entries
        self._entries: OrderedDict[KernelKey, _Entry] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def get(self, key: KernelKey):
        """Return the cached value for ``key`` (marking it MRU), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.value

    def peek(self, key: KernelKey):
        """Like :meth:`get`, but without touching the hit/miss counters.

        For double-checked lookups: the caller already recorded the
        outcome with a counted probe and only needs to re-check under
        its own lock.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            return entry.value

    def discard(self, key: KernelKey) -> bool:
        """Drop ``key`` if present (not counted as an eviction)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            return True

    def put(self, key: KernelKey, value, nbytes: int) -> None:
        """Insert ``value`` (of ``nbytes``) as MRU, evicting LRU entries."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(value, nbytes)
            self._bytes += nbytes
            self._evict()

    def _evict(self) -> None:
        def over() -> bool:
            if self.max_entries is not None and len(self._entries) > self.max_entries:
                return True
            return (self.budget_bytes is not None
                    and self._bytes > self.budget_bytes)

        while over() and len(self._entries) > 1:
            _, entry = self._entries.popitem(last=False)
            self._bytes -= entry.nbytes
            self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: KernelKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits, misses=self._misses,
                evictions=self._evictions, entries=len(self._entries),
                bytes=self._bytes, budget_bytes=self.budget_bytes,
            )


class ShardedKernelCache(_TypedLookups):
    """A kernel cache striped over independent per-shard LRUs.

    One combined ``budget_bytes`` is divided evenly across ``shards``
    :class:`KernelCache` instances; a key's shard is fixed by its hash,
    so every operation on one identity contends only with the identities
    that share its shard — register/evict traffic on one matrix never
    stalls lookups of another behind a global cache lock.

    The interface matches :class:`KernelCache` (the two are duck-type
    interchangeable anywhere a cache is accepted); :meth:`stats`
    aggregates the shard counters into one :class:`CacheStats`.
    Eviction stays LRU *within* each shard — a workload whose hot keys
    hash into one shard may evict earlier than a single LRU of the same
    total budget would, which is the usual sharding trade.
    """

    def __init__(self, budget_bytes: int | None = None,
                 shards: int = 8, max_entries: int | None = None) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if budget_bytes is not None and budget_bytes < shards:
            raise ValueError(
                f"budget_bytes={budget_bytes} cannot be divided over "
                f"{shards} shards; raise the budget or lower the shard "
                f"count")
        if max_entries is not None and max_entries < shards:
            raise ValueError(
                f"max_entries={max_entries} cannot be divided over "
                f"{shards} shards")
        self.budget_bytes = budget_bytes
        self.max_entries = max_entries
        self._shards = tuple(
            KernelCache(
                budget_bytes=self._portion(budget_bytes, index, shards),
                max_entries=self._portion(max_entries, index, shards),
            )
            for index in range(shards)
        )

    @staticmethod
    def _portion(total: int | None, index: int, shards: int) -> int | None:
        if total is None:
            return None
        return total // shards + (1 if index < total % shards else 0)

    @property
    def shards(self) -> tuple[KernelCache, ...]:
        """The underlying per-shard caches (read-only view)."""
        return self._shards

    def _shard(self, key: KernelKey) -> KernelCache:
        return self._shards[hash(key) % len(self._shards)]

    # -- core mapping interface (delegated per key) ---------------------
    def get(self, key: KernelKey):
        return self._shard(key).get(key)

    def peek(self, key: KernelKey):
        return self._shard(key).peek(key)

    def put(self, key: KernelKey, value, nbytes: int) -> None:
        self._shard(key).put(key, value, nbytes)

    def discard(self, key: KernelKey) -> bool:
        return self._shard(key).discard(key)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: KernelKey) -> bool:
        return key in self._shard(key)

    @property
    def nbytes(self) -> int:
        return sum(shard.nbytes for shard in self._shards)

    def stats(self) -> CacheStats:
        parts = [shard.stats() for shard in self._shards]
        return CacheStats(
            hits=sum(p.hits for p in parts),
            misses=sum(p.misses for p in parts),
            evictions=sum(p.evictions for p in parts),
            entries=sum(p.entries for p in parts),
            bytes=sum(p.bytes for p in parts),
            budget_bytes=self.budget_bytes,
        )
