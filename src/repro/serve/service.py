"""`SpmmService`: an SpMM request server that amortizes kernel setup.

The paper's trade-off (Table IV) is codegen time vs. specialized-kernel
speedup, measured for a single run.  A service turns that into a
streaming question: register a matrix once, pay autotuning
(:func:`repro.core.autotune.choose_split`) and code generation on the
first request, and serve every later request from the
:class:`~repro.serve.cache.KernelCache` — the amortized codegen
overhead converges to zero as traffic accumulates.

Since the :mod:`repro.api` redesign the service is system-agnostic: it
serves any registered :class:`~repro.api.System` (``system="jit"`` by
default, or ``"aot:<personality>"`` / ``"mkl"``), holding one prepared
artifact whose bound plans are the per-``(handle, d)`` workspaces.
Address-free systems amortize their one-time compile across the stream
exactly like JIT codegen.

Throughput architecture — the paper's amortization argument only pays
off if the steady-state multiply path is hardware-limited, not lock-
and-Python-overhead-limited, so the service removes per-request
overhead the same way codegen overhead was removed:

* **striped locks** — service state is sharded: handles map to lock
  stripes (workspace table + request stats per stripe) and the private
  kernel cache is a :class:`~repro.serve.cache.ShardedKernelCache`, so
  register/evict traffic on one matrix never stalls multiply traffic on
  another;
* **request coalescing** — with ``max_batch > 1``, concurrent
  ``multiply`` calls for one kernel identity are grouped by a per-
  workspace batch queue and executed as a single stacked-operand SpMM
  (operand columns concatenated along ``d``, results scattered back as
  zero-copy views).  Results are bit-identical to per-request execution
  — every kernel accumulates each output column independently, in the
  same non-zero order regardless of the stacked width;
* **workspace pooling** — the per-``(handle, d)`` workspaces keep their
  pre-mapped address spaces across requests (PR 4's lazy binding means
  the fast path never maps at all), and batch gather buffers come from
  a size-bucketed :class:`~repro.serve.pool.WorkspacePool` free-list,
  so steady-state requests perform no allocations beyond the result
  buffer their caller keeps;
* **tiered execution** (``tier_mode``, :mod:`repro.serve.tier`) — cold
  ``(handle, d)`` workspaces bind the system's cached address-free
  template (no autotune, no codegen: near-instant first request) and
  are promoted to the specialized plan by a bounded background
  executor once traffic crosses ``promote_after``; both tiers are
  bit-identical, and the hot-swap rides the same refcounted kernel-
  identity guard that already protects unregister/eviction races.

Two request paths, mirroring :class:`repro.core.engine.JitSpMM`:

* :meth:`SpmmService.multiply` — production path; numpy fast backend
  over the tuned partitioning, bit-equal to the generated kernel;
* :meth:`SpmmService.profile` — opt-in simulated path that re-executes
  the *cached* kernel on the persistent per-handle address space
  (operand segments are zero-copy views, so a new ``X`` is written in
  place and the baked addresses stay valid).
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.config import ExecutionConfig
from repro.api.registry import get_system
from repro.exec import get_backend
from repro.core.autotune import SplitChoice, autotune_memo_stats
from repro.core.engine import (
    check_operands,
    fast_check_operands,
    multiply_partitioned,
    scatter_columns,
    stack_columns,
)
from repro.core.runner import RunResult
from repro.errors import DeadlineExceeded, ServiceClosed, ShapeError
from repro.isa.isainfo import IsaLevel
from repro.obs.metrics import Sample, get_registry, labels_key
from repro.obs.trace import current_trace_id, span as _span
from repro.serve.cache import CacheStats, KernelCache, ShardedKernelCache
from repro.serve.pool import PoolStats, WorkspacePool
from repro.serve.stats import HandleStats, LockStats, ServiceStats, TimedLock
from repro.serve.tier import (
    PROMOTION_OUTCOMES,
    PromotionExecutor,
    TIER_FAILED,
    TIER_INLINE,
    TIER_PROMOTED,
    TIER_PROMOTING,
    TIER_TEMPLATE,
    TierSnapshot,
    TierStats,
)
from repro.sparse.csr import CsrMatrix

__all__ = ["MatrixHandle", "ServiceSnapshot", "SpmmService"]

#: default retained-kernel budget: plenty for dozens of live kernels
#: (a generated SpMM kernel encodes to a few hundred bytes)
DEFAULT_CACHE_BUDGET = 1 << 20

#: default cap on live per-(handle, d) workspaces: bounds the simulated
#: memory pinned by multiply-only traffic over many shapes (each
#: workspace maps full operand copies), while staying far above any
#: realistic working set of concurrently hot shapes
DEFAULT_MAX_WORKSPACES = 64

#: default stripe/shard width for the service's locks and private
#: cache: enough that independent handles rarely collide, small enough
#: that aggregation (reports, workspace counts) stays trivial
DEFAULT_STRIPES = 8


@dataclass(frozen=True)
class MatrixHandle:
    """An opaque ticket for one registered matrix."""

    handle_id: int
    matrix: CsrMatrix = field(compare=False, repr=False)
    name: str = field(default="", compare=False)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (f"MatrixHandle(#{self.handle_id}{label}, "
                f"{self.matrix.nrows}x{self.matrix.ncols}, "
                f"nnz={self.matrix.nnz})")


class _BatchSlot:
    """One coalescible ``multiply`` request waiting in a batch queue."""

    __slots__ = ("x", "t0", "cold", "deadline", "y", "error", "event",
                 "lead", "batch_id", "leader_trace")

    def __init__(self, x, t0: float, cold: bool,
                 deadline: float | None = None) -> None:
        self.x = x
        self.t0 = t0
        self.cold = cold
        self.deadline = deadline  # absolute time.monotonic(), None = none
        self.y = None
        self.error = None
        self.event = None       # created only for followers
        self.lead = False       # set when promoted to batch leader
        self.batch_id = None    # stamped by the executing leader
        self.leader_trace = ""  # the leader's trace id (tracing on)


class _BatchQueue:
    """Per-workspace coalescing state: pending requests + leader flag.

    At most one thread leads at a time; requests arriving while a batch
    executes queue up and are drained into the next batch.  A finishing
    leader promotes the oldest waiter to leader rather than serving
    forever, so leadership (and its latency cost) rotates fairly.
    """

    __slots__ = ("lock", "pending", "leader")

    def __init__(self) -> None:
        self.lock = TimedLock()
        self.pending: deque[_BatchSlot] = deque()
        self.leader = False


@dataclass
class _Workspace:
    """Per-(handle, d) state: one bound plan + its locks and queue."""

    #: the pipeline's stage-2 product: tuned split, mapped persistent
    #: address space, partitions, and (once resolved) the kernel
    plan: object
    #: monotonic recency stamp (service-wide clock): reproduces the
    #: global LRU order across stripes for workspace-cap eviction
    touched: int = 0
    #: serializes simulated runs over this address space (its mapped
    #: X/Y segments are shared mutable state); fast-path requests never
    #: take it, so a long profile stalls only concurrent profiles of
    #: this same (handle, d).  Codegen has its own per-identity lock in
    #: the service.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: coalescing queue for the fast path (used when ``max_batch > 1``)
    queue: _BatchQueue = field(default_factory=_BatchQueue)
    #: serving tier (tier state machine in :mod:`repro.serve.tier`);
    #: ``"inline"`` on an untiered service
    tier: str = TIER_INLINE
    #: requests served on the template tier (drives the promotion
    #: threshold; mutated under the owning stripe lock)
    traffic: int = 0
    #: the typed error of a failed promotion (the workspace then serves
    #: the template tier for good)
    promote_error: BaseException | None = None


class _Stripe:
    """One lock stripe: the workspaces and stats of its handles."""

    __slots__ = ("lock", "workspaces", "evictions")

    def __init__(self) -> None:
        self.lock = TimedLock()
        self.workspaces: OrderedDict[tuple[int, int], _Workspace] = (
            OrderedDict())
        self.evictions = 0


@dataclass(frozen=True)
class ServiceSnapshot:
    """One consistent point-in-time view of a service's observability.

    Everything :meth:`SpmmService.report` prints and everything the
    service exports to the metrics registry renders from one of these,
    so the human summary and the machine export can never disagree:
    per-handle stats are copied under their owning stripe locks (no
    torn ``requests`` vs ``exec_seconds`` reads under traffic), and the
    cache/lock/pool counters are each taken with their native
    consistent-snapshot calls.
    """

    stats: ServiceStats
    cache: CacheStats
    locks: LockStats
    pool: PoolStats
    workspaces_live: int
    workspace_cap: int | None
    workspace_evictions: int
    autotune_memo: dict
    #: tiered-execution state; None on an untiered service (the report
    #: and metric series are then byte-identical to pre-tiering ones)
    tier: TierSnapshot | None = None

    def render(self) -> str:
        """The service report (live Table IV) — byte-identical to what
        the pre-snapshot ``report()`` rendered from live state."""
        cap = ("unbounded" if self.workspace_cap is None
               else self.workspace_cap)
        memo = self.autotune_memo
        lines = [
            self.stats.render(self.cache, self.locks),
            f"workspaces: {self.workspaces_live} live (cap {cap}), "
            f"{self.workspace_evictions} evicted",
            self.pool.render(),
            f"autotune memo: {memo['hits']} hits / {memo['misses']} "
            f"misses ({memo['entries']} entries, process-wide)",
        ]
        if self.tier is not None:
            lines.append(self.tier.render())
        return "\n".join(lines)

    def metric_samples(self, **labels) -> list[Sample]:
        """The snapshot as registry samples (``serve_*`` series).

        ``labels`` stamp every emitted sample — the service's own
        collector passes ``service=<obs_label>``, and a gateway
        aggregating per-worker snapshots adds ``worker=<index>`` so
        the workers' series stay distinct instead of colliding on one
        name.  Caller labels and per-sample labels are merged into one
        canonically sorted label set (per-sample keys win), so label
        identity is order-independent no matter who adds what.
        """

        def sample(name, value, kind="counter", **extra):
            return Sample(name, labels_key({**labels, **extra}),
                          float(value), kind)

        stats = self.stats
        out = [
            sample("serve_requests_total", stats.requests),
            sample("serve_profiled_requests_total",
                   sum(h.profiled_requests
                       for h in stats.handles.values())),
            sample("serve_codegen_runs_total", stats.codegen_runs),
            sample("serve_codegen_seconds_total", stats.codegen_seconds),
            sample("serve_exec_seconds_total", stats.exec_seconds),
            sample("serve_codegen_overhead_ratio",
                   stats.codegen_overhead(), "gauge"),
            sample("serve_handles", len(stats.handles), "gauge"),
            sample("serve_cache_hits_total", self.cache.hits),
            sample("serve_cache_misses_total", self.cache.misses),
            sample("serve_cache_evictions_total", self.cache.evictions),
            sample("serve_cache_entries", self.cache.entries, "gauge"),
            sample("serve_cache_bytes", self.cache.bytes, "gauge"),
            sample("serve_lock_acquisitions_total", self.locks.acquisitions),
            sample("serve_lock_waits_total", self.locks.waits),
            sample("serve_lock_wait_seconds_total", self.locks.wait_seconds),
            sample("serve_pool_allocations_total", self.pool.allocations),
            sample("serve_pool_reuses_total", self.pool.reuses),
            sample("serve_pool_releases_total", self.pool.releases),
            sample("serve_pool_dropped_total", self.pool.dropped),
            sample("serve_pool_retained_bytes", self.pool.retained_bytes,
                   "gauge"),
            sample("serve_workspaces_live", self.workspaces_live, "gauge"),
            sample("serve_workspace_evictions_total",
                   self.workspace_evictions),
        ]
        out.extend(
            sample("serve_backend_requests_total", count, backend=name)
            for name, count in sorted(stats.backend_traffic.items()))
        out.extend(
            sample("serve_batches_total", count, size=size)
            for size, count in sorted(stats.batch_sizes.items()))
        out.extend(
            sample("serve_tier_traffic_total", count, tier=name)
            for name, count in sorted(stats.tier_traffic.items()))
        if self.tier is not None:
            out.extend(
                sample("serve_tier_promotions_total",
                       self.tier.outcomes.get(outcome, 0), outcome=outcome)
                for outcome in PROMOTION_OUTCOMES)
            out.append(sample("serve_tier_promotions_pending",
                              self.tier.pending, "gauge"))
            out.append(sample("serve_tier_codegen_seconds_total",
                              self.tier.codegen_seconds))
            out.extend(
                sample("serve_tier_failures_total", count, reason=reason)
                for reason, count in sorted(
                    self.tier.failure_reasons.items()))
        return out


def _service_collector(ref: "weakref.ref[SpmmService]", label: str):
    """A registry collector bound to one service by weak reference.

    Marks itself dead once the service is collected, so a long-lived
    process churning through services never leaks collectors.
    """

    def collect():
        service = ref()
        if service is None:
            collect.dead = True
            return ()
        return service.metric_samples()

    collect.dead = False
    collect.label = label
    return collect


#: distinguishes the metric streams of multiple services in one process
_SERVICE_IDS = itertools.count(0)


class SpmmService:
    """Serve ``Y = A @ X`` requests with cached, autotuned kernels.

    Args:
        threads: Worker threads each kernel is generated/partitioned for.
        split: ``"auto"`` (default: tune per matrix — JIT only), or a
            fixed ``"row"`` / ``"nnz"`` / ``"merge"``.
        isa: ISA level for JIT code generation (AOT personalities and
            MKL fix their own).
        timing: Model caches/pipeline on the simulated ``profile`` path
            (legacy spelling of ``backend``: sim vs counts).
        backend: Default execution backend for ``profile`` requests —
            any :func:`repro.exec.get_backend`-resolvable name
            (``"counts"``, ``"sim"``, ``"sim-fused"``, ...); ``None``
            defers to ``timing``.  ``multiply`` always serves on the
            ``"native"`` backend.  Per-request overrides win;
            :meth:`report` breaks traffic down per backend.
        cache: Shared kernel cache (:class:`KernelCache` or
            :class:`~repro.serve.cache.ShardedKernelCache`); when
            omitted a private :class:`ShardedKernelCache` is created
            with ``cache_budget_bytes`` spread over ``stripes`` shards.
        cache_budget_bytes: Byte budget for the private cache.
        l1 / l2: Cache-geometry overrides for the simulated ``profile``
            path (same knobs as :func:`repro.core.runner.run_jit`, used
            by the bench harness to scale caches with dataset twins).
        system: Registered system name to serve (``"jit"`` default;
            any :func:`repro.api.get_system`-resolvable name works —
            the service's workspaces are that system's bound plans).
        max_workspaces: Cap on live (handle, d) workspaces (None =
            unbounded).  Evicting a workspace releases its mapped
            operand copies but not its cached kernel, so a re-requested
            shape pays re-mapping, never re-codegen.  Enforced strictly
            over the service-wide count with least-recently-used
            eviction across stripes (monotonic touch stamps order
            recency globally); the just-touched workspace is never its
            own victim.
        max_batch: Coalescing cap for ``multiply``: up to this many
            concurrent same-``(handle, d)`` requests execute as one
            stacked-operand SpMM (bit-identical results, one pass of
            per-request overhead).  1 (default) disables coalescing.
        flush_us: Microseconds a batch leader lingers for followers
            before executing a non-full batch; 0 (default) executes
            immediately, so batches form only from requests arriving
            while an earlier batch is in flight.
        stripes: Lock stripes for service state, and the shard count of
            the private kernel cache.
        tier_mode: Tiered execution (:mod:`repro.serve.tier`):
            ``"off"`` (default) specializes inline on the first request
            per (handle, d); ``"lazy"`` serves cold workspaces from the
            system's address-free template tier (near-instant first
            request, bit-identical results) and promotes to the
            specialized plan in the background after ``promote_after``
            requests; ``"eager"`` promotes on the first request.
            Inert for systems with no faster template
            (:meth:`repro.api.System.tier_template` returns None).
        promote_after: Template-tier request count that schedules a
            (handle, d) for background promotion (lazy mode).
        promotion_workers: Background promotion threads bounding
            concurrent off-path autotune/codegen runs.
        opt_level: AOT optimization level for the served system
            (ignored by systems without an IR pass pipeline); at
            ``opt_level=3`` an AOT system searches pass configs per
            matrix — the expensive bind tiering moves off the request
            path.
        search_budget: Candidate budget for one ``opt_level=3`` search.
        obs_label: The ``service=`` label on this service's exported
            metrics (:mod:`repro.obs`); defaults to a process-unique
            ``spmmN``.

    Resource model: the kernel cache's byte budget bounds *compiled
    code*; each live (handle, d) pair additionally pins a workspace
    (mapped operand copies sized by the matrix and width), bounded by
    ``max_workspaces``.  ``multiply`` always ensures the kernel exists
    (codegen on first use or after an eviction) so the cached program
    stays warm for ``profile`` and the codegen-once-per-identity
    accounting holds — except on a tiered service, where the fast path
    never resolves a kernel at all (the shared template kernel, and a
    promoted workspace's specialized kernel, resolve on first
    ``profile``/``kernel`` use or at promotion).  Batch gather buffers
    are recycled through a :class:`~repro.serve.pool.WorkspacePool`
    (``service.pool``).
    """

    def __init__(
        self,
        threads: int = 8,
        split: str = "auto",
        isa: IsaLevel | str = IsaLevel.AVX512,
        timing: bool = False,
        backend: str | None = None,
        cache: KernelCache | None = None,
        cache_budget_bytes: int = DEFAULT_CACHE_BUDGET,
        l1=None,
        l2=None,
        system: str = "jit",
        max_workspaces: int | None = DEFAULT_MAX_WORKSPACES,
        max_batch: int = 1,
        flush_us: float = 0.0,
        stripes: int = DEFAULT_STRIPES,
        tier_mode: str = "off",
        promote_after: int = 32,
        promotion_workers: int = 1,
        opt_level: int = 0,
        search_budget: int = 16,
        obs_label: str | None = None,
    ) -> None:
        if stripes <= 0:
            raise ShapeError(f"stripes must be positive, got {stripes}")
        self._private_cache = cache is None
        self.cache = cache if cache is not None else ShardedKernelCache(
            budget_bytes=cache_budget_bytes, shards=stripes)
        self._system = get_system(system)
        if split == "auto" and not self._system.supports_autotune:
            raise ShapeError(
                f"split='auto' autotunes via the JIT cost model; system "
                f"{system!r} serves fixed splits (row/nnz/merge)")
        # validation (thread count, split name, backend name, batching
        # knobs, tiering, ...) happens here, once, for the contract
        # every entry point shares
        self._config = ExecutionConfig(
            split=split, threads=threads, isa=isa, timing=timing,
            backend=backend, l1=l1, l2=l2, cache=self.cache,
            max_batch=max_batch, flush_us=flush_us,
            tier_mode=tier_mode, promote_after=promote_after,
            promotion_workers=promotion_workers, opt_level=opt_level,
            search_budget=search_budget,
        )
        self._artifact = self._system.prepare(self._config)
        # tiered execution: active iff asked for AND the system names a
        # cheaper bit-identical template tier (repro.serve.tier); the
        # template artifact shares this service's kernel cache, so its
        # one compiled kernel serves every cold workspace
        self.tier_mode = tier_mode
        self.promote_after = self._config.promote_after
        self.tier_stats = TierStats()
        self._template_artifact = None
        self._template_key = None
        self._promoter = None
        template = (self._system.tier_template(self._config)
                    if tier_mode != "off" else None)
        if template is not None:
            template_system, overrides = template
            self._template_artifact = get_system(template_system).prepare(
                self._config.with_overrides(**overrides))
            self._template_key = self._template_artifact.key
            self._promoter = PromotionExecutor(
                workers=self._config.promotion_workers,
                name=f"tier-{obs_label or 'spmm'}")
        if max_workspaces is not None and max_workspaces <= 0:
            raise ShapeError(
                f"max_workspaces must be positive or None, got "
                f"{max_workspaces}")
        self.system = self._system.name
        self.threads = threads
        self.split = split
        self.isa = self._config.isa
        self.timing = timing
        self.backend = self._config.backend
        self.l1 = l1
        self.l2 = l2
        self.max_workspaces = max_workspaces
        self.max_batch = self._config.max_batch
        self.flush_us = self._config.flush_us
        self.stats = ServiceStats()
        self.pool = WorkspacePool()
        self._handles: dict[int, MatrixHandle] = {}
        self._next_id = 0
        # service-wide recency clock for cross-stripe LRU eviction
        # (itertools.count.__next__ is GIL-atomic)
        self._ws_clock = itertools.count(1)
        # handle -> stripe: workspace table + stats mutation lock per
        # stripe, so traffic on one matrix never serializes behind
        # traffic on another
        self._stripes = [_Stripe() for _ in range(stripes)]
        self._registry_lock = TimedLock()
        # kernel-identity bookkeeping, shared across stripes (twin
        # handles on different stripes legitimately share one kernel):
        # codegen serialization locks plus a refcount of the live
        # workspaces carrying each identity — cache insert/discard
        # decisions serialize on this guard
        self._keylock_guard = TimedLock()
        self._keylocks: dict = {}
        self._key_refs: dict = {}
        self._retired_locks = LockStats()
        # observability: batch ids are always assigned (error reports
        # must attribute failures to a batch whether or not tracing is
        # on); the metrics collector holds only a weak reference, so a
        # dropped service is pruned from the registry, not pinned by it
        self.obs_label = obs_label or f"spmm{next(_SERVICE_IDS)}"
        self._batch_ids = itertools.count(1)
        self._closed = False
        self._collector = _service_collector(weakref.ref(self),
                                             self.obs_label)
        get_registry().register_collector(self._collector)

    # ------------------------------------------------------------------
    # Sharded-state accessors (also the tests' introspection surface)
    # ------------------------------------------------------------------
    def _stripe(self, handle_id: int) -> _Stripe:
        return self._stripes[handle_id % len(self._stripes)]

    def _live_workspaces(self) -> int:
        # len() per stripe is GIL-atomic; the sum is a consistent-enough
        # snapshot for eviction decisions and reporting
        return sum(len(stripe.workspaces) for stripe in self._stripes)

    @property
    def _workspaces(self) -> dict:
        """Merged (handle_id, d) -> workspace snapshot across stripes."""
        merged: dict = {}
        for stripe in self._stripes:
            with stripe.lock:
                merged.update(stripe.workspaces)
        return merged

    @property
    def _workspace_evictions(self) -> int:
        return sum(stripe.evictions for stripe in self._stripes)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, matrix: CsrMatrix, name: str = "") -> MatrixHandle:
        """Register a matrix for serving; returns its handle.

        Registration is cheap — autotuning and code generation are
        deferred to the first request for each dense width ``d``.  The
        matrix side of the operand contract is validated here, once
        (:class:`CsrMatrix` self-validates on construction and is
        immutable), so per-request validation reduces to a cheap assert
        on ``x``.
        """
        if self._closed:
            raise ServiceClosed("service is closed; no further requests")
        with _span("serve.register", name=name or matrix.name,
                   nnz=matrix.nnz) as sp:
            with self._registry_lock:
                handle = MatrixHandle(self._next_id, matrix,
                                      name or matrix.name)
                self._handles[handle.handle_id] = handle
                self._next_id += 1
                self.stats.handle(handle.handle_id, handle.name)
            sp.annotate(handle=handle.handle_id)
        return handle

    def unregister(self, handle: MatrixHandle) -> None:
        """Release a handle: its workspaces and cached kernels are
        dropped, so a long-lived service does not pin operand buffers
        for matrices it no longer serves.

        The handle's accumulated :class:`HandleStats` are kept (the
        stream history stays in :meth:`report`).  Requests already in
        flight complete against their own references; new requests for
        the handle raise :class:`~repro.errors.ShapeError`.  Cached
        kernels are dropped only from a service-private cache, and only
        when no surviving workspace shares the kernel identity (same-
        shaped matrices — and all users of an address-free template —
        legitimately share one cached kernel); an externally supplied
        cache is never mutated here.
        """
        self._validate_handle(handle)
        with _span("serve.unregister", handle=handle.handle_id):
            with self._registry_lock:
                self._handles.pop(handle.handle_id, None)
            stripe = self._stripe(handle.handle_id)
            with stripe.lock:
                dropped = [stripe.workspaces.pop(key)
                           for key in list(stripe.workspaces)
                           if key[0] == handle.handle_id]
            for ws in dropped:
                self._retire_workspace(ws, drop_kernel=True)

    def handle_stats(self, handle: MatrixHandle) -> HandleStats:
        """The request statistics accumulated for ``handle``."""
        self._validate_handle(handle)
        with self._stripe(handle.handle_id).lock:
            return self.stats.handle(handle.handle_id, handle.name)

    def _validate_handle(self, handle: MatrixHandle) -> None:
        if self._closed:
            raise ServiceClosed("service is closed; no further requests")
        # lock-free read: dict.get is atomic under the GIL, and an
        # unregister racing past it is indistinguishable from one that
        # completed just after this request was admitted
        known = self._handles.get(handle.handle_id)
        if known is None or known.matrix is not handle.matrix:
            raise ShapeError(f"unknown handle {handle!r}; "
                             "register the matrix with this service first")

    # ------------------------------------------------------------------
    # Kernel identity bookkeeping (refcounted across stripes)
    # ------------------------------------------------------------------
    def _retire_workspace(self, ws: _Workspace, drop_kernel: bool) -> None:
        """Release one removed workspace's kernel-identity reference.

        When the last workspace carrying an identity goes, its codegen
        lock is dropped (so heavy shape churn cannot grow ``_keylocks``
        without bound) and — on unregister of a service-private cache —
        so is the cached kernel.  Eviction keeps the kernel warm: a
        re-requested shape pays re-mapping, never re-codegen.
        """
        with self._keylock_guard:
            # keep the contention history of retired queues visible
            self._retired_locks = self._retired_locks + ws.queue.lock.stats()
        self._release_identity(ws.plan.key, drop_kernel=drop_kernel)

    def _release_identity(self, key, drop_kernel: bool = False) -> None:
        """Drop one reference to a kernel identity (see above).

        Promotion releases the swapped-out template identity through
        here too — but the shared template kernel itself is never
        discarded from the cache (``key != self._template_key`` guard):
        promotion is not unregistration, and the next cold register
        must still bind near-instantly.
        """
        with self._keylock_guard:
            refs = self._key_refs.get(key, 0) - 1
            if refs > 0:
                self._key_refs[key] = refs
                return
            self._key_refs.pop(key, None)
            self._keylocks.pop(key, None)
            if (drop_kernel and self._private_cache
                    and key != self._template_key):
                self.cache.discard(key)

    def _prune_keylock(self, key) -> None:
        """Drop a codegen lock created for an identity that never
        landed (stale or failed promotion), unless some workspace
        legitimately carries that identity."""
        with self._keylock_guard:
            if not self._key_refs.get(key):
                self._keylocks.pop(key, None)

    # ------------------------------------------------------------------
    # Workspace resolution
    # ------------------------------------------------------------------
    def _make_workspace(self, handle: MatrixHandle, d: int) -> _Workspace:
        x0 = np.zeros((handle.matrix.ncols, d), dtype=np.float32)
        if self._template_artifact is not None:
            # tiered: bind the address-free template — partitioning
            # only, no autotune/search/codegen, so the first request is
            # near-instant; promotion specializes in the background
            plan = self._template_artifact.bind(
                handle.matrix, x0, ensure_kernel=False,
                name_prefix="serve")
            return _Workspace(plan=plan, tier=TIER_TEMPLATE)
        # stage 2 only: autotune + operand mapping + partitioning; the
        # kernel stays unresolved so plan inspection costs no codegen
        plan = self._artifact.bind(handle.matrix, x0, ensure_kernel=False,
                                   name_prefix="serve")
        return _Workspace(plan=plan)

    def _workspace(self, handle: MatrixHandle,
                   d: int) -> tuple[_Workspace, bool]:
        """Get or create the tuned workspace for (handle, d) — no codegen.

        Returns ``(workspace, created)``; created marks the first
        request for this (handle, d), which paid autotune + mapping.
        """
        self._validate_handle(handle)
        key = (handle.handle_id, d)
        stripe = self._stripe(handle.handle_id)
        with stripe.lock:
            ws = stripe.workspaces.get(key)
            if ws is not None:
                stripe.workspaces.move_to_end(key)
                ws.touched = next(self._ws_clock)
                return ws, False
        # autotune + operand mapping happen outside the stripe lock; a
        # concurrent duplicate loses the setdefault race and is simply
        # dropped.  The kernel identity is resolved here too (it bakes
        # the mapped addresses), so the refcount below pairs exactly
        # with the insertion.
        with _span("serve.bind", handle=handle.handle_id, d=d):
            built = self._make_workspace(handle, d)
        identity = built.plan.key
        with stripe.lock:
            # re-check liveness: an unregister() racing with us must
            # not be followed by an insertion it can never sweep
            self._validate_handle(handle)
            ws = stripe.workspaces.setdefault(key, built)
            stripe.workspaces.move_to_end(key)
            ws.touched = next(self._ws_clock)
            if ws is built:
                with self._keylock_guard:
                    self._key_refs[identity] = (
                        self._key_refs.get(identity, 0) + 1)
        if ws is built:
            for victim in self._enforce_workspace_cap(protect=ws):
                self._retire_workspace(victim, drop_kernel=False)
        return ws, ws is built

    def _enforce_workspace_cap(self,
                               protect: _Workspace) -> list[_Workspace]:
        """Evict least-recently-touched workspaces service-wide until
        the live count is back under the cap.

        Locks one stripe at a time (never nested), so traffic on other
        stripes proceeds during enforcement; the global touch stamps
        reproduce the pre-sharding single-LRU eviction order.
        ``protect`` — the workspace whose insertion triggered the pass
        — is never a victim, so an insertion cannot evict itself.
        In-flight requests holding an evicted workspace complete
        against their reference, and the kernel cache is untouched.
        """
        if self.max_workspaces is None:
            return []
        victims: list[_Workspace] = []
        stalls = 0
        while (self._live_workspaces() > self.max_workspaces
               and stalls < 2 * len(self._stripes)):
            best = None
            for stripe in self._stripes:
                with stripe.lock:
                    # dict order is per-stripe LRU (touches move_to_end)
                    for key, ws in stripe.workspaces.items():
                        if ws is protect:
                            continue
                        if best is None or ws.touched < best[0]:
                            best = (ws.touched, stripe, key, ws)
                        break
            if best is None:            # nothing evictable remains
                break
            stamp, stripe, key, ws = best
            with stripe.lock:
                # re-check under the owning lock: the candidate may have
                # been touched, evicted, or swept since the scan
                current = stripe.workspaces.get(key)
                if current is ws and ws.touched == stamp:
                    stripe.workspaces.pop(key)
                    stripe.evictions += 1
                    victims.append(ws)
                    stalls = 0
                else:
                    stalls += 1
        return victims

    def _resolve(self, handle: MatrixHandle, d: int):
        """Workspace + plan + kernel for (handle, d).

        Returns ``(workspace, plan, kernel, codegen_seconds, cold,
        generated)`` — ``plan`` is the workspace's plan captured once
        (a concurrent promotion swapping ``ws.plan`` cannot change the
        plan this request resolved); generated is True iff kernel
        construction ran in this call (the kernel was not served from
        the cache); cold is True when the request paid one-time setup:
        the first request for this (handle, d) (autotune + operand
        mapping, even if the kernel itself was already cached under a
        shared key) or a kernel construction run (first use, or
        regeneration after eviction).
        """
        ws, created = self._workspace(handle, d)
        plan = ws.plan
        # the plan's own system builds/sizes its kernel: on a tiered
        # service the template tier's plans belong to the template
        # system, not the served one
        system = plan.artifact.system
        # lock-free warm path: a long profile() holding ws.lock must not
        # stall concurrent numpy-path requests (the cache locks itself,
        # per shard)
        kernel = self.cache.get(plan.key)
        if kernel is not None:
            plan.attach_kernel(kernel, cache_hit=True, codegen_seconds=0.0)
            return ws, plan, kernel, 0.0, created, False
        # codegen serialization is keyed on kernel *identity*, not on
        # the workspace: same-shaped handles share one kernel, and two
        # concurrent cold requests must not both generate it
        with self._keylock_guard:
            keylock = self._keylocks.setdefault(plan.key, threading.Lock())
        with _span("serve.codegen", handle=handle.handle_id, d=d,
                   system=system.name) as sp, keylock:
            # uncounted re-check: the probe above already recorded the
            # miss; a hit here means a peer generated it meanwhile
            kernel = self.cache.peek(plan.key)
            if kernel is not None:
                plan.attach_kernel(kernel, cache_hit=True,
                                   codegen_seconds=0.0)
                sp.annotate(generated=False)
                return ws, plan, kernel, 0.0, created, False
            kernel, seconds = system.build_kernel(plan)
            sp.annotate(generated=True)
            with self._keylock_guard:
                # don't re-insert behind a racing unregister: cache the
                # kernel only while some workspace still carries its
                # identity (this request is still served either way);
                # the refcount check and the put share the guard, so an
                # unregister cannot interleave between them
                if self._key_refs.get(plan.key):
                    self.cache.put(plan.key, kernel,
                                   system.kernel_nbytes(kernel))
        plan.attach_kernel(kernel, cache_hit=False, codegen_seconds=seconds)
        with self._stripe(handle.handle_id).lock:
            self.stats.handle(handle.handle_id, handle.name).record_codegen(
                seconds)
        return ws, plan, kernel, seconds, True, True

    def kernel(self, handle: MatrixHandle, d: int):
        """The (cached) compiled kernel serving (handle, d) requests.

        Usable as a prefetch: generation triggered here is charged to
        the handle's codegen stats like any cold request, so later
        ``multiply`` calls are warm.  On a tiered service this is the
        kernel of the workspace's *current* tier.
        """
        _, _, kernel, _, _, _ = self._resolve(handle, d)
        return kernel

    def choice(self, handle: MatrixHandle, d: int) -> SplitChoice | None:
        """The autotuner's verdict for (handle, d); None for fixed splits.

        Tunes (and maps operands) if this (handle, d) is new, but never
        generates code — inspecting the plan costs no codegen.
        """
        ws, _ = self._workspace(handle, d)
        return ws.plan.choice

    # ------------------------------------------------------------------
    # Tiered execution (repro.serve.tier)
    # ------------------------------------------------------------------
    @property
    def tiered(self) -> bool:
        """True when this service serves template-first with background
        promotion (tier_mode on AND the system names a template tier)."""
        return self._template_artifact is not None

    def _plan_tier(self, plan) -> str | None:
        """The tier label of the plan one request executed on.

        Derived from the plan object itself — not the workspace's
        mutable ``tier`` field — so every member of a coalesced batch
        (which executes exactly one captured plan) is attributed to one
        tier even when a promotion lands mid-batch.  None on an
        untiered service (no tier series are emitted, keeping the
        exported metrics byte-compatible).
        """
        if self._template_artifact is None:
            return None
        return (TIER_TEMPLATE
                if plan.artifact is self._template_artifact
                else TIER_PROMOTED)

    def tier_state(self, handle: MatrixHandle, d: int) -> str | None:
        """The tier state of (handle, d): ``"template"`` /
        ``"promoting"`` / ``"promoted"`` / ``"failed"`` (``"inline"``
        on an untiered service); None before the first request binds a
        workspace."""
        self._validate_handle(handle)
        stripe = self._stripe(handle.handle_id)
        with stripe.lock:
            ws = stripe.workspaces.get((handle.handle_id, d))
            return None if ws is None else ws.tier

    def promotion_error(self, handle: MatrixHandle,
                        d: int) -> BaseException | None:
        """The typed error that failed (handle, d)'s promotion, if any."""
        self._validate_handle(handle)
        stripe = self._stripe(handle.handle_id)
        with stripe.lock:
            ws = stripe.workspaces.get((handle.handle_id, d))
            return None if ws is None else ws.promote_error

    def drain_promotions(self, timeout: float | None = 5.0) -> bool:
        """Wait for every in-flight background promotion to settle."""
        if self._promoter is None:
            return True
        return self._promoter.drain(timeout)

    def _note_tier_traffic(self, handle: MatrixHandle, ws: _Workspace,
                           d: int) -> None:
        """Count one template-tier request; schedule promotion when the
        policy says so (eager: first request; lazy: threshold)."""
        if ws.tier != TIER_TEMPLATE:
            return
        stripe = self._stripe(handle.handle_id)
        submit = False
        with stripe.lock:
            if ws.tier == TIER_TEMPLATE:
                ws.traffic += 1
                if (self.tier_mode == "eager"
                        or ws.traffic >= self.promote_after):
                    ws.tier = TIER_PROMOTING
                    submit = True
        if submit:
            self.tier_stats.begin()
            if not self._promoter.submit(
                    lambda: self._promote(handle, ws, d)):
                # pool closed under us (service shutting down): the
                # job never ran, settle it as stale and keep serving
                # the template
                with stripe.lock:
                    if ws.tier == TIER_PROMOTING:
                        ws.tier = TIER_TEMPLATE
                self.tier_stats.finish("stale")

    def _promote(self, handle: MatrixHandle, ws: _Workspace,
                 d: int) -> None:
        """One background promotion job: specialize (handle, d) off the
        request path and hot-swap the workspace's plan.

        Never raises (it runs on a pool thread): failure degrades the
        workspace to the template tier for good, with the exception
        type counted as the typed reason; a workspace that was
        unregistered/evicted (or a service that closed) meanwhile
        settles as ``stale`` and releases everything it built.
        """
        outcome = "failed"
        seconds = 0.0
        reason = None
        with _span("serve.promote", handle=handle.handle_id, d=d,
                   system=self.system, tier=ws.tier) as sp:
            plan = None
            try:
                if self._closed or self._handles.get(
                        handle.handle_id) is None:
                    outcome = "stale"
                    return
                # stage 2 for the *served* system: autotune
                # (choose_split, memo-aware) / pass search + operand
                # mapping — the exact work the untiered cold path did
                # inline
                x0 = np.zeros((handle.matrix.ncols, d), dtype=np.float32)
                plan = self._artifact.bind(handle.matrix, x0,
                                           ensure_kernel=False,
                                           name_prefix="serve")
                kernel, seconds, generated = self._build_promoted_kernel(
                    handle, plan)
                if self._commit_promotion(handle, ws, plan, kernel,
                                          generated):
                    outcome = "promoted"
                else:
                    outcome = "stale"
                    self._prune_keylock(plan.key)
            except Exception as error:
                outcome = "failed"
                reason = type(error).__name__
                stripe = self._stripe(handle.handle_id)
                with stripe.lock:
                    if stripe.workspaces.get(
                            (handle.handle_id, d)) is ws:
                        ws.tier = TIER_FAILED
                        ws.promote_error = error
                if plan is not None:
                    try:
                        self._prune_keylock(plan.key)
                    except Exception:
                        pass
            finally:
                sp.annotate(outcome=outcome, codegen_seconds=seconds)
                self.tier_stats.finish(outcome, seconds, reason)

    def _build_promoted_kernel(self, handle: MatrixHandle, plan):
        """Build (or fetch) the specialized kernel for a promotion plan.

        Same cache discipline as :meth:`_resolve` — counted probe,
        per-identity codegen lock, uncounted re-check — except the
        kernel is *not* inserted into the cache here: the new identity
        carries no workspace reference until the commit, so the insert
        and the reference move together inside
        :meth:`_commit_promotion` (put-if-live, under the guard).
        """
        system = plan.artifact.system
        kernel = self.cache.get(plan.key)
        if kernel is not None:
            plan.attach_kernel(kernel, cache_hit=True, codegen_seconds=0.0)
            return kernel, 0.0, False
        with self._keylock_guard:
            keylock = self._keylocks.setdefault(plan.key, threading.Lock())
        with _span("serve.codegen", handle=handle.handle_id, d=plan.d,
                   system=system.name) as sp, keylock:
            kernel = self.cache.peek(plan.key)
            if kernel is not None:
                plan.attach_kernel(kernel, cache_hit=True,
                                   codegen_seconds=0.0)
                sp.annotate(generated=False)
                return kernel, 0.0, False
            kernel, seconds = system.build_kernel(plan)
            sp.annotate(generated=True)
        plan.attach_kernel(kernel, cache_hit=False, codegen_seconds=seconds)
        with self._stripe(handle.handle_id).lock:
            self.stats.handle(handle.handle_id, handle.name).record_codegen(
                seconds)
        return kernel, seconds, True

    def _commit_promotion(self, handle: MatrixHandle, ws: _Workspace,
                          plan, kernel, generated: bool) -> bool:
        """Atomically land a finished promotion; False if it went stale.

        Takes the stripe lock, then the identity guard — the order
        :meth:`_workspace` established, so promotion can never deadlock
        against registration.  Under the stripe lock the workspace's
        liveness is re-checked (an unregister/eviction/close that won
        the race means this promotion must release everything and keep
        nothing); under the guard the new identity gains its reference
        and — put-if-live — its cache entry in the same critical
        section, so a racing unregister cannot interleave between them.
        The swapped-out template identity is released after the locks
        drop; the shared template kernel itself stays cached.
        """
        stripe = self._stripe(handle.handle_id)
        key = (handle.handle_id, plan.d)
        old_identity = ws.plan.key
        with stripe.lock:
            if self._closed or stripe.workspaces.get(key) is not ws:
                return False
            with self._keylock_guard:
                self._key_refs[plan.key] = (
                    self._key_refs.get(plan.key, 0) + 1)
                if generated:
                    self.cache.put(
                        plan.key, kernel,
                        plan.artifact.system.kernel_nbytes(kernel))
            ws.plan = plan
            ws.tier = TIER_PROMOTED
            ws.promote_error = None
        self._release_identity(old_identity)
        return True

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    @staticmethod
    def _check_deadline(deadline: float | None, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if ``deadline`` has passed.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp
        (``None`` disables the check); ``stage`` names where the budget
        ran out, so the typed error says *what* the request never got
        to do.
        """
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceeded(
                f"deadline expired before {stage}")

    def multiply(self, handle: MatrixHandle, x: np.ndarray,
                 deadline: float | None = None) -> np.ndarray:
        """Serve one ``Y = A @ X`` request on the fast numpy backend.

        The first request for a given ``x.shape[1]`` autotunes and
        builds the kernel (cold); later requests hit the cache and pay
        execution only.  Well-formed operands (contiguous float32 of
        the registered height) pass a hoisted cheap assert instead of
        full validation.  With ``max_batch > 1``, concurrent requests
        for the same (handle, d) coalesce into one stacked-operand
        SpMM; the returned array is then a zero-copy view of the batch
        result (bit-identical to a per-request multiply).  A view
        keeps the whole stacked batch product alive — a caller
        retaining results long-term should ``.copy()`` them, trading
        one copy for releasing up to ``max_batch - 1`` neighbors'
        columns.

        ``deadline`` is an absolute :func:`time.monotonic` budget: the
        request raises :class:`repro.errors.DeadlineExceeded` rather
        than start bind/codegen (or execution, if resolution consumed
        the budget) past it.  Coalesced batches re-check each member's
        deadline just before executing; expired members fail without
        riding the stacked SpMM.
        """
        x = fast_check_operands(handle.matrix, x)
        d = int(x.shape[1])
        with _span("serve.multiply", handle=handle.handle_id, d=d) as sp:
            t0 = time.perf_counter()
            self._check_deadline(deadline, "bind/codegen")
            if self._template_artifact is not None:
                # tiered fast path: no kernel resolution at all — the
                # numpy backend needs only the plan's row ranges, and
                # resolving a specialized identity would map operands
                # and pay codegen, exactly the cold cost tiering moves
                # off the request path
                ws, cold = self._workspace(handle, d)
                self._note_tier_traffic(handle, ws, d)
            else:
                ws, _, _, _, cold, _ = self._resolve(handle, d)
            sp.annotate(cold=cold)
            self._check_deadline(deadline, "execution")
            if self.max_batch > 1:
                return self._serve_batched(handle, ws, x, t0, cold,
                                           deadline)
            # capture the plan once: a promotion landing mid-request
            # swaps ws.plan, and this request must execute — and be
            # attributed to — exactly one tier
            plan = ws.plan
            t1 = time.perf_counter()
            y = multiply_partitioned(handle.matrix, x, plan.ranges)
            t2 = time.perf_counter()
            with self._stripe(handle.handle_id).lock:
                self.stats.handle(handle.handle_id, handle.name).observe(
                    t2 - t0, cold, exec_seconds=t2 - t1, backend="native",
                    tier=self._plan_tier(plan))
        return y

    # -- coalescing -----------------------------------------------------
    def _serve_batched(self, handle: MatrixHandle, ws: _Workspace,
                       x: np.ndarray, t0: float, cold: bool,
                       deadline: float | None = None) -> np.ndarray:
        """Enqueue one request; lead a batch or wait to be served.

        The first arrival becomes the batch leader; requests landing
        while it executes queue up and are drained by the next leader
        (the finishing leader promotes the oldest waiter), so batches
        form under concurrency without any request waiting behind an
        unrelated workspace.
        """
        queue = ws.queue
        slot = _BatchSlot(x, t0, cold, deadline)
        with queue.lock:
            if queue.leader:
                slot.event = threading.Event()
                queue.pending.append(slot)
            else:
                queue.leader = True
                slot.lead = True
        if not slot.lead:
            # the queue-wait span is the follower half of the coalescing
            # protocol's trace: it carries the executing leader's batch
            # id and trace id, so a Perfetto view of one burst shows the
            # leader's execute span and every follower's wait span
            # joined by one batch id
            with _span("serve.batch.wait", handle=handle.handle_id) as sp:
                slot.event.wait()
                if slot.lead:
                    sp.annotate(promoted=True)
                else:
                    sp.annotate(batch_id=slot.batch_id,
                                leader_trace=slot.leader_trace)
            if not slot.lead:           # served by some leader's batch
                if slot.error is not None:
                    self._raise_batch_error(slot.error)
                return slot.y
        return self._lead_batch(handle, ws, slot)

    @staticmethod
    def _raise_batch_error(error: BaseException) -> None:
        """Re-raise a batch failure for one member.

        Every member of a failed batch shares one recorded exception;
        raising that single object from up to ``max_batch`` threads
        concurrently would interleave their frames on its shared
        ``__traceback__``.  Each caller therefore raises its own
        reconstructed instance chained to the original; types that
        cannot be rebuilt from ``args`` fall back to the shared object.
        Clones carry the original's ``batch_id`` and ``trace_id``
        attributes (stamped by :meth:`_execute_batch`), so a follower's
        exception still names the coalesced execution that failed.
        """
        try:
            clone = type(error)(*error.args)
        except BaseException:
            raise error
        try:
            clone.batch_id = getattr(error, "batch_id", None)
            clone.trace_id = getattr(error, "trace_id", "")
        except Exception:
            pass
        raise clone from error

    def _lead_batch(self, handle: MatrixHandle, ws: _Workspace,
                    slot: _BatchSlot) -> np.ndarray:
        queue = ws.queue
        lingered = False
        if self.flush_us:
            # linger for followers only while the batch is not full
            with queue.lock:
                short = len(queue.pending) < self.max_batch - 1
            if short:
                time.sleep(self.flush_us * 1e-6)
                lingered = True
        batch = [slot]
        try:
            with queue.lock:
                while queue.pending and len(batch) < self.max_batch:
                    batch.append(queue.pending.popleft())
            flush = ("full" if len(batch) >= self.max_batch
                     else "linger" if lingered else "immediate")
            self._execute_batch(handle, ws, batch, flush)
        finally:
            # hand over leadership before waking this batch: requests
            # that piled up during execution start immediately
            with queue.lock:
                promoted = (queue.pending.popleft() if queue.pending
                            else None)
                if promoted is None:
                    queue.leader = False
                else:
                    promoted.lead = True
            if promoted is not None:
                promoted.event.set()
            for member in batch[1:]:
                member.event.set()
        if slot.error is not None:
            self._raise_batch_error(slot.error)
        return slot.y

    def _execute_batch(self, handle: MatrixHandle, ws: _Workspace,
                       batch: list[_BatchSlot], flush: str) -> None:
        """Run one coalesced SpMM over a batch's stacked operands.

        Never raises: a failure is recorded on every member and re-
        raised by each waiting caller (annotated with this batch's id
        and the leader's trace id, so a follower's exception names the
        execution that actually failed).  Per-request results are
        column-block views of one stacked product, bit-identical to
        what each request would have computed alone (column-independent
        accumulation in identical non-zero order, over the identical
        tuned partitions).
        """
        matrix = handle.matrix
        # one plan for the whole batch, captured before execution: a
        # promotion hot-swapping ws.plan mid-batch must not split the
        # batch across tiers — every member executes (and is counted
        # against) the tier the batch started on
        plan = ws.plan
        # stamp every member before executing: followers read these for
        # their wait spans and error reports, and the ids must be there
        # even when execution fails on the first instruction
        batch_id = next(self._batch_ids)
        leader_trace = current_trace_id()
        for member in batch:
            member.batch_id = batch_id
            member.leader_trace = leader_trace
        # deadline re-check at the execution edge: a member whose
        # budget ran out waiting in the queue fails typed here and is
        # dropped from the stacked operands — the batch effectively
        # inherits the tightest *live* member deadline, and an expired
        # one never consumes SpMM work
        now = time.monotonic()
        expired = [member for member in batch
                   if member.deadline is not None and now >= member.deadline]
        if expired:
            for member in expired:
                error = DeadlineExceeded(
                    "deadline expired in the coalescing queue")
                error.batch_id = batch_id
                error.trace_id = leader_trace
                member.error = error
            batch = [member for member in batch if member.error is None]
            if not batch:
                return
        gather = None
        try:
            with _span("serve.batch.execute", handle=handle.handle_id,
                       batch_id=batch_id, size=len(batch), flush=flush):
                t1 = time.perf_counter()
                if len(batch) == 1:
                    batch[0].y = multiply_partitioned(
                        matrix, batch[0].x, plan.ranges)
                else:
                    xs = [member.x for member in batch]
                    n, d = xs[0].shape
                    gather = self.pool.acquire(n * d * len(xs))
                    stacked = stack_columns(xs, out=gather)
                    ys = multiply_partitioned(matrix, stacked,
                                              plan.ranges)
                    for member, y in zip(batch,
                                         scatter_columns(ys, len(batch))):
                        member.y = y
                t2 = time.perf_counter()
        except BaseException as error:  # propagated by every caller
            try:
                error.batch_id = batch_id
                error.trace_id = leader_trace
            except Exception:
                pass                    # __slots__ exceptions: ids are
                                        # still on the members' slots
            for member in batch:
                member.error = error
            return
        finally:
            if gather is not None:
                self.pool.release(gather)
        share = (t2 - t1) / len(batch)
        tier = self._plan_tier(plan)
        with self._stripe(handle.handle_id).lock:
            stats = self.stats.handle(handle.handle_id, handle.name)
            stats.record_batch(len(batch))
            for member in batch:
                stats.observe(t2 - member.t0, member.cold,
                              exec_seconds=share, backend="native",
                              tier=tier)

    # ------------------------------------------------------------------
    def profile(self, handle: MatrixHandle, x: np.ndarray,
                timing: bool | None = None,
                backend: str | None = None,
                deadline: float | None = None) -> RunResult:
        """Serve one request on the simulated machine, with counters.

        Re-executes the cached kernel in the handle's persistent address
        space: the new ``X`` is written into the mapped segment the
        kernel reads, ``Y`` and the dispatch state are reset, and the
        simulated threads run the identical instruction stream.

        ``backend`` picks the simulator backend for this request
        (``"counts"`` / ``"sim"`` / ``"sim-fused"``); ``timing`` is the
        legacy boolean spelling.  Explicit per-request arguments beat
        the service defaults.
        """
        x = check_operands(handle.matrix, x)
        d = int(x.shape[1])
        with _span("serve.profile", handle=handle.handle_id, d=d) as sp:
            t0 = time.perf_counter()
            self._check_deadline(deadline, "bind/codegen")
            ws, plan, _, codegen_seconds, cold, generated = self._resolve(
                handle, d)
            if self._template_artifact is not None:
                # profiled traffic heats the workspace too: a handle
                # probed exclusively through profile() still promotes.
                # The simulated run serves the captured plan's tier —
                # the template kernel until promotion lands (its
                # simulated results are bit-identical across tiers,
                # like the fast path's)
                self._note_tier_traffic(handle, ws, d)
            self._check_deadline(deadline, "simulated execution")
            if backend is None and timing is None:
                backend = self._config.effective_backend
            resolved = plan.resolve_backend(timing=timing,
                                            backend=backend)
            sp.annotate(backend=resolved, cold=cold)
            if not get_backend(resolved).provides_counters:
                raise ShapeError(
                    f"profile() returns perf counters, which backend "
                    f"{resolved!r} does not produce; use multiply() for "
                    f"the plain product or a simulator backend "
                    f"(counts/sim/sim-fused)")
            # the workspace's mapped segments are shared mutable state:
            # serialize concurrent profiles of the same (handle, d)
            with ws.lock:
                # exec clock starts inside the lock: wait time behind a
                # contended workspace must not inflate exec_seconds
                t1 = time.perf_counter()
                result = plan.refresh(x).execute(backend=resolved)
                y = result.y.copy()
            t2 = time.perf_counter()
            with self._stripe(handle.handle_id).lock:
                self.stats.handle(handle.handle_id, handle.name).observe(
                    t2 - t0, cold, exec_seconds=t2 - t1, profiled=True,
                    backend=resolved, tier=self._plan_tier(plan))
        return replace(
            result, y=y, codegen_seconds=codegen_seconds,
            system=f"{result.system}-serve",
            # cache_hit mirrors the one-call entry points: True iff the
            # kernel was served from the cache (cold can also mean
            # first-use setup of a workspace whose kernel a same-shaped
            # handle already built)
            cache_hit=not generated,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, drain_seconds: float = 5.0) -> None:
        """Shut the service down cleanly (idempotent).

        New requests are refused with
        :class:`~repro.errors.ServiceClosed`; coalescing batch queues
        are given up to ``drain_seconds`` to drain their in-flight
        batches (a request already past admission completes against the
        references it holds, so nothing hangs even after the drain
        window); every workspace is retired — releasing its mapped
        operand copies and, for a service-private cache, its cached
        kernels — the gather-buffer pool is emptied, and the metrics
        collector deregisters so the registry stops exporting this
        service's series.  Accumulated :class:`HandleStats` survive:
        :meth:`report` still renders the stream history after close.

        Needed wherever services have a bounded life inside a long
        process — a gateway worker shutting down must not leak its
        registry collector or pin its operand arenas until gc happens
        to run.
        """
        if self._closed:
            return
        self._closed = True
        if self._promoter is not None:
            # promotions queued behind the close still run, but their
            # commits see _closed and settle stale; joining here means
            # no pool thread touches service state after teardown
            self._promoter.close(timeout=drain_seconds)
        deadline = time.perf_counter() + drain_seconds
        while self._queues_busy():
            if time.perf_counter() >= deadline:
                break
            time.sleep(0.0005)
        for stripe in self._stripes:
            with stripe.lock:
                dropped = list(stripe.workspaces.values())
                stripe.workspaces.clear()
            for ws in dropped:
                self._retire_workspace(ws, drop_kernel=True)
        with self._registry_lock:
            self._handles.clear()
        self.pool.clear()
        self._collector.dead = True
        get_registry().unregister_collector(self._collector)

    def _queues_busy(self) -> bool:
        """True while any live batch queue has a leader or waiters."""
        for stripe in self._stripes:
            with stripe.lock:
                queues = [ws.queue for ws in stripe.workspaces.values()]
            for queue in queues:
                with queue.lock:
                    if queue.leader or queue.pending:
                        return True
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SpmmService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def lock_stats(self) -> LockStats:
        """Aggregated contention counters over every service lock.

        Covers the registry lock, the kernel-identity guard, every
        stripe lock and every live batch-queue lock, plus the
        accumulated history of retired (evicted/unregistered)
        workspaces' queues.
        """
        total = self._registry_lock.stats() + self._keylock_guard.stats()
        for stripe in self._stripes:
            total = total + stripe.lock.stats()
            with stripe.lock:
                for ws in stripe.workspaces.values():
                    total = total + ws.queue.lock.stats()
        with self._keylock_guard:
            return total + self._retired_locks

    def stats_snapshot(self) -> ServiceStats:
        """An independent copy of every handle's stats.

        Each handle's copy is taken under its owning stripe lock, so
        the fields *within* a handle are mutually consistent even while
        requests are completing — ``report()`` during a multiply storm
        never shows a request counted whose latency is missing.
        """
        copies: dict[int, HandleStats] = {}
        width = len(self._stripes)
        for index, stripe in enumerate(self._stripes):
            with stripe.lock:
                # list(...) first: a concurrent register() adds keys
                # under the registry lock, not this stripe's lock
                for handle_id, hs in list(self.stats.handles.items()):
                    if handle_id % width == index:
                        copies[handle_id] = hs.snapshot()
        return ServiceStats(handles=copies)

    def snapshot(self) -> ServiceSnapshot:
        """One consistent observability snapshot of the whole service."""
        tier = None
        if self._template_artifact is not None:
            tier = self.tier_stats.snapshot(
                mode=self.tier_mode,
                template=self._template_artifact.system.name,
                promote_after=self.promote_after)
        return ServiceSnapshot(
            stats=self.stats_snapshot(),
            cache=self.cache.stats(),
            locks=self.lock_stats(),
            pool=self.pool.stats(),
            workspaces_live=self._live_workspaces(),
            workspace_cap=self.max_workspaces,
            workspace_evictions=self._workspace_evictions,
            autotune_memo=autotune_memo_stats(),
            tier=tier,
        )

    def metric_samples(self) -> list[Sample]:
        """This service's stats as registry samples (the collector
        registered at construction calls this on every registry
        snapshot)."""
        return self.snapshot().metric_samples(service=self.obs_label)

    def report(self) -> str:
        """Human-readable service-wide stats (live Table IV).

        Renders one :meth:`snapshot`, so every line describes the same
        instant (summary fields are byte-compatible with the historical
        live-state report)."""
        return self.snapshot().render()
