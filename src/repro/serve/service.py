"""`SpmmService`: an SpMM request server that amortizes kernel setup.

The paper's trade-off (Table IV) is codegen time vs. specialized-kernel
speedup, measured for a single run.  A service turns that into a
streaming question: register a matrix once, pay autotuning
(:func:`repro.core.autotune.choose_split`) and code generation on the
first request, and serve every later request from the
:class:`~repro.serve.cache.KernelCache` — the amortized codegen
overhead converges to zero as traffic accumulates.

Since the :mod:`repro.api` redesign the service is system-agnostic: it
serves any registered :class:`~repro.api.System` (``system="jit"`` by
default, or ``"aot:<personality>"`` / ``"mkl"``), holding one prepared
artifact whose bound plans are the per-``(handle, d)`` workspaces.
Address-free systems amortize their one-time compile across the stream
exactly like JIT codegen.

Two request paths, mirroring :class:`repro.core.engine.JitSpMM`:

* :meth:`SpmmService.multiply` — production path; numpy fast backend
  over the tuned partitioning, bit-equal to the generated kernel;
* :meth:`SpmmService.profile` — opt-in simulated path that re-executes
  the *cached* kernel on the persistent per-handle address space
  (operand segments are zero-copy views, so a new ``X`` is written in
  place and the baked addresses stay valid).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.api.config import ExecutionConfig
from repro.api.registry import get_system
from repro.exec import get_backend
from repro.core.autotune import SplitChoice
from repro.core.engine import check_operands, multiply_partitioned
from repro.core.runner import RunResult
from repro.errors import ShapeError
from repro.isa.isainfo import IsaLevel
from repro.serve.cache import KernelCache
from repro.serve.stats import HandleStats, ServiceStats
from repro.sparse.csr import CsrMatrix

__all__ = ["MatrixHandle", "SpmmService"]

#: default retained-kernel budget: plenty for dozens of live kernels
#: (a generated SpMM kernel encodes to a few hundred bytes)
DEFAULT_CACHE_BUDGET = 1 << 20

#: default cap on live per-(handle, d) workspaces: bounds the simulated
#: memory pinned by multiply-only traffic over many shapes (each
#: workspace maps full operand copies), while staying far above any
#: realistic working set of concurrently hot shapes
DEFAULT_MAX_WORKSPACES = 64


@dataclass(frozen=True)
class MatrixHandle:
    """An opaque ticket for one registered matrix."""

    handle_id: int
    matrix: CsrMatrix = field(compare=False, repr=False)
    name: str = field(default="", compare=False)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (f"MatrixHandle(#{self.handle_id}{label}, "
                f"{self.matrix.nrows}x{self.matrix.ncols}, "
                f"nnz={self.matrix.nnz})")


@dataclass
class _Workspace:
    """Per-(handle, d) state: one bound plan + its execution lock."""

    #: the pipeline's stage-2 product: tuned split, mapped persistent
    #: address space, partitions, and (once resolved) the kernel
    plan: object
    #: serializes simulated runs over this address space (its mapped
    #: X/Y segments are shared mutable state); fast-path requests never
    #: take it, so a long profile stalls only concurrent profiles of
    #: this same (handle, d).  Codegen has its own per-identity lock in
    #: the service.
    lock: threading.Lock = field(default_factory=threading.Lock)


class SpmmService:
    """Serve ``Y = A @ X`` requests with cached, autotuned kernels.

    Args:
        threads: Worker threads each kernel is generated/partitioned for.
        split: ``"auto"`` (default: tune per matrix — JIT only), or a
            fixed ``"row"`` / ``"nnz"`` / ``"merge"``.
        isa: ISA level for JIT code generation (AOT personalities and
            MKL fix their own).
        timing: Model caches/pipeline on the simulated ``profile`` path
            (legacy spelling of ``backend``: sim vs counts).
        backend: Default execution backend for ``profile`` requests —
            any :func:`repro.exec.get_backend`-resolvable name
            (``"counts"``, ``"sim"``, ``"sim-fused"``, ...); ``None``
            defers to ``timing``.  ``multiply`` always serves on the
            ``"native"`` backend.  Per-request overrides win;
            :meth:`report` breaks traffic down per backend.
        cache: Shared :class:`KernelCache`; a private one (with
            ``cache_budget_bytes``) is created when omitted.
        cache_budget_bytes: Byte budget for the private cache.
        l1 / l2: Cache-geometry overrides for the simulated ``profile``
            path (same knobs as :func:`repro.core.runner.run_jit`, used
            by the bench harness to scale caches with dataset twins).
        system: Registered system name to serve (``"jit"`` default;
            any :func:`repro.api.get_system`-resolvable name works —
            the service's workspaces are that system's bound plans).
        max_workspaces: LRU cap on live (handle, d) workspaces (None =
            unbounded).  Evicting a workspace releases its mapped
            operand copies but not its cached kernel, so a re-requested
            shape pays re-mapping, never re-codegen.

    Resource model: the kernel cache's byte budget bounds *compiled
    code*; each live (handle, d) pair additionally pins a workspace
    (mapped operand copies sized by the matrix and width), LRU-bounded
    by ``max_workspaces``.  ``multiply`` always ensures the kernel
    exists (codegen on first use or after an eviction) so the cached
    program stays warm for ``profile`` and the codegen-once-per-identity
    accounting holds.
    """

    def __init__(
        self,
        threads: int = 8,
        split: str = "auto",
        isa: IsaLevel | str = IsaLevel.AVX512,
        timing: bool = False,
        backend: str | None = None,
        cache: KernelCache | None = None,
        cache_budget_bytes: int = DEFAULT_CACHE_BUDGET,
        l1=None,
        l2=None,
        system: str = "jit",
        max_workspaces: int | None = DEFAULT_MAX_WORKSPACES,
    ) -> None:
        self._private_cache = cache is None
        self.cache = cache if cache is not None else KernelCache(
            budget_bytes=cache_budget_bytes)
        self._system = get_system(system)
        if split == "auto" and not self._system.supports_autotune:
            raise ShapeError(
                f"split='auto' autotunes via the JIT cost model; system "
                f"{system!r} serves fixed splits (row/nnz/merge)")
        # validation (thread count, split name, backend name, ...)
        # happens here, once, for the contract every entry point shares
        self._config = ExecutionConfig(
            split=split, threads=threads, isa=isa, timing=timing,
            backend=backend, l1=l1, l2=l2, cache=self.cache,
        )
        self._artifact = self._system.prepare(self._config)
        if max_workspaces is not None and max_workspaces <= 0:
            raise ShapeError(
                f"max_workspaces must be positive or None, got "
                f"{max_workspaces}")
        self.system = self._system.name
        self.threads = threads
        self.split = split
        self.isa = self._config.isa
        self.timing = timing
        self.backend = self._config.backend
        self.l1 = l1
        self.l2 = l2
        self.max_workspaces = max_workspaces
        self.stats = ServiceStats()
        self._handles: dict[int, MatrixHandle] = {}
        self._workspaces: OrderedDict[tuple[int, int], _Workspace] = (
            OrderedDict())
        self._workspace_evictions = 0
        # codegen serialization is keyed on kernel *identity*, not on
        # the workspace: same-shaped handles share one kernel, and two
        # concurrent cold requests must not both generate it
        self._keylocks: dict = {}
        self._next_id = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, matrix: CsrMatrix, name: str = "") -> MatrixHandle:
        """Register a matrix for serving; returns its handle.

        Registration is cheap — autotuning and code generation are
        deferred to the first request for each dense width ``d``.
        """
        with self._lock:
            handle = MatrixHandle(self._next_id, matrix,
                                  name or matrix.name)
            self._handles[handle.handle_id] = handle
            self._next_id += 1
            self.stats.handle(handle.handle_id, handle.name)
        return handle

    def unregister(self, handle: MatrixHandle) -> None:
        """Release a handle: its workspaces and cached kernels are
        dropped, so a long-lived service does not pin operand buffers
        for matrices it no longer serves.

        The handle's accumulated :class:`HandleStats` are kept (the
        stream history stays in :meth:`report`).  Requests already in
        flight complete against their own references; new requests for
        the handle raise :class:`~repro.errors.ShapeError`.  Cached
        kernels are dropped only from a service-private cache, and only
        when no surviving workspace shares the kernel identity (same-
        shaped matrices — and all users of an address-free template —
        legitimately share one cached kernel); an externally supplied
        cache is never mutated here.
        """
        self._validate_handle(handle)
        with self._lock:
            self._handles.pop(handle.handle_id, None)
            dropped = [self._workspaces.pop(key)
                       for key in list(self._workspaces)
                       if key[0] == handle.handle_id]
            live = {ws.plan.key for ws in self._workspaces.values()}
            for ws in dropped:
                key = ws.plan.key
                if key not in live:
                    self._keylocks.pop(key, None)
                    if self._private_cache:
                        self.cache.discard(key)

    def handle_stats(self, handle: MatrixHandle) -> HandleStats:
        """The request statistics accumulated for ``handle``."""
        self._validate_handle(handle)
        with self._lock:
            return self.stats.handle(handle.handle_id, handle.name)

    def _validate_handle(self, handle: MatrixHandle) -> None:
        known = self._handles.get(handle.handle_id)
        if known is None or known.matrix is not handle.matrix:
            raise ShapeError(f"unknown handle {handle!r}; "
                             "register the matrix with this service first")

    # ------------------------------------------------------------------
    # Kernel resolution
    # ------------------------------------------------------------------
    def _make_workspace(self, handle: MatrixHandle, d: int) -> _Workspace:
        x0 = np.zeros((handle.matrix.ncols, d), dtype=np.float32)
        # stage 2 only: autotune + operand mapping + partitioning; the
        # kernel stays unresolved so plan inspection costs no codegen
        plan = self._artifact.bind(handle.matrix, x0, ensure_kernel=False,
                                   name_prefix="serve")
        return _Workspace(plan=plan)

    def _workspace(self, handle: MatrixHandle,
                   d: int) -> tuple[_Workspace, bool]:
        """Get or create the tuned workspace for (handle, d) — no codegen.

        Returns ``(workspace, created)``; created marks the first
        request for this (handle, d), which paid autotune + mapping.
        """
        self._validate_handle(handle)
        key = (handle.handle_id, d)
        with self._lock:
            ws = self._workspaces.get(key)
            if ws is not None:
                self._workspaces.move_to_end(key)
                return ws, False
        # autotune + operand mapping happen outside the service lock;
        # a concurrent duplicate loses the setdefault race and is
        # simply dropped
        built = self._make_workspace(handle, d)
        with self._lock:
            # re-check liveness: an unregister() racing with us must
            # not be followed by an insertion it can never sweep
            self._validate_handle(handle)
            ws = self._workspaces.setdefault(key, built)
            self._workspaces.move_to_end(key)
            if ws is built:
                self._evict_workspaces()
        return ws, ws is built

    def _evict_workspaces(self) -> None:
        """Drop least-recently-used workspaces beyond the cap.

        Called under the service lock.  The just-touched entry sits at
        the MRU end, so it is never its own victim; in-flight requests
        holding an evicted workspace complete against their reference,
        and the kernel cache is untouched (re-requesting an evicted
        shape re-maps operands but never re-generates code).
        """
        if self.max_workspaces is None:
            return
        while len(self._workspaces) > self.max_workspaces:
            _, evicted = self._workspaces.popitem(last=False)
            self._workspace_evictions += 1
            # drop the per-identity codegen lock when no survivor shares
            # it (mirroring unregister) so heavy shape churn cannot grow
            # _keylocks without bound; a racing generate holding the old
            # lock finishes unharmed — a fresh request merely creates a
            # new lock, risking one duplicated codegen, never corruption
            key = evicted.plan.key
            if all(w.plan.key != key for w in self._workspaces.values()):
                self._keylocks.pop(key, None)

    def _resolve(self, handle: MatrixHandle, d: int):
        """Workspace + kernel for (handle, d).

        Returns ``(workspace, kernel, codegen_seconds, cold,
        generated)`` — generated is True iff kernel construction ran in
        this call (the kernel was not served from the cache); cold is
        True when the request paid one-time setup: the first request for
        this (handle, d) (autotune + operand mapping, even if the kernel
        itself was already cached under a shared key) or a kernel
        construction run (first use, or regeneration after eviction).
        """
        ws, created = self._workspace(handle, d)
        plan = ws.plan
        # lock-free warm path: a long profile() holding ws.lock must not
        # stall concurrent numpy-path requests (KernelCache locks itself)
        kernel = self.cache.get(plan.key)
        if kernel is not None:
            plan.attach_kernel(kernel, cache_hit=True, codegen_seconds=0.0)
            return ws, kernel, 0.0, created, False
        with self._lock:
            keylock = self._keylocks.setdefault(plan.key, threading.Lock())
        with keylock:
            # uncounted re-check: the probe above already recorded the
            # miss; a hit here means a peer generated it meanwhile
            kernel = self.cache.peek(plan.key)
            if kernel is not None:
                plan.attach_kernel(kernel, cache_hit=True,
                                   codegen_seconds=0.0)
                return ws, kernel, 0.0, created, False
            kernel, seconds = self._system.build_kernel(plan)
            with self._lock:
                # don't re-insert behind a racing unregister: cache the
                # kernel only while some workspace still carries its
                # identity (this request is still served either way);
                # the put stays under the service lock so unregister
                # cannot interleave between check and insertion
                if any(w.plan.key == plan.key
                       for w in self._workspaces.values()):
                    self.cache.put(plan.key, kernel,
                                   self._system.kernel_nbytes(kernel))
        plan.attach_kernel(kernel, cache_hit=False, codegen_seconds=seconds)
        with self._lock:
            self.stats.handle(handle.handle_id, handle.name).record_codegen(
                seconds)
        return ws, kernel, seconds, True, True

    def kernel(self, handle: MatrixHandle, d: int):
        """The (cached) compiled kernel serving (handle, d) requests.

        Usable as a prefetch: generation triggered here is charged to
        the handle's codegen stats like any cold request, so later
        ``multiply`` calls are warm.
        """
        _, kernel, _, _, _ = self._resolve(handle, d)
        return kernel

    def choice(self, handle: MatrixHandle, d: int) -> SplitChoice | None:
        """The autotuner's verdict for (handle, d); None for fixed splits.

        Tunes (and maps operands) if this (handle, d) is new, but never
        generates code — inspecting the plan costs no codegen.
        """
        ws, _ = self._workspace(handle, d)
        return ws.plan.choice

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def multiply(self, handle: MatrixHandle, x: np.ndarray) -> np.ndarray:
        """Serve one ``Y = A @ X`` request on the fast numpy backend.

        The first request for a given ``x.shape[1]`` autotunes and
        builds the kernel (cold); later requests hit the cache and pay
        execution only.
        """
        x = check_operands(handle.matrix, x)
        t0 = time.perf_counter()
        ws, _, _, cold, _ = self._resolve(handle, int(x.shape[1]))
        t1 = time.perf_counter()
        y = multiply_partitioned(handle.matrix, x, ws.plan.ranges)
        t2 = time.perf_counter()
        with self._lock:
            self.stats.handle(handle.handle_id, handle.name).observe(
                t2 - t0, cold, exec_seconds=t2 - t1, backend="native")
        return y

    def profile(self, handle: MatrixHandle, x: np.ndarray,
                timing: bool | None = None,
                backend: str | None = None) -> RunResult:
        """Serve one request on the simulated machine, with counters.

        Re-executes the cached kernel in the handle's persistent address
        space: the new ``X`` is written into the mapped segment the
        kernel reads, ``Y`` and the dispatch state are reset, and the
        simulated threads run the identical instruction stream.

        ``backend`` picks the simulator backend for this request
        (``"counts"`` / ``"sim"`` / ``"sim-fused"``); ``timing`` is the
        legacy boolean spelling.  Explicit per-request arguments beat
        the service defaults.
        """
        x = check_operands(handle.matrix, x)
        t0 = time.perf_counter()
        ws, _, codegen_seconds, cold, generated = self._resolve(
            handle, int(x.shape[1]))
        if backend is None and timing is None:
            backend = self._config.effective_backend
        resolved = ws.plan.resolve_backend(timing=timing, backend=backend)
        if not get_backend(resolved).provides_counters:
            raise ShapeError(
                f"profile() returns perf counters, which backend "
                f"{resolved!r} does not produce; use multiply() for the "
                f"plain product or a simulator backend "
                f"(counts/sim/sim-fused)")
        # the workspace's mapped segments are shared mutable state:
        # serialize concurrent profiles of the same (handle, d)
        with ws.lock:
            # exec clock starts inside the lock: wait time behind a
            # contended workspace must not inflate exec_seconds
            t1 = time.perf_counter()
            result = ws.plan.refresh(x).execute(backend=resolved)
            y = result.y.copy()
        t2 = time.perf_counter()
        with self._lock:
            self.stats.handle(handle.handle_id, handle.name).observe(
                t2 - t0, cold, exec_seconds=t2 - t1, profiled=True,
                backend=resolved)
        return replace(
            result, y=y, codegen_seconds=codegen_seconds,
            system=f"{result.system}-serve",
            # cache_hit mirrors the one-call entry points: True iff the
            # kernel was served from the cache (cold can also mean
            # first-use setup of a workspace whose kernel a same-shaped
            # handle already built)
            cache_hit=not generated,
        )

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable service-wide stats (live Table IV)."""
        with self._lock:
            cap = ("unbounded" if self.max_workspaces is None
                   else self.max_workspaces)
            return "\n".join([
                self.stats.render(self.cache.stats()),
                f"workspaces: {len(self._workspaces)} live (cap {cap}), "
                f"{self._workspace_evictions} evicted",
            ])
