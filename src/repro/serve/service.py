"""`SpmmService`: an SpMM request server that amortizes JIT codegen.

The paper's trade-off (Table IV) is codegen time vs. specialized-kernel
speedup, measured for a single run.  A service turns that into a
streaming question: register a matrix once, pay autotuning
(:func:`repro.core.autotune.choose_split`) and code generation on the
first request, and serve every later request from the
:class:`~repro.serve.cache.KernelCache` — the amortized codegen
overhead converges to zero as traffic accumulates.

Two request paths, mirroring :class:`repro.core.engine.JitSpMM`:

* :meth:`SpmmService.multiply` — production path; numpy fast backend
  over the tuned partitioning, bit-equal to the generated kernel;
* :meth:`SpmmService.profile` — opt-in simulated path that re-executes
  the *cached* :class:`~repro.isa.assembler.Program` on the persistent
  per-handle address space (operand segments are zero-copy views, so a
  new ``X`` is written in place and the baked addresses stay valid).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.autotune import SplitChoice, choose_split
from repro.core.codegen import CodegenOutput, JitCodegen, JitKernelSpec
from repro.core.engine import (
    SPLITS,
    check_operands,
    multiply_partitioned,
)
from repro.core.runner import (
    MappedOperands,
    RunResult,
    jit_thread_specs,
    map_jit_operands,
)
from repro.core.split import partition
from repro.errors import ShapeError
from repro.isa.isainfo import IsaLevel
from repro.machine import CpuConfig, Machine
from repro.serve.cache import KernelCache, jit_key
from repro.serve.stats import HandleStats, ServiceStats
from repro.sparse.csr import CsrMatrix

__all__ = ["MatrixHandle", "SpmmService"]

#: default retained-kernel budget: plenty for dozens of live kernels
#: (a generated SpMM kernel encodes to a few hundred bytes)
DEFAULT_CACHE_BUDGET = 1 << 20


@dataclass(frozen=True)
class MatrixHandle:
    """An opaque ticket for one registered matrix."""

    handle_id: int
    matrix: CsrMatrix = field(compare=False, repr=False)
    name: str = field(default="", compare=False)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (f"MatrixHandle(#{self.handle_id}{label}, "
                f"{self.matrix.nrows}x{self.matrix.ncols}, "
                f"nnz={self.matrix.nnz})")


@dataclass
class _Workspace:
    """Per-(handle, d) state: tuned plan + persistent address space."""

    operands: MappedOperands
    spec: JitKernelSpec
    choice: SplitChoice | None
    split: str
    dynamic: bool
    ranges: list[tuple[int, int]]      # numpy fast-path row ranges
    partitions: list[tuple[int, int]]  # simulated thread ranges (static)
    #: serializes simulated runs over this address space (its mapped
    #: X/Y segments are shared mutable state); fast-path requests never
    #: take it, so a long profile stalls only concurrent profiles of
    #: this same (handle, d).  Codegen has its own per-identity lock in
    #: the service.
    lock: threading.Lock = field(default_factory=threading.Lock)


class SpmmService:
    """Serve ``Y = A @ X`` requests with cached, autotuned JIT kernels.

    Args:
        threads: Worker threads each kernel is generated/partitioned for.
        split: ``"auto"`` (default: tune per matrix), or a fixed
            ``"row"`` / ``"nnz"`` / ``"merge"``.
        isa: ISA level for code generation.
        timing: Model caches/pipeline on the simulated ``profile`` path.
        cache: Shared :class:`KernelCache`; a private one (with
            ``cache_budget_bytes``) is created when omitted.
        cache_budget_bytes: Byte budget for the private cache.
        l1 / l2: Cache-geometry overrides for the simulated ``profile``
            path (same knobs as :func:`repro.core.runner.run_jit`, used
            by the bench harness to scale caches with dataset twins).

    Resource model: the kernel cache's byte budget bounds *compiled
    code*; each live (handle, d) pair additionally pins a workspace
    (mapped operand copies sized by the matrix and width) until
    :meth:`unregister`.  Workspace eviction / lazy mapping for
    multiply-only traffic is deliberate future work — today the caller
    manages workspace lifetime through registration.  ``multiply``
    always ensures the kernel exists (codegen on first use or after an
    eviction) so the cached program stays warm for ``profile`` and the
    codegen-once-per-identity accounting holds.
    """

    def __init__(
        self,
        threads: int = 8,
        split: str = "auto",
        isa: IsaLevel | str = IsaLevel.AVX512,
        timing: bool = False,
        cache: KernelCache | None = None,
        cache_budget_bytes: int = DEFAULT_CACHE_BUDGET,
        l1=None,
        l2=None,
    ) -> None:
        if threads <= 0:
            raise ShapeError(f"thread count must be positive, got {threads}")
        if split not in SPLITS:
            raise ShapeError(
                f"unknown split {split!r}; expected one of {SPLITS}")
        self.threads = threads
        self.split = split
        self.isa = IsaLevel.parse(isa)
        self.timing = timing
        self.l1 = l1
        self.l2 = l2
        self._private_cache = cache is None
        self.cache = cache if cache is not None else KernelCache(
            budget_bytes=cache_budget_bytes)
        self.stats = ServiceStats()
        self._handles: dict[int, MatrixHandle] = {}
        self._workspaces: dict[tuple[int, int], _Workspace] = {}
        # codegen serialization is keyed on kernel *identity*, not on
        # the workspace: same-shaped handles share one kernel, and two
        # concurrent cold requests must not both generate it
        self._keylocks: dict = {}
        self._next_id = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, matrix: CsrMatrix, name: str = "") -> MatrixHandle:
        """Register a matrix for serving; returns its handle.

        Registration is cheap — autotuning and code generation are
        deferred to the first request for each dense width ``d``.
        """
        with self._lock:
            handle = MatrixHandle(self._next_id, matrix,
                                  name or matrix.name)
            self._handles[handle.handle_id] = handle
            self._next_id += 1
            self.stats.handle(handle.handle_id, handle.name)
        return handle

    def unregister(self, handle: MatrixHandle) -> None:
        """Release a handle: its workspaces and cached kernels are
        dropped, so a long-lived service does not pin operand buffers
        for matrices it no longer serves.

        The handle's accumulated :class:`HandleStats` are kept (the
        stream history stays in :meth:`report`).  Requests already in
        flight complete against their own references; new requests for
        the handle raise :class:`~repro.errors.ShapeError`.  Cached
        kernels are dropped only from a service-private cache, and only
        when no surviving workspace shares the kernel identity (same-
        shaped matrices legitimately share one cached kernel); an
        externally supplied cache is never mutated here.
        """
        self._validate_handle(handle)
        with self._lock:
            self._handles.pop(handle.handle_id, None)
            dropped = [self._workspaces.pop(key)
                       for key in list(self._workspaces)
                       if key[0] == handle.handle_id]
            live = {jit_key(ws.spec, ws.dynamic)
                    for ws in self._workspaces.values()}
            for ws in dropped:
                key = jit_key(ws.spec, ws.dynamic)
                if key not in live:
                    self._keylocks.pop(key, None)
                    if self._private_cache:
                        self.cache.discard(key)

    def handle_stats(self, handle: MatrixHandle) -> HandleStats:
        """The request statistics accumulated for ``handle``."""
        self._validate_handle(handle)
        with self._lock:
            return self.stats.handle(handle.handle_id, handle.name)

    def _validate_handle(self, handle: MatrixHandle) -> None:
        known = self._handles.get(handle.handle_id)
        if known is None or known.matrix is not handle.matrix:
            raise ShapeError(f"unknown handle {handle!r}; "
                             "register the matrix with this service first")

    # ------------------------------------------------------------------
    # Kernel resolution
    # ------------------------------------------------------------------
    def _make_workspace(self, handle: MatrixHandle, d: int) -> _Workspace:
        matrix = handle.matrix
        choice = None
        if self.split == "auto":
            choice = choose_split(matrix, d, self.threads, self.isa)
            split, dynamic, batch = choice.split, choice.dynamic, choice.batch
        else:
            split = self.split
            dynamic = None   # map_jit_operands applies the contract
            batch = None
        x0 = np.zeros((matrix.ncols, d), dtype=np.float32)
        operands, spec, dynamic, partitions = map_jit_operands(
            matrix, x0, split=split, threads=self.threads,
            dynamic=dynamic, batch=batch, isa=self.isa,
        )
        ranges = (partition(matrix, self.threads, "row") if dynamic
                  else partitions)
        return _Workspace(
            operands=operands, spec=spec, choice=choice, split=split,
            dynamic=dynamic, ranges=ranges, partitions=partitions,
        )

    def _workspace(self, handle: MatrixHandle,
                   d: int) -> tuple[_Workspace, bool]:
        """Get or create the tuned workspace for (handle, d) — no codegen.

        Returns ``(workspace, created)``; created marks the first
        request for this (handle, d), which paid autotune + mapping.
        """
        self._validate_handle(handle)
        key = (handle.handle_id, d)
        with self._lock:
            ws = self._workspaces.get(key)
        if ws is not None:
            return ws, False
        # autotune + operand mapping happen outside the service lock;
        # a concurrent duplicate loses the setdefault race and is
        # simply dropped
        built = self._make_workspace(handle, d)
        with self._lock:
            # re-check liveness: an unregister() racing with us must
            # not be followed by an insertion it can never sweep
            self._validate_handle(handle)
            ws = self._workspaces.setdefault(key, built)
        return ws, ws is built

    def _resolve(
        self, handle: MatrixHandle, d: int,
    ) -> tuple[_Workspace, CodegenOutput, float, bool, bool]:
        """Workspace + kernel for (handle, d).

        Returns ``(workspace, output, codegen_seconds, cold,
        generated)`` — generated is True iff code generation ran in
        this call (the kernel was not served from the cache); cold is
        True when the request paid one-time setup: the first request for
        this (handle, d) (autotune + operand mapping, even if the kernel
        itself was already cached under a shared key) or a code
        generation run (first kernel use, or regeneration after
        eviction).
        """
        ws, created = self._workspace(handle, d)
        # lock-free warm path: a long profile() holding ws.lock must not
        # stall concurrent numpy-path requests (KernelCache locks itself)
        output = self.cache.get_jit(ws.spec, ws.dynamic)
        if output is not None:
            return ws, output, 0.0, created, False
        key = jit_key(ws.spec, ws.dynamic)
        with self._lock:
            keylock = self._keylocks.setdefault(key, threading.Lock())
        with keylock:
            # uncounted re-check: the probe above already recorded the
            # miss; a hit here means a peer generated it meanwhile
            output = self.cache.peek(key)
            if output is not None:
                return ws, output, 0.0, created, False
            output = JitCodegen(ws.spec).generate(dynamic=ws.dynamic)
            with self._lock:
                # don't re-insert behind a racing unregister: cache the
                # kernel only while some workspace still carries its
                # identity (this request is still served either way);
                # the put stays under the service lock so unregister
                # cannot interleave between check and insertion
                if any(jit_key(w.spec, w.dynamic) == key
                       for w in self._workspaces.values()):
                    self.cache.put(key, output, output.code_bytes)
        with self._lock:
            self.stats.handle(handle.handle_id, handle.name).record_codegen(
                output.codegen_seconds)
        return ws, output, output.codegen_seconds, True, True

    def kernel(self, handle: MatrixHandle, d: int) -> CodegenOutput:
        """The (cached) generated kernel serving (handle, d) requests.

        Usable as a prefetch: generation triggered here is charged to
        the handle's codegen stats like any cold request, so later
        ``multiply`` calls are warm.
        """
        _, output, _, _, _ = self._resolve(handle, d)
        return output

    def choice(self, handle: MatrixHandle, d: int) -> SplitChoice | None:
        """The autotuner's verdict for (handle, d); None for fixed splits.

        Tunes (and maps operands) if this (handle, d) is new, but never
        generates code — inspecting the plan costs no codegen.
        """
        ws, _ = self._workspace(handle, d)
        return ws.choice

    # ------------------------------------------------------------------
    # Request paths
    # ------------------------------------------------------------------
    def multiply(self, handle: MatrixHandle, x: np.ndarray) -> np.ndarray:
        """Serve one ``Y = A @ X`` request on the fast numpy backend.

        The first request for a given ``x.shape[1]`` autotunes and
        generates the kernel (cold); later requests hit the cache and
        pay execution only.
        """
        x = check_operands(handle.matrix, x)
        t0 = time.perf_counter()
        ws, _, _, cold, _ = self._resolve(handle, int(x.shape[1]))
        t1 = time.perf_counter()
        y = multiply_partitioned(handle.matrix, x, ws.ranges)
        t2 = time.perf_counter()
        with self._lock:
            self.stats.handle(handle.handle_id, handle.name).observe(
                t2 - t0, cold, exec_seconds=t2 - t1)
        return y

    def profile(self, handle: MatrixHandle, x: np.ndarray,
                timing: bool | None = None) -> RunResult:
        """Serve one request on the simulated machine, with counters.

        Re-executes the cached program in the handle's persistent
        address space: the new ``X`` is written into the mapped segment
        the kernel's baked addresses already point at, ``Y`` and the
        dynamic dispatcher's ``NEXT`` counter are reset, and the
        simulated threads run the identical instruction stream.
        """
        x = check_operands(handle.matrix, x)
        t0 = time.perf_counter()
        ws, output, codegen_seconds, cold, generated = self._resolve(
            handle, int(x.shape[1]))
        specs = jit_thread_specs(output.program, self.threads,
                                 ws.partitions, ws.dynamic,
                                 name_prefix="serve")
        timing = self.timing if timing is None else timing
        # the workspace's mapped segments are shared mutable state:
        # serialize concurrent profiles of the same (handle, d)
        with ws.lock:
            # exec clock starts inside the lock: wait time behind a
            # contended workspace must not inflate exec_seconds
            t1 = time.perf_counter()
            operands = ws.operands
            operands.x_host[:] = x
            operands.y_host[:] = 0.0
            if ws.spec.next_addr:
                operands.memory.write_int(ws.spec.next_addr, 8, 0)
            machine = Machine(operands.memory, CpuConfig(
                timing=timing, l1=self.l1, l2=self.l2))
            merged, per_thread = machine.run(specs)
            y = operands.y_host.copy()
        t2 = time.perf_counter()
        with self._lock:
            self.stats.handle(handle.handle_id, handle.name).observe(
                t2 - t0, cold, exec_seconds=t2 - t1, profiled=True)
        return RunResult(
            y=y, counters=merged,
            per_thread=per_thread, program=output.program,
            codegen_seconds=codegen_seconds, code_bytes=output.code_bytes,
            system="jit-serve", split=ws.split, threads=self.threads,
            # cache_hit mirrors run_jit: True iff the kernel was served
            # from the cache (cold can also mean first-use setup of a
            # workspace whose kernel a same-shaped handle already built)
            partitions=ws.partitions, cache_hit=not generated,
        )

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable service-wide stats (live Table IV)."""
        with self._lock:
            return self.stats.render(self.cache.stats())
