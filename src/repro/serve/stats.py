"""Request statistics for the serving subsystem.

The live version of the paper's Table IV: where the bench measures
codegen overhead for one run, a service measures it over a *stream* —
codegen happens once per kernel and its cost is divided across every
request that reuses it, so the amortized overhead (the same
``codegen / (codegen + execution)`` ratio, summed over the stream)
converges toward zero as traffic accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HandleStats", "LatencyStat", "ServiceStats"]


@dataclass
class LatencyStat:
    """Streaming min/mean/max over observed wall-clock latencies."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def render(self) -> str:
        if not self.count:
            return "n=0"
        return (f"n={self.count} mean={self.mean_seconds * 1e3:.3f}ms "
                f"min={self.min_seconds * 1e3:.3f}ms "
                f"max={self.max_seconds * 1e3:.3f}ms")


@dataclass
class HandleStats:
    """Per-registered-matrix request accounting."""

    name: str = ""
    requests: int = 0
    profiled_requests: int = 0
    codegen_runs: int = 0
    codegen_seconds: float = 0.0
    exec_seconds: float = 0.0
    cold: LatencyStat = field(default_factory=LatencyStat)
    warm: LatencyStat = field(default_factory=LatencyStat)
    #: requests per execution backend (``"native"`` for the fast path,
    #: the resolved simulator backend for profiled requests)
    backends: dict[str, int] = field(default_factory=dict)

    def record_codegen(self, seconds: float) -> None:
        """Record one code-generation run (whether or not it served a
        request — prefetching via ``SpmmService.kernel`` counts too)."""
        self.codegen_runs += 1
        self.codegen_seconds += seconds

    def observe(self, seconds: float, cold: bool,
                exec_seconds: float | None = None,
                profiled: bool = False,
                backend: str | None = None) -> None:
        """Record one served request.

        ``seconds`` is the request's total wall latency (what the
        cold/warm stats track); ``exec_seconds`` is the pure execution
        part — excluding codegen, autotuning and operand mapping, which
        are one-time cold costs — and is the denominator the amortized
        Table-IV ratio accumulates.  Defaults to ``seconds`` when the
        request had no setup component.  ``backend`` attributes the
        request to one execution backend's traffic bucket.
        """
        self.requests += 1
        if profiled:
            self.profiled_requests += 1
        if cold:
            self.cold.observe(seconds)
        else:
            self.warm.observe(seconds)
        if backend:
            self.backends[backend] = self.backends.get(backend, 0) + 1
        self.exec_seconds += max(
            0.0, seconds if exec_seconds is None else exec_seconds)

    def codegen_overhead(self) -> float:
        """Amortized Table-IV metric: codegen time / total stream time."""
        total = self.codegen_seconds + self.exec_seconds
        return self.codegen_seconds / total if total else 0.0

    def render(self) -> str:
        label = self.name or "<anonymous>"
        lines = [
            f"{label}: {self.requests} requests "
            f"({self.codegen_runs} codegen runs, "
            f"{self.profiled_requests} profiled)",
            f"  cold  {self.cold.render()}",
            f"  warm  {self.warm.render()}",
            f"  codegen {self.codegen_seconds * 1e3:.3f}ms total, "
            f"amortized overhead {100.0 * self.codegen_overhead():.4f}%",
        ]
        if self.backends:
            lines.append("  backends " + " ".join(
                f"{name}={count}"
                for name, count in sorted(self.backends.items())))
        return "\n".join(lines)


@dataclass
class ServiceStats:
    """Service-wide aggregation over every handle's stream."""

    handles: dict[int, HandleStats] = field(default_factory=dict)

    def handle(self, handle_id: int, name: str = "") -> HandleStats:
        """The (created-on-demand) stats bucket for one handle."""
        stats = self.handles.get(handle_id)
        if stats is None:
            stats = self.handles[handle_id] = HandleStats(name=name)
        return stats

    @property
    def requests(self) -> int:
        return sum(h.requests for h in self.handles.values())

    @property
    def codegen_runs(self) -> int:
        return sum(h.codegen_runs for h in self.handles.values())

    @property
    def codegen_seconds(self) -> float:
        return sum(h.codegen_seconds for h in self.handles.values())

    @property
    def exec_seconds(self) -> float:
        return sum(h.exec_seconds for h in self.handles.values())

    @property
    def backend_traffic(self) -> dict[str, int]:
        """Service-wide requests per execution backend."""
        traffic: dict[str, int] = {}
        for handle in self.handles.values():
            for name, count in handle.backends.items():
                traffic[name] = traffic.get(name, 0) + count
        return traffic

    def codegen_overhead(self) -> float:
        """Amortized Table-IV metric across all handles."""
        total = self.codegen_seconds + self.exec_seconds
        return self.codegen_seconds / total if total else 0.0

    def render(self, cache_stats=None) -> str:
        lines = [
            f"SpmmService: {self.requests} requests over "
            f"{len(self.handles)} handles, {self.codegen_runs} codegen "
            f"runs, amortized codegen overhead "
            f"{100.0 * self.codegen_overhead():.4f}%",
        ]
        traffic = self.backend_traffic
        if traffic:
            lines.append("traffic by backend: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(traffic.items())))
        if cache_stats is not None:
            lines.append(cache_stats.render())
        lines.extend(stats.render()
                     for _, stats in sorted(self.handles.items()))
        return "\n".join(lines)
