"""Request statistics for the serving subsystem.

The live version of the paper's Table IV: where the bench measures
codegen overhead for one run, a service measures it over a *stream* —
codegen happens once per kernel and its cost is divided across every
request that reuses it, so the amortized overhead (the same
``codegen / (codegen + execution)`` ratio, summed over the stream)
converges toward zero as traffic accumulates.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["HandleStats", "LatencyStat", "LockStats", "ServiceStats",
           "TimedLock", "render_batch_histogram"]


@dataclass(frozen=True)
class LockStats:
    """Aggregated contention counters over a set of timed locks."""

    acquisitions: int = 0
    waits: int = 0
    wait_seconds: float = 0.0

    def __add__(self, other: "LockStats") -> "LockStats":
        return LockStats(
            acquisitions=self.acquisitions + other.acquisitions,
            waits=self.waits + other.waits,
            wait_seconds=self.wait_seconds + other.wait_seconds,
        )

    @property
    def contention_rate(self) -> float:
        return self.waits / self.acquisitions if self.acquisitions else 0.0

    def render(self) -> str:
        return (f"lock contention: {self.waits}/{self.acquisitions} "
                f"contended acquisitions "
                f"({100.0 * self.contention_rate:.2f}%), "
                f"{1e3 * self.wait_seconds:.3f}ms waited")


class TimedLock:
    """A mutex that counts contended acquisitions and time spent waiting.

    The uncontended path is one extra non-blocking ``acquire`` attempt;
    only a failed attempt pays two clock reads.  Counters are mutated
    while the lock is held, so they need no lock of their own.
    """

    __slots__ = ("_lock", "acquisitions", "waits", "wait_seconds")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.acquisitions = 0
        self.waits = 0
        self.wait_seconds = 0.0

    def __enter__(self) -> "TimedLock":
        if not self._lock.acquire(blocking=False):
            started = time.perf_counter()
            self._lock.acquire()
            self.wait_seconds += time.perf_counter() - started
            self.waits += 1
        self.acquisitions += 1
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()

    def stats(self) -> LockStats:
        """One *consistent* snapshot of the three counters.

        Counters are mutated while the lock is held, so reading them
        field-by-field from another thread can tear (an acquisition
        counted whose wait time is not yet added).  Taking the
        underlying lock — uncounted, so profiling reads never inflate
        the contention they measure — makes the triplet atomic; lock
        hold times in this codebase are all short, bounded sections.
        """
        with self._lock:
            return LockStats(acquisitions=self.acquisitions,
                             waits=self.waits,
                             wait_seconds=self.wait_seconds)


@dataclass
class LatencyStat:
    """Streaming min/mean/max over observed wall-clock latencies."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    def snapshot(self) -> "LatencyStat":
        return LatencyStat(count=self.count,
                           total_seconds=self.total_seconds,
                           min_seconds=self.min_seconds,
                           max_seconds=self.max_seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def render(self) -> str:
        if not self.count:
            return "n=0"
        return (f"n={self.count} mean={self.mean_seconds * 1e3:.3f}ms "
                f"min={self.min_seconds * 1e3:.3f}ms "
                f"max={self.max_seconds * 1e3:.3f}ms")


@dataclass
class HandleStats:
    """Per-registered-matrix request accounting."""

    name: str = ""
    requests: int = 0
    profiled_requests: int = 0
    codegen_runs: int = 0
    codegen_seconds: float = 0.0
    exec_seconds: float = 0.0
    cold: LatencyStat = field(default_factory=LatencyStat)
    warm: LatencyStat = field(default_factory=LatencyStat)
    #: requests per execution backend (``"native"`` for the fast path,
    #: the resolved simulator backend for profiled requests)
    backends: dict[str, int] = field(default_factory=dict)
    #: coalesced-execution histogram: batch size -> executed batches
    #: (a per-request execution is a batch of 1)
    batches: dict[int, int] = field(default_factory=dict)
    #: requests per serving tier (``"template"`` / ``"promoted"`` on a
    #: tiered service; untiered services record no tier traffic)
    tiers: dict[str, int] = field(default_factory=dict)

    def record_batch(self, size: int) -> None:
        """Record one coalesced execution that served ``size`` requests."""
        self.batches[size] = self.batches.get(size, 0) + 1

    def record_codegen(self, seconds: float) -> None:
        """Record one code-generation run (whether or not it served a
        request — prefetching via ``SpmmService.kernel`` counts too)."""
        self.codegen_runs += 1
        self.codegen_seconds += seconds

    def observe(self, seconds: float, cold: bool,
                exec_seconds: float | None = None,
                profiled: bool = False,
                backend: str | None = None,
                tier: str | None = None) -> None:
        """Record one served request.

        ``seconds`` is the request's total wall latency (what the
        cold/warm stats track); ``exec_seconds`` is the pure execution
        part — excluding codegen, autotuning and operand mapping, which
        are one-time cold costs — and is the denominator the amortized
        Table-IV ratio accumulates.  Defaults to ``seconds`` when the
        request had no setup component.  ``backend`` attributes the
        request to one execution backend's traffic bucket; ``tier``
        attributes it to the serving tier (template vs promoted) that
        actually executed it.
        """
        self.requests += 1
        if profiled:
            self.profiled_requests += 1
        if cold:
            self.cold.observe(seconds)
        else:
            self.warm.observe(seconds)
        if backend:
            self.backends[backend] = self.backends.get(backend, 0) + 1
        if tier:
            self.tiers[tier] = self.tiers.get(tier, 0) + 1
        self.exec_seconds += max(
            0.0, seconds if exec_seconds is None else exec_seconds)

    def snapshot(self) -> "HandleStats":
        """An independent copy (taken under the owning stripe lock by
        the service, so every field of the copy is mutually consistent
        — no torn reads of ``requests`` vs ``exec_seconds``)."""
        return HandleStats(
            name=self.name, requests=self.requests,
            profiled_requests=self.profiled_requests,
            codegen_runs=self.codegen_runs,
            codegen_seconds=self.codegen_seconds,
            exec_seconds=self.exec_seconds,
            cold=self.cold.snapshot(), warm=self.warm.snapshot(),
            backends=dict(self.backends), batches=dict(self.batches),
            tiers=dict(self.tiers),
        )

    def codegen_overhead(self) -> float:
        """Amortized Table-IV metric: codegen time / total stream time."""
        total = self.codegen_seconds + self.exec_seconds
        return self.codegen_seconds / total if total else 0.0

    def render(self) -> str:
        label = self.name or "<anonymous>"
        lines = [
            f"{label}: {self.requests} requests "
            f"({self.codegen_runs} codegen runs, "
            f"{self.profiled_requests} profiled)",
            f"  cold  {self.cold.render()}",
            f"  warm  {self.warm.render()}",
            f"  codegen {self.codegen_seconds * 1e3:.3f}ms total, "
            f"amortized overhead {100.0 * self.codegen_overhead():.4f}%",
        ]
        if self.backends:
            lines.append("  backends " + " ".join(
                f"{name}={count}"
                for name, count in sorted(self.backends.items())))
        if self.batches:
            lines.append("  batches " + render_batch_histogram(self.batches))
        if self.tiers:
            lines.append("  tiers " + " ".join(
                f"{name}={count}"
                for name, count in sorted(self.tiers.items())))
        return "\n".join(lines)


@dataclass
class ServiceStats:
    """Service-wide aggregation over every handle's stream.

    Aggregate properties snapshot the shared dicts with single C-level
    ``list(...)`` calls before iterating, so a report taken during live
    traffic (handles registering, new batch sizes appearing) never
    observes a dict resizing mid-iteration.
    """

    handles: dict[int, HandleStats] = field(default_factory=dict)

    def handle(self, handle_id: int, name: str = "") -> HandleStats:
        """The (created-on-demand) stats bucket for one handle.

        Creation is ``setdefault``-atomic: callers serialized per
        handle (the service's lock stripes) may still race the *first*
        touch of a handle from different stripes' critical sections.
        """
        stats = self.handles.get(handle_id)
        if stats is None:
            stats = self.handles.setdefault(handle_id, HandleStats(name=name))
        return stats

    def _snapshot(self) -> list[HandleStats]:
        return list(self.handles.values())

    @property
    def requests(self) -> int:
        return sum(h.requests for h in self._snapshot())

    @property
    def codegen_runs(self) -> int:
        return sum(h.codegen_runs for h in self._snapshot())

    @property
    def codegen_seconds(self) -> float:
        return sum(h.codegen_seconds for h in self._snapshot())

    @property
    def exec_seconds(self) -> float:
        return sum(h.exec_seconds for h in self._snapshot())

    @property
    def backend_traffic(self) -> dict[str, int]:
        """Service-wide requests per execution backend."""
        traffic: dict[str, int] = {}
        for handle in self._snapshot():
            for name, count in list(handle.backends.items()):
                traffic[name] = traffic.get(name, 0) + count
        return traffic

    @property
    def tier_traffic(self) -> dict[str, int]:
        """Service-wide requests per serving tier (template/promoted)."""
        traffic: dict[str, int] = {}
        for handle in self._snapshot():
            for name, count in list(handle.tiers.items()):
                traffic[name] = traffic.get(name, 0) + count
        return traffic

    @property
    def batch_sizes(self) -> dict[int, int]:
        """Service-wide coalescing histogram: batch size -> batches."""
        sizes: dict[int, int] = {}
        for handle in self._snapshot():
            for size, count in list(handle.batches.items()):
                sizes[size] = sizes.get(size, 0) + count
        return sizes

    def mean_batch_size(self) -> float:
        """Requests served per coalesced execution, on average."""
        sizes = self.batch_sizes
        batches = sum(sizes.values())
        served = sum(size * count for size, count in sizes.items())
        return served / batches if batches else 0.0

    def codegen_overhead(self) -> float:
        """Amortized Table-IV metric across all handles."""
        total = self.codegen_seconds + self.exec_seconds
        return self.codegen_seconds / total if total else 0.0

    def render(self, cache_stats=None, lock_stats=None) -> str:
        lines = [
            f"SpmmService: {self.requests} requests over "
            f"{len(self.handles)} handles, {self.codegen_runs} codegen "
            f"runs, amortized codegen overhead "
            f"{100.0 * self.codegen_overhead():.4f}%",
        ]
        traffic = self.backend_traffic
        if traffic:
            lines.append("traffic by backend: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(traffic.items())))
        tiers = self.tier_traffic
        if tiers:
            lines.append("traffic by tier: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(tiers.items())))
        sizes = self.batch_sizes
        if sizes:
            lines.append(
                f"batches: {render_batch_histogram(sizes)} "
                f"(mean size {self.mean_batch_size():.2f})")
        if lock_stats is not None:
            lines.append(lock_stats.render())
        if cache_stats is not None:
            lines.append(cache_stats.render())
        lines.extend(stats.render()
                     for _, stats in sorted(self.handles.items()))
        return "\n".join(lines)


def render_batch_histogram(sizes: dict[int, int]) -> str:
    """``size x count`` pairs, ascending by batch size."""
    return " ".join(f"{size}x{count}"
                    for size, count in sorted(sizes.items()))
