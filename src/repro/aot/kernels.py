"""SpMM kernel IR constructors — Algorithm 1 the way a C programmer writes it.

``scalar_spmm_kernel`` transliterates the paper's Algorithm 1 with its
original loop nest: rows outside, *columns next, non-zeros innermost*.
That loop order is the crux of the paper's AOT critique: because the
``idx`` loop restarts for every output column ``j``, the kernel re-reads
``A.col_indices[idx]`` and ``A.vals[idx]`` (and recomputes the ``X``
address) ``d`` times per non-zero — no compiler transformation can hoist
those loads without knowing ``d`` and restructuring the loop, which is
exactly what JITSPMM's coarse-grain column merging does at runtime.

``vectorized_spmm_kernel`` models what ``icc -O3 -mavx512f`` does to that
source: the innermost reduction loop is vectorized with 32-bit-index
gathers plus a horizontal reduction and a scalar remainder loop
(paper §V-A.2).  The column loop remains — AOT code cannot unroll a loop
whose trip count ``d`` only exists at runtime.
"""

from __future__ import annotations

from repro.aot import abi
from repro.aot.builder import IRBuilder
from repro.aot.ir import Function
from repro.errors import CompileError

__all__ = ["scalar_spmm_kernel", "vectorized_spmm_kernel"]

_PARAM_HINTS = ("pb", "row_start", "row_end")


def _load_param_block(b: IRBuilder):
    pb = b.param(0)
    row_ptr = b.load(pb, disp=abi.PARAM_ROW_PTR, hint="rp")
    col = b.load(pb, disp=abi.PARAM_COL_INDICES, hint="col")
    vals = b.load(pb, disp=abi.PARAM_VALS, hint="vals")
    x = b.load(pb, disp=abi.PARAM_X, hint="X")
    y = b.load(pb, disp=abi.PARAM_Y, hint="Y")
    d = b.load(pb, disp=abi.PARAM_D, hint="d")
    return row_ptr, col, vals, x, y, d


def _scalar_body(b: IRBuilder, acc, col, vals, x, d, j, idx, disp_elems: int):
    """One scalar ``ret += vals[idx] * X[col[idx]][j]`` step."""
    k = b.load(col, index=idx, scale=4, disp=4 * disp_elems, size=4, hint="k")
    a = b.loadf(vals, index=idx, scale=4, disp=4 * disp_elems, hint="a")
    xoff = b.mul(k, d, hint="xo")
    xoff = b.add(xoff, j, hint="xoj")
    xval = b.loadf(x, index=xoff, scale=4, hint="x")
    b.fmad(acc, a, xval)


def scalar_spmm_kernel(unroll: int = 1, name: str = "spmm_scalar") -> Function:
    """Algorithm 1 in IR, with the idx loop unrolled ``unroll`` times.

    The unroll factor is the main observable difference between the gcc /
    clang / icc builds in the paper's Table II (their branch counts differ
    by roughly the inverse of the unroll factor while loads stay equal).
    """
    if unroll < 1:
        raise CompileError(f"unroll factor must be >= 1, got {unroll}")
    b = IRBuilder(name, 3, _PARAM_HINTS)
    row_start, row_end = b.param(1), b.param(2)
    row_ptr, col, vals, x, y, d = _load_param_block(b)
    i = b.mov(row_start, hint="i")
    b.br("row_head")

    b.start_block("row_head", depth=1)
    b.cbr("ge", i, row_end, "exit", "row_body")

    b.start_block("row_body", depth=1)
    start = b.load(row_ptr, index=i, scale=8, size=8, hint="start")
    end = b.load(row_ptr, index=i, scale=8, disp=8, size=8, hint="end")
    if unroll > 1:
        end_main = b.sub(end, unroll - 1, hint="endm")
    yrow = b.mul(i, d, hint="yrow")
    j = b.const(0, hint="j")
    b.br("col_head")

    b.start_block("col_head", depth=2)
    b.cbr("ge", j, d, "row_next", "col_body")

    b.start_block("col_body", depth=2)
    acc = b.fzero(hint="acc")
    idx = b.mov(start, hint="idx")
    if unroll > 1:
        b.br("main_head")
        b.start_block("main_head", depth=3)
        b.cbr("ge", idx, end_main, "rem_head", "main_body")
        b.start_block("main_body", depth=3)
        for t in range(unroll):
            _scalar_body(b, acc, col, vals, x, d, j, idx, t)
        b.iadd(idx, unroll)
        b.br("main_head")
    else:
        b.br("rem_head")

    b.start_block("rem_head", depth=3)
    b.cbr("ge", idx, end, "col_done", "rem_body")
    b.start_block("rem_body", depth=3)
    _scalar_body(b, acc, col, vals, x, d, j, idx, 0)
    b.iadd(idx, 1)
    b.br("rem_head")

    b.start_block("col_done", depth=2)
    yoff = b.add(yrow, j, hint="yj")
    b.storef(acc, y, index=yoff, scale=4)
    b.iadd(j, 1)
    b.br("col_head")

    b.start_block("row_next", depth=1)
    b.iadd(i, 1)
    b.br("row_head")

    b.start_block("exit")
    b.ret()
    return b.finish()


def vectorized_spmm_kernel(lanes: int = 16, unroll: int = 1,
                           name: str = "spmm_autovec") -> Function:
    """Algorithm 1 with the inner reduction loop gather-vectorized.

    Models the icc auto-vectorizer's output: ``lanes`` non-zeros are
    processed per vector iteration (column indices loaded as an int32
    vector, multiplied by the runtime ``d``, and used as gather indices
    into ``X``), followed by a lane-sum reduction and a scalar remainder
    loop for ``nnz_i mod lanes``.

    ``unroll`` repeats the gather-FMA strip, so one vector iteration
    consumes ``lanes * unroll`` non-zeros.  All strips accumulate into
    the same vector register in ``idx`` order, so results stay
    bit-identical to the ``unroll=1`` build.
    """
    if lanes not in (4, 8, 16):
        raise CompileError(f"vector lanes must be 4/8/16, got {lanes}")
    if unroll < 1:
        raise CompileError(f"unroll factor must be >= 1, got {unroll}")
    step = lanes * unroll
    b = IRBuilder(name, 3, _PARAM_HINTS)
    row_start, row_end = b.param(1), b.param(2)
    row_ptr, col, vals, x, y, d = _load_param_block(b)
    # the vectorizer hoists the loop-invariant broadcast of d
    dvec = b.vbroadcasti_mem(lanes, b.param(0), disp=abi.PARAM_D, hint="dv")
    i = b.mov(row_start, hint="i")
    b.br("row_head")

    b.start_block("row_head", depth=1)
    b.cbr("ge", i, row_end, "exit", "row_body")

    b.start_block("row_body", depth=1)
    start = b.load(row_ptr, index=i, scale=8, size=8, hint="start")
    end = b.load(row_ptr, index=i, scale=8, disp=8, size=8, hint="end")
    end_main = b.sub(end, step - 1, hint="endm")
    yrow = b.mul(i, d, hint="yrow")
    j = b.const(0, hint="j")
    b.br("col_head")

    b.start_block("col_head", depth=2)
    b.cbr("ge", j, d, "row_next", "col_body")

    b.start_block("col_body", depth=2)
    vacc = b.vzero(lanes, hint="vacc")
    idx = b.mov(start, hint="idx")
    joff = b.shl(j, 2, hint="j4")
    base_j = b.add(x, joff, hint="Xj")  # gather base folded with column j
    b.br("vec_head")

    b.start_block("vec_head", depth=3)
    b.cbr("ge", idx, end_main, "vec_done", "vec_body")

    b.start_block("vec_body", depth=3)
    for t in range(unroll):
        kvec = b.vloadi(lanes, col, index=idx, scale=4,
                        disp=4 * lanes * t, hint="kv")
        offv = b.vmuli(kvec, dvec, hint="ov")
        avec = b.loadv(lanes, vals, index=idx, scale=4,
                       disp=4 * lanes * t, hint="av")
        xvec = b.vgather(base_j, offv, scale=4, hint="xv")
        b.vfma(vacc, avec, xvec)
    b.iadd(idx, step)
    b.br("vec_head")

    b.start_block("vec_done", depth=2)
    acc = b.vreduce(vacc, hint="acc")
    b.br("rem_head")

    b.start_block("rem_head", depth=3)
    b.cbr("ge", idx, end, "col_done", "rem_body")
    b.start_block("rem_body", depth=3)
    _scalar_body(b, acc, col, vals, x, d, j, idx, 0)
    b.iadd(idx, 1)
    b.br("rem_head")

    b.start_block("col_done", depth=2)
    yoff = b.add(yrow, j, hint="yj")
    b.storef(acc, y, index=yoff, scale=4)
    b.iadd(j, 1)
    b.br("col_head")

    b.start_block("row_next", depth=1)
    b.iadd(i, 1)
    b.br("row_head")

    b.start_block("exit")
    b.ret()
    return b.finish()
