"""Three-address intermediate representation for the AOT substrate.

A deliberately small, non-SSA IR: virtual registers are mutable, basic
blocks end in explicit terminators, and memory accesses carry x86-style
``base + index*scale + disp`` addressing so lowering is one-to-one.
Types distinguish the two register classes the allocator manages:
``i`` (64-bit integer -> GPRs) and scalar/vector float and integer-vector
types (-> XMM/YMM/ZMM).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import CompileError

__all__ = ["Block", "Function", "Instr", "IrType", "VReg"]


class IrType(enum.Enum):
    """IR value types; the member value is (class, f32 lanes)."""

    I64 = ("int", 1)
    F32 = ("vec", 1)
    V4F = ("vec", 4)
    V8F = ("vec", 8)
    V16F = ("vec", 16)
    V4I = ("vec", 4)
    V8I = ("vec", 8)
    V16I = ("vec", 16)

    @property
    def reg_class(self) -> str:
        return self.value[0]

    @property
    def lanes(self) -> int:
        return self.value[1]

    @property
    def is_int_vector(self) -> bool:
        return self in (IrType.V4I, IrType.V8I, IrType.V16I)

    @staticmethod
    def vec_f(lanes: int) -> "IrType":
        return {4: IrType.V4F, 8: IrType.V8F, 16: IrType.V16F}[lanes]

    @staticmethod
    def vec_i(lanes: int) -> "IrType":
        return {4: IrType.V4I, 8: IrType.V8I, 16: IrType.V16I}[lanes]


@dataclass(frozen=True, eq=False)
class VReg:
    """A virtual register.  Identity-hashed; names are for listings."""

    name: str
    type: IrType

    def __repr__(self) -> str:
        return f"%{self.name}"


#: Opcodes and their operand shapes.  ``dst`` is None for stores/branches.
#:
#: int:    const, mov, add, sub, mul, shl, and
#: memory: load (int), store (int), loadf/storef (f32), loadv/storev (vec),
#:         vloadi (int vector)
#: float:  fadd, fsub, fmul, fmad (dst += a*b)
#: vector: vadd, vmul, vfma (dst += a*b), vbroadcast_mem, vbroadcasti_mem,
#:         vaddi, vmuli, vgather, vreduce (lane sum -> f32)
#: control: br, cbr, ret
_VALID_OPS = {
    "const", "mov", "add", "sub", "mul", "shl", "and",
    "load", "store", "loadf", "storef", "loadv", "storev", "vloadi",
    "fadd", "fsub", "fmul", "fmad",
    "vadd", "vmul", "vfma", "vbroadcast_mem", "vbroadcasti_mem",
    "vaddi", "vmuli", "vgather", "vreduce",
    "br", "cbr", "ret",
}

_COND_CODES = {"lt", "le", "gt", "ge", "eq", "ne", "b", "ae"}


@dataclass
class Instr:
    """One IR instruction.

    Attributes:
        op: Opcode (see module docstring).
        dst: Destination vreg or None.
        srcs: Source operands: vregs or Python ints (immediates).
        attrs: Op-specific attributes — for memory ops: ``base`` (vreg),
            ``index`` (vreg or None), ``scale``, ``disp``, ``size``; for
            ``cbr``: ``cond`` plus ``then_label`` / ``else_label``; for
            ``br``: ``label``.
    """

    op: str
    dst: VReg | None = None
    srcs: tuple = ()
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise CompileError(f"unknown IR op {self.op!r}")
        if self.op == "cbr" and self.attrs.get("cond") not in _COND_CODES:
            raise CompileError(f"bad cbr condition {self.attrs.get('cond')!r}")

    # ------------------------------------------------------------------
    def vregs_read(self) -> tuple[VReg, ...]:
        """All vregs this instruction reads (including address operands).

        Instructions tagged ``zero=True`` are zeroing idioms (``x = x - x``
        lowered to ``vxorps x,x,x``) and read nothing, so liveness does not
        see a use-before-def.
        """
        if self.attrs.get("zero"):
            return ()
        reads = [s for s in self.srcs if isinstance(s, VReg)]
        for key in ("base", "index"):
            value = self.attrs.get(key)
            if isinstance(value, VReg):
                reads.append(value)
        # accumulating ops read their destination
        if self.op in ("vfma", "fmad") and self.dst is not None:
            reads.append(self.dst)
        return tuple(reads)

    def vregs_written(self) -> tuple[VReg, ...]:
        return (self.dst,) if self.dst is not None else ()

    @property
    def is_terminator(self) -> bool:
        return self.op in ("br", "cbr", "ret")

    def __repr__(self) -> str:
        parts = [self.op]
        if self.dst is not None:
            parts.append(f"{self.dst!r} <-")
        parts.extend(repr(s) for s in self.srcs)
        if self.attrs:
            rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
            parts.append(f"[{rendered}]")
        return " ".join(parts)


@dataclass
class Block:
    """A basic block: straight-line instructions plus one terminator.

    ``depth`` is the loop-nesting depth the front end recorded; spill
    costs weight uses by ``10^depth``, the classic Chaitin heuristic.
    """

    label: str
    instrs: list[Instr] = field(default_factory=list)
    depth: int = 0

    @property
    def terminator(self) -> Instr:
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise CompileError(f"block {self.label!r} lacks a terminator")
        return self.instrs[-1]

    def successors(self) -> tuple[str, ...]:
        term = self.terminator
        if term.op == "br":
            return (term.attrs["label"],)
        if term.op == "cbr":
            return (term.attrs["then_label"], term.attrs["else_label"])
        return ()


@dataclass
class Function:
    """An IR function: ordered blocks, entry first, plus parameters.

    Parameters are vregs that arrive precolored in the SysV argument
    registers (rdi, rsi, rdx, rcx, r8, r9) in declaration order.
    """

    name: str
    params: list[VReg] = field(default_factory=list)
    blocks: list[Block] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def new_vreg(self, type: IrType, hint: str = "t") -> VReg:
        return VReg(f"{hint}{next(self._counter)}", type)

    def block(self, label: str, depth: int = 0) -> Block:
        """Append (or fetch existing) block with this label."""
        for existing in self.blocks:
            if existing.label == label:
                return existing
        created = Block(label, depth=depth)
        self.blocks.append(created)
        return created

    def block_map(self) -> dict[str, Block]:
        return {b.label: b for b in self.blocks}

    def all_vregs(self) -> list[VReg]:
        seen: dict[int, VReg] = {}
        for param in self.params:
            seen[id(param)] = param
        for block in self.blocks:
            for instr in block.instrs:
                for reg in (*instr.vregs_read(), *instr.vregs_written()):
                    seen[id(reg)] = reg
        return list(seen.values())

    def validate(self) -> None:
        """Check structural invariants; raises :class:`CompileError`."""
        if not self.blocks:
            raise CompileError(f"function {self.name!r} has no blocks")
        labels = [b.label for b in self.blocks]
        if len(set(labels)) != len(labels):
            raise CompileError("duplicate block labels")
        label_set = set(labels)
        for block in self.blocks:
            for instr in block.instrs[:-1]:
                if instr.is_terminator:
                    raise CompileError(
                        f"terminator mid-block in {block.label!r}: {instr!r}"
                    )
            for successor in block.successors():
                if successor not in label_set:
                    raise CompileError(
                        f"branch to unknown block {successor!r} from "
                        f"{block.label!r}"
                    )

    def clone(self) -> "Function":
        """A structural copy safe for destructive rewriting.

        Blocks, instruction lists and attribute dicts are fresh objects;
        the identity-hashed :class:`VReg` values are shared (a vreg *is*
        its identity — passes that need new values mint them via
        :meth:`new_vreg` on the clone).
        """
        copied = Function(self.name, params=list(self.params))
        for block in self.blocks:
            new_block = copied.block(block.label, depth=block.depth)
            new_block.instrs = [
                Instr(instr.op, instr.dst, instr.srcs, dict(instr.attrs))
                for instr in block.instrs
            ]
        return copied

    def listing(self) -> str:
        lines = [f"func {self.name}({', '.join(map(repr, self.params))}):"]
        for block in self.blocks:
            lines.append(f"{block.label}:")
            lines.extend(f"    {instr!r}" for instr in block.instrs)
        return "\n".join(lines)
