"""AOT compiler driver and per-compiler personalities.

A :class:`CompilerPersonality` captures the observable differences between
the paper's three AOT compilers when building the Merrill-Garland-style
SpMM source (§III-B, Table II; §V-A.2):

* **gcc** — graph-colouring allocator, no unrolling of the reduction
  loop, no AVX-512 vectorization (the paper's footnote 5: gcc refused to
  emit AVX-512 for this kernel);
* **clang** — linear-scan-style allocator, modest (2x) unrolling, also no
  AVX-512;
* **icc** — aggressive (4x) unrolling in its scalar build, and for
  ``-O3 -mavx512f`` a gather-vectorized inner loop
  (``icc-avx512`` personality), which is the paper's
  "auto-vectorization" baseline in Figures 9 and 11.

The driver wires kernels -> liveness -> allocation -> lowering and
returns a :class:`CompiledKernel` with the final program and everything a
runner needs (spill-area size, ABI notes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aot import abi
from repro.aot.ir import Function, VReg
from repro.aot.kernels import scalar_spmm_kernel, vectorized_spmm_kernel
from repro.aot.liveness import analyze
from repro.aot.lower import SPILL_SLOT_BYTES, lower
from repro.aot.passes import PassConfig, run_passes
from repro.aot.regalloc import Allocation, RegisterPools, allocate
from repro.errors import CompileError
from repro.isa.assembler import Program
from repro.isa.isainfo import IsaLevel

__all__ = [
    "AotCompiler",
    "BASE_PASS_CONFIGS",
    "CompiledKernel",
    "CompilerPersonality",
    "PERSONALITIES",
    "register_pools_for",
]

#: the single source of each personality's default codegen parameters.
#: ``PERSONALITIES`` below and :meth:`CompilerPersonality.pass_config`
#: are both derived from this table, so the personality's advertised
#: unroll factor and the unroll the pass pipeline assumes can't drift.
BASE_PASS_CONFIGS: dict[str, PassConfig] = {
    "gcc": PassConfig(unroll=1),
    "clang": PassConfig(unroll=2),
    "icc": PassConfig(unroll=4),
    "icc-avx512": PassConfig(unroll=1),
}


@dataclass(frozen=True)
class CompilerPersonality:
    """Codegen knobs that model one real-world compiler."""

    name: str
    allocator: str  # "linear" | "coloring"
    unroll: int
    vectorize: bool = False
    lanes: int = 16
    isa: IsaLevel = IsaLevel.AVX512

    def pass_config(self, opt_level: int = 0) -> PassConfig:
        """The default :class:`PassConfig` at an optimization level.

        Level 0 is the fixed-function lowering (this personality's
        table unroll, no IR transforms); level 1 enables the cleanup
        passes; level 2 adds scheduling.  Level 3 (feedback-directed
        search) is resolved by :mod:`repro.aot.search`, not here.
        """
        return PassConfig(unroll=self.unroll).at_level(opt_level)

    def kernel(self, passes: PassConfig | None = None) -> Function:
        config = passes if passes is not None else self.pass_config(0)
        if self.vectorize:
            return vectorized_spmm_kernel(self.lanes, unroll=config.unroll,
                                          name=f"spmm_{self.name}")
        return scalar_spmm_kernel(config.unroll, name=f"spmm_{self.name}")


PERSONALITIES: dict[str, CompilerPersonality] = {
    "gcc": CompilerPersonality("gcc", "coloring",
                               unroll=BASE_PASS_CONFIGS["gcc"].unroll,
                               isa=IsaLevel.AVX2),
    "clang": CompilerPersonality("clang", "linear",
                                 unroll=BASE_PASS_CONFIGS["clang"].unroll,
                                 isa=IsaLevel.AVX2),
    "icc": CompilerPersonality("icc", "linear",
                               unroll=BASE_PASS_CONFIGS["icc"].unroll,
                               isa=IsaLevel.AVX2),
    "icc-avx512": CompilerPersonality(
        "icc-avx512", "linear",
        unroll=BASE_PASS_CONFIGS["icc-avx512"].unroll,
        vectorize=True, lanes=16, isa=IsaLevel.AVX512),
}


def register_pools_for(isa: IsaLevel) -> RegisterPools:
    """Allocatable registers for an ISA level.

    Excluded from allocation: ``rsp`` (conventional), ``rbp`` (spill-area
    base), ``r14``/``r15`` (integer spill scratch), the three SysV
    argument registers (parameters stay pinned in them), and two vector
    scratch registers (codes 14/15).
    """
    # rsp is conventional, rbp anchors the spill area, r13-r15 are spill
    # scratch; the SysV argument registers are in the pool — parameters
    # are precolored into them and release them at their last use.
    reserved = {"rsp", "rbp", "r13", "r14", "r15"}
    int_pool = tuple(
        name for name in ("rax", "rbx", "rcx", "r8", "r9", "r10", "r11",
                          "r12", "rdx", "rsi", "rdi")
        if name not in reserved
    )
    if isa == IsaLevel.AVX512:
        vec_pool = tuple(list(range(13)) + list(range(16, 32)))
    else:
        vec_pool = tuple(range(13))
    return RegisterPools(int_pool=int_pool, vec_pool=vec_pool)


@dataclass
class CompiledKernel:
    """Output of the AOT pipeline: runnable program + runner metadata."""

    program: Program
    personality: CompilerPersonality
    function: Function
    allocation: Allocation
    #: the optimization-pass configuration this kernel was built with
    #: (None for legacy direct ``compile_function`` calls)
    passes: PassConfig | None = None

    @property
    def spill_bytes(self) -> int:
        """Per-thread spill area the runner must map (0 = none needed)."""
        return self.allocation.num_spill_slots * SPILL_SLOT_BYTES

    def listing(self) -> str:
        return self.program.listing()


class AotCompiler:
    """Compiles SpMM kernels under a given personality."""

    def __init__(self, personality: CompilerPersonality | str = "gcc") -> None:
        if isinstance(personality, str):
            try:
                personality = PERSONALITIES[personality]
            except KeyError:
                valid = ", ".join(sorted(PERSONALITIES))
                raise CompileError(
                    f"unknown compiler personality {personality!r}; "
                    f"expected one of: {valid}"
                ) from None
        self.personality = personality

    def compile_function(self, func: Function,
                         passes: PassConfig | None = None) -> CompiledKernel:
        """Run the full pipeline on an arbitrary IR function.

        With ``passes`` given, the optimization-pass pipeline
        (:func:`repro.aot.passes.run_passes`) runs between the front
        end and register allocation; ``None`` preserves the legacy
        fixed-function behavior exactly (no verifier, no rewrites).
        """
        if passes is not None:
            func = run_passes(func, passes)
        pools = register_pools_for(self.personality.isa)
        precolored = self._precolor_params(func)
        liveness = analyze(func)
        allocation = allocate(func, pools, strategy=self.personality.allocator,
                              precolored=precolored, liveness=liveness)
        program = lower(func, allocation, pools)
        return CompiledKernel(program, self.personality, func, allocation,
                              passes=passes)

    def compile_spmm(self, passes: PassConfig | None = None,
                     opt_level: int = 0) -> CompiledKernel:
        """Compile this personality's SpMM kernel (Algorithm 1).

        ``passes`` pins an exact :class:`PassConfig` (the search path);
        otherwise the personality's default config at ``opt_level``
        applies (0 = the historical fixed-function lowering).
        """
        config = (passes if passes is not None
                  else self.personality.pass_config(opt_level))
        return self.compile_function(self.personality.kernel(config),
                                     passes=config)

    @staticmethod
    def _precolor_params(func: Function) -> dict[VReg, str]:
        arg_regs = (abi.ARG_PARAM_BLOCK, abi.ARG_ROW_START, abi.ARG_ROW_END,
                    "rcx", "r8", "r9")
        if len(func.params) > len(arg_regs):
            raise CompileError(
                f"{func.name!r} has {len(func.params)} params; "
                f"only {len(arg_regs)} register arguments supported"
            )
        return {param: arg_regs[i] for i, param in enumerate(func.params)}
