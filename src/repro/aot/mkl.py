"""MKL-like SpMM kernel: hand-scheduled AOT assembly.

The paper's second baseline is Intel MKL's ``mkl_sparse_spmm`` — closed
source, "hand-crafted through low-level coding ... with adaption of SIMD
vectorization and thread parallelism" (§V-A.2).  This module plays that
role: an expert-written AOT kernel, emitted directly as assembly (no IR,
no allocator — a human did the scheduling), that is better than anything
the compiler personalities produce but still bound by AOT constraints:

* ``d`` is a runtime value, so the column loop survives as a strip-mined
  loop (one branch per strip per non-zero) plus a scalar remainder;
* the output row is accumulated *in memory* (load-FMA-store per strip),
  because without knowing ``d`` the kernel cannot promise the row fits
  in registers — precisely the register-residency trick JITSPMM's
  runtime knowledge enables (paper §IV-D.1).

Register plan (all caller-saved in our freestanding ABI):

====== ============================== ====== =========================
reg    use                            reg    use
====== ============================== ====== =========================
rdi    param block                    rax    idx cursor
rsi    row cursor (arg: first row)    rbx    row end offset
rdx    row end (exclusive)            rcx    &Y[i][0]
r8     row_ptr base                   r14    col index k, then &X[k][0]
r9     col_indices base               r15    column cursor js
r10    vals base                      rbp    d rounded down to lanes
r11    X base                         zmm0   constant zero
r12    Y base                         zmm1   broadcast vals[idx]
r13    d                              zmm2/3 X / Y strips
====== ============================== ====== =========================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aot import abi
from repro.errors import CodegenError
from repro.isa.assembler import Assembler, Program
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, xmm, ymm, zmm

__all__ = ["MklKernel"]

_VEC_BY_LANES = {8: ymm, 16: zmm}


@dataclass(frozen=True)
class MklKernel:
    """Builder for the MKL-like kernel program.

    Args:
        lanes: SIMD strip width in float32 lanes (16 = AVX-512, 8 = AVX2).
    """

    lanes: int = 16

    def build(self) -> Program:
        if self.lanes not in _VEC_BY_LANES:
            raise CodegenError(
                f"MKL kernel supports 8/16-lane strips, got {self.lanes}"
            )
        vec = _VEC_BY_LANES[self.lanes]
        step_bytes = 4 * self.lanes
        asm = Assembler(f"mkl_spmm_{self.lanes}")
        pb = regs.rdi

        # -- prologue: unpack the parameter block ----------------------
        asm.mov(regs.r8, Mem(pb, disp=abi.PARAM_ROW_PTR, size=8))
        asm.mov(regs.r9, Mem(pb, disp=abi.PARAM_COL_INDICES, size=8))
        asm.mov(regs.r10, Mem(pb, disp=abi.PARAM_VALS, size=8))
        asm.mov(regs.r11, Mem(pb, disp=abi.PARAM_X, size=8))
        asm.mov(regs.r12, Mem(pb, disp=abi.PARAM_Y, size=8))
        asm.mov(regs.r13, Mem(pb, disp=abi.PARAM_D, size=8))
        asm.mov(regs.rbp, regs.r13)
        asm.emit("and", regs.rbp, Imm(-self.lanes, 8))
        asm.vxorps(vec(0), vec(0), vec(0))

        # -- row loop ---------------------------------------------------
        asm.label("row_head")
        asm.cmp(regs.rsi, regs.rdx)
        asm.jge("exit")
        asm.mov(regs.rax, Mem(regs.r8, regs.rsi, 8, 0, size=8))
        asm.mov(regs.rbx, Mem(regs.r8, regs.rsi, 8, 8, size=8))
        asm.mov(regs.rcx, regs.rsi)
        asm.imul(regs.rcx, regs.r13)
        asm.shl(regs.rcx, Imm(2, 8))
        asm.add(regs.rcx, regs.r12)

        # zero the output row (strips, then scalar tail)
        asm.mov(regs.r15, 0)
        asm.label("zero_main_head")
        asm.cmp(regs.r15, regs.rbp)
        asm.jge("zero_rem_head")
        asm.vmovups(Mem(regs.rcx, regs.r15, 4, 0, size=step_bytes), vec(0))
        asm.add(regs.r15, self.lanes)
        asm.jmp("zero_main_head")
        asm.label("zero_rem_head")
        asm.cmp(regs.r15, regs.r13)
        asm.jge("idx_head")
        asm.vmovss(Mem(regs.rcx, regs.r15, 4, 0, size=4), xmm(0))
        asm.inc(regs.r15)
        asm.jmp("zero_rem_head")

        # -- non-zero loop -----------------------------------------------
        asm.label("idx_head")
        asm.cmp(regs.rax, regs.rbx)
        asm.jge("row_next")
        asm.mov(regs.r14, Mem(regs.r9, regs.rax, 4, 0, size=4))  # k
        asm.vbroadcastss(vec(1), Mem(regs.r10, regs.rax, 4, 0, size=4))
        asm.imul(regs.r14, regs.r13)
        asm.shl(regs.r14, Imm(2, 8))
        asm.add(regs.r14, regs.r11)  # &X[k][0]

        # strip loop: Y[i][js:js+lanes] += vals[idx] * X[k][js:js+lanes]
        asm.mov(regs.r15, 0)
        asm.label("js_main_head")
        asm.cmp(regs.r15, regs.rbp)
        asm.jge("js_rem_head")
        asm.vmovups(vec(2), Mem(regs.r14, regs.r15, 4, 0, size=step_bytes))
        asm.vmovups(vec(3), Mem(regs.rcx, regs.r15, 4, 0, size=step_bytes))
        asm.vfmadd231ps(vec(3), vec(1), vec(2))
        asm.vmovups(Mem(regs.rcx, regs.r15, 4, 0, size=step_bytes), vec(3))
        asm.add(regs.r15, self.lanes)
        asm.jmp("js_main_head")

        # scalar tail for d mod lanes
        asm.label("js_rem_head")
        asm.cmp(regs.r15, regs.r13)
        asm.jge("idx_next")
        asm.vmovss(xmm(2), Mem(regs.r14, regs.r15, 4, 0, size=4))
        asm.vmovss(xmm(3), Mem(regs.rcx, regs.r15, 4, 0, size=4))
        asm.vfmadd231ss(xmm(3), xmm(1), xmm(2))
        asm.vmovss(Mem(regs.rcx, regs.r15, 4, 0, size=4), xmm(3))
        asm.inc(regs.r15)
        asm.jmp("js_rem_head")

        asm.label("idx_next")
        asm.inc(regs.rax)
        asm.jmp("idx_head")

        asm.label("row_next")
        asm.inc(regs.rsi)
        asm.jmp("row_head")

        asm.label("exit")
        asm.ret()
        return asm.finish()
