"""Backward dataflow liveness analysis over the IR CFG.

Computes per-block live-in/live-out sets by iterating the classic
equations to a fixed point, then derives conservative whole-function
*live intervals* in a linearized instruction numbering — the form both
register allocators consume.  Interval construction follows the original
linear-scan formulation (Poletto & Sarkar 1999): an interval covers from
the vreg's first definition to the end of the last block where it is
live, which safely over-approximates lifetimes across loop back edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aot.ir import Function, VReg

__all__ = ["Liveness", "LiveInterval", "analyze"]


@dataclass
class LiveInterval:
    """Half-open live range ``[start, end)`` in linearized positions.

    ``use_count`` is the *loop-depth-weighted* use count (each use in a
    block of depth ``k`` counts ``10^k``) — the Chaitin spill-cost
    estimate both allocators use to prefer spilling values that are
    touched rarely over inner-loop values.
    """

    vreg: VReg
    start: int
    end: int
    use_count: int = 0

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:
        return f"{self.vreg!r}:[{self.start},{self.end})x{self.use_count}"


@dataclass
class Liveness:
    """Analysis result: block-level sets plus linearized intervals."""

    live_in: dict[str, frozenset[VReg]]
    live_out: dict[str, frozenset[VReg]]
    intervals: dict[VReg, LiveInterval]

    def intervals_by_start(self) -> list[LiveInterval]:
        return sorted(self.intervals.values(), key=lambda iv: (iv.start, iv.end))


def analyze(func: Function) -> Liveness:
    """Run liveness analysis; parameters are treated as defined at entry."""
    func.validate()
    blocks = func.blocks

    # use/def sets per block (use = read before any write in the block)
    uses: dict[str, set[VReg]] = {}
    defs: dict[str, set[VReg]] = {}
    for block in blocks:
        use_set: set[VReg] = set()
        def_set: set[VReg] = set()
        for instr in block.instrs:
            for reg in instr.vregs_read():
                if reg not in def_set:
                    use_set.add(reg)
            def_set.update(instr.vregs_written())
        uses[block.label] = use_set
        defs[block.label] = def_set

    live_in: dict[str, set[VReg]] = {b.label: set() for b in blocks}
    live_out: dict[str, set[VReg]] = {b.label: set() for b in blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            label = block.label
            out: set[VReg] = set()
            for successor in block.successors():
                out |= live_in[successor]
            new_in = uses[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    # ------------------------------------------------------------------
    # Linearized positions: instruction k of block b gets a global index.
    # ------------------------------------------------------------------
    position = 0
    block_start: dict[str, int] = {}
    block_end: dict[str, int] = {}
    instr_pos: list[tuple[int, int, object]] = []
    for block in blocks:
        block_start[block.label] = position
        weight = 10 ** min(block.depth, 4)
        for instr in block.instrs:
            instr_pos.append((position, weight, instr))
            position += 1
        block_end[block.label] = position

    intervals: dict[VReg, LiveInterval] = {}

    def touch(reg: VReg, pos: int, weight: int) -> None:
        interval = intervals.get(reg)
        if interval is None:
            intervals[reg] = LiveInterval(reg, pos, pos + 1, use_count=weight)
        else:
            interval.start = min(interval.start, pos)
            interval.end = max(interval.end, pos + 1)
            interval.use_count += weight

    for param in func.params:
        touch(param, 0, weight=0)
    for pos, weight, instr in instr_pos:
        for reg in instr.vregs_read():
            touch(reg, pos, weight)
        for reg in instr.vregs_written():
            touch(reg, pos, 0)

    # extend across blocks where the value is live
    for block in blocks:
        for reg in live_in[block.label]:
            interval = intervals.get(reg)
            if interval is not None:
                interval.start = min(interval.start, block_start[block.label])
                interval.end = max(interval.end, block_start[block.label] + 1)
        for reg in live_out[block.label]:
            interval = intervals.get(reg)
            if interval is not None:
                interval.end = max(interval.end, block_end[block.label])

    return Liveness(
        live_in={k: frozenset(v) for k, v in live_in.items()},
        live_out={k: frozenset(v) for k, v in live_out.items()},
        intervals=intervals,
    )
