"""Register allocation: linear scan and Chaitin-style graph colouring.

The paper blames part of the AOT performance gap on "heuristic rule-based
register allocation schemes [that] are inadequate at capturing the memory
access pattern characteristics of SpMM" (§III, citing Chaitin's graph
colouring).  This module implements both classic schemes over the live
intervals from :mod:`repro.aot.liveness`:

* **linear scan** (Poletto & Sarkar) — what JIT-oriented and fast
  compilers use; spill decisions use loop-depth-weighted use counts
  (spill weights), as production linear-scan allocators do;
* **graph colouring** (Chaitin-Briggs) — interference graph, simplify
  nodes of degree < K, optimistic colouring, spill by lowest
  weight/degree metric.

Both allocate the two register classes (``int`` -> GPRs, ``vec`` ->
XMM/YMM/ZMM) independently, honour *precolored* vregs (function
parameters pinned to the SysV argument registers, whose colors return to
the pool when the parameter dies), and report spilled vregs; the
lowering pass materializes reloads/stores through reserved scratch
registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aot.ir import Function, VReg
from repro.aot.liveness import LiveInterval, Liveness, analyze
from repro.errors import RegisterPressureError

__all__ = ["Allocation", "RegisterPools", "allocate"]


@dataclass(frozen=True)
class RegisterPools:
    """Allocatable physical registers per class (scratch regs excluded).

    ``int_pool`` holds GPR names; ``vec_pool`` holds physical vector
    register codes (the xmm/ymm/zmm width is chosen at lowering from the
    vreg's type).
    """

    int_pool: tuple[str, ...]
    vec_pool: tuple[int, ...]
    int_scratch: tuple[str, ...] = ("r14", "r15", "r13")
    vec_scratch: tuple[int, ...] = (13, 14, 15)

    def pool(self, reg_class: str) -> tuple:
        return self.int_pool if reg_class == "int" else self.vec_pool


@dataclass
class Allocation:
    """Allocation result for one function."""

    assignment: dict[VReg, object] = field(default_factory=dict)
    spill_slots: dict[VReg, int] = field(default_factory=dict)
    pools: RegisterPools | None = None

    @property
    def num_spill_slots(self) -> int:
        return len(self.spill_slots)

    def location(self, vreg: VReg):
        if vreg in self.assignment:
            return ("reg", self.assignment[vreg])
        return ("spill", self.spill_slots[vreg])


def allocate(
    func: Function,
    pools: RegisterPools,
    strategy: str = "linear",
    precolored: dict[VReg, object] | None = None,
    liveness: Liveness | None = None,
) -> Allocation:
    """Allocate registers for ``func``.

    ``precolored`` pins vregs (typically function parameters) to specific
    physical registers; those registers become available to other vregs
    once the pinned value dies.
    """
    if strategy not in ("linear", "coloring"):
        raise ValueError(f"unknown allocation strategy {strategy!r}")
    live = liveness or analyze(func)
    precolored = dict(precolored or {})
    result = Allocation(pools=pools)
    result.assignment.update(precolored)

    slot_counter = [0]

    def next_slot() -> int:
        slot = slot_counter[0]
        slot_counter[0] += 1
        return slot

    for reg_class in ("int", "vec"):
        intervals = [
            iv for reg, iv in live.intervals.items()
            if reg.type.reg_class == reg_class
        ]
        pinned = {reg: color for reg, color in precolored.items()
                  if reg.type.reg_class == reg_class}
        pool = list(pools.pool(reg_class))
        for color in pinned.values():
            if color not in pool:
                pool.append(color)  # argument registers join the pool
        if strategy == "linear":
            _linear_scan(intervals, pool, result, next_slot, pinned)
        else:
            _graph_coloring(intervals, pool, result, next_slot, pinned)
    return result


# ----------------------------------------------------------------------
# Linear scan (Poletto & Sarkar 1999, with spill weights)
# ----------------------------------------------------------------------

def _linear_scan(intervals: list[LiveInterval], pool: list,
                 result: Allocation, next_slot,
                 pinned: dict[VReg, object]) -> None:
    free = list(pool)
    active: list[LiveInterval] = []  # sorted by end

    def expire(up_to: int) -> None:
        nonlocal active
        kept = []
        for old in active:
            if old.end <= up_to:
                free.append(result.assignment[old.vreg])
            else:
                kept.append(old)
        active = kept

    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end,
                                                iv.vreg not in pinned))
    for interval in ordered:
        expire(interval.start)
        if interval.vreg in pinned:
            color = pinned[interval.vreg]
            if color not in free:
                raise RegisterPressureError(
                    f"precolored register {color!r} unavailable at start of "
                    f"{interval.vreg!r}"
                )
            free.remove(color)
            active.append(interval)
            active.sort(key=lambda iv: iv.end)
            continue
        if free:
            result.assignment[interval.vreg] = free.pop()
            active.append(interval)
            active.sort(key=lambda iv: iv.end)
            continue
        spillable = [iv for iv in active if iv.vreg not in pinned]
        if not spillable:
            raise RegisterPressureError(
                f"no registers at all for class of {interval.vreg!r}"
            )
        # spill the cheapest by loop-depth-weighted use count (production
        # linear-scan allocators use spill weights, not furthest-end)
        victim = min([interval, *spillable], key=lambda iv: iv.use_count)
        if victim is not interval:
            result.assignment[interval.vreg] = result.assignment.pop(victim.vreg)
            result.spill_slots[victim.vreg] = next_slot()
            active.remove(victim)
            active.append(interval)
            active.sort(key=lambda iv: iv.end)
        else:
            result.spill_slots[interval.vreg] = next_slot()


# ----------------------------------------------------------------------
# Graph colouring (Chaitin-Briggs)
# ----------------------------------------------------------------------

def _graph_coloring(intervals: list[LiveInterval], pool: list,
                    result: Allocation, next_slot,
                    pinned: dict[VReg, object]) -> None:
    if not intervals:
        return
    k = len(pool)
    if k == 0:
        raise RegisterPressureError("empty register pool")

    # Interference graph from interval overlap (precolored included).
    neighbors: dict[VReg, set[VReg]] = {iv.vreg: set() for iv in intervals}
    ordered = sorted(intervals, key=lambda iv: iv.start)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            if b.start >= a.end:
                break
            neighbors[a.vreg].add(b.vreg)
            neighbors[b.vreg].add(a.vreg)

    metric = {
        iv.vreg: (iv.use_count + 1) / (len(neighbors[iv.vreg]) + 1)
        for iv in intervals
    }
    degree = {reg: len(adj) for reg, adj in neighbors.items()}
    removed: set[VReg] = set()
    stack: list[VReg] = []
    work = {iv.vreg for iv in intervals if iv.vreg not in pinned}
    while work:
        candidate = None
        for reg in sorted(work, key=lambda r: (degree[r], r.name)):
            if degree[reg] < k:
                candidate = reg
                break
        if candidate is None:
            # optimistic spill candidate: cheapest metric
            candidate = min(sorted(work, key=lambda r: r.name),
                            key=lambda r: metric[r])
        work.discard(candidate)
        removed.add(candidate)
        stack.append(candidate)
        for adj in neighbors[candidate]:
            if adj not in removed:
                degree[adj] -= 1

    while stack:
        reg = stack.pop()
        taken = {
            result.assignment[adj]
            for adj in neighbors[reg]
            if adj in result.assignment
        }
        color = next((phys for phys in pool if phys not in taken), None)
        if color is None:
            result.spill_slots[reg] = next_slot()
        else:
            result.assignment[reg] = color
