"""Optimization-pass pipeline over the three-address IR.

The AOT substrate used to be a fixed-function lowering: kernels →
liveness → allocation → lowering, with the only codegen degree of
freedom (the unroll factor) hardcoded per compiler personality.  This
module makes the middle of that pipeline explicit: a small set of
classic scalar optimizations, each a *pure* ``Function -> Function``
transform, selected by a named, hashable :class:`PassConfig`:

* **verify** — structural + dataflow sanity (always runs): every block
  terminated, no mid-block terminators, no use-before-definition on any
  path from entry, addressing operands in the integer register class.
* **fold** — per-block constant folding and propagation: operations on
  known constants evaluate at compile time (with 64-bit wraparound, so
  folding is bit-identical to the simulated machine), known values
  become immediates where the x86 lowering accepts them, and algebraic
  identities (``x+0``, ``x*1``, ``x*0``, ``x<<0``) simplify.
* **strength** — strength reduction: multiply by a power-of-two
  immediate becomes a shift, and single-use address arithmetic
  (``t = base + imm`` feeding only memory operands) folds into the
  addressing-mode displacement.
* **dce** — dead-code elimination: liveness-driven removal of pure
  instructions whose results are never used, plus unreachable-block
  removal.
* **schedule** — within-block list scheduling against the simulated
  core's port/latency tables (:class:`repro.machine.pipeline
  .PipelineSpec`): critical-path priority, dependence-preserving
  (registers and memory), deterministic tie-break by original order.
  Reordering never crosses a terminator and never reorders the
  ``fmad``/``vfma`` accumulation chain (those read their destination,
  a true dependence), so f32 results stay bit-identical.

``PassConfig.unroll`` is the sixth knob: it parameterizes kernel
*construction* (the reduction-loop unroll factor) rather than a
rewrite, and :func:`max_register_pressure` gives the search the
register-pressure estimate that bounds it.

Every executed pass increments ``aot_pass_runs_total{pass=...}`` in the
:mod:`repro.obs` metrics registry and records an ``aot.pass.<name>``
span, so a profiled compile shows exactly where its time went.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from heapq import heapify, heappop, heappush

from repro.aot.ir import Function, Instr, VReg
from repro.aot.liveness import analyze
from repro.errors import CompileError
from repro.isa.instructions import InsnKind
from repro.machine.pipeline import PipelineSpec
from repro.obs.metrics import get_registry
from repro.obs.trace import span as _span

__all__ = [
    "PASS_NAMES",
    "PassConfig",
    "eliminate_dead_code",
    "fold_constants",
    "max_register_pressure",
    "reduce_strength",
    "run_passes",
    "schedule_blocks",
    "verify_function",
]

#: transform order inside :func:`run_passes` — folding first exposes
#: dead values and power-of-two multiplies, strength reduction leaves
#: dead address arithmetic for DCE, and scheduling runs on final code
PASS_NAMES = ("fold", "strength", "dce", "schedule")


@dataclass(frozen=True)
class PassConfig:
    """One point in the optimization lattice (hashable, picklable).

    Attributes:
        unroll: Reduction-loop unroll factor the kernel constructor
            uses (scalar kernels repeat the body; vectorized kernels
            repeat the gather-FMA strip).
        fold / strength / dce / schedule: Whether the corresponding
            transform runs (see module docstring for what each does).
    """

    unroll: int = 1
    fold: bool = False
    strength: bool = False
    dce: bool = False
    schedule: bool = False

    def __post_init__(self) -> None:
        if self.unroll < 1:
            raise CompileError(
                f"unroll factor must be >= 1, got {self.unroll}")

    def ident(self) -> str:
        """Stable short identity, e.g. ``"u4+fold+strength+dce"``."""
        parts = [f"u{self.unroll}"]
        parts.extend(name for name in PASS_NAMES if getattr(self, name))
        return "+".join(parts)

    def enabled_passes(self) -> tuple[str, ...]:
        return tuple(name for name in PASS_NAMES if getattr(self, name))

    def at_level(self, opt_level: int) -> "PassConfig":
        """This config's pass set at an ``opt_level``: 0 disables every
        transform (fixed-function lowering), 1 adds the cleanup passes
        (fold/strength/dce), 2 adds scheduling.  The unroll factor is
        untouched — levels pick *passes*; level 3 (search) picks both
        and lives in :mod:`repro.aot.search`."""
        if opt_level <= 0:
            return replace(self, fold=False, strength=False, dce=False,
                           schedule=False)
        if opt_level == 1:
            return replace(self, fold=True, strength=True, dce=True,
                           schedule=False)
        return replace(self, fold=True, strength=True, dce=True,
                       schedule=True)


# ----------------------------------------------------------------------
# verify
# ----------------------------------------------------------------------
def _preds_map(func: Function) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {b.label: [] for b in func.blocks}
    for block in func.blocks:
        for successor in block.successors():
            preds[successor].append(block.label)
    return preds


def _reachable_labels(func: Function) -> set[str]:
    blocks = func.block_map()
    seen = {func.blocks[0].label}
    work = [func.blocks[0].label]
    while work:
        for successor in blocks[work.pop()].successors():
            if successor not in seen:
                seen.add(successor)
                work.append(successor)
    return seen


def verify_function(func: Function) -> Function:
    """Check structural and dataflow invariants; raise on violation.

    Beyond :meth:`Function.validate` (labels, mid-block terminators,
    branch targets) this rejects blocks with *no* terminator, any vreg
    read that is not dominated by a definition on every path from
    entry (parameters count as defined at entry), non-integer or
    immediate memory-address operands, and ``shl`` by a non-immediate
    (the lowering has no register-shift form).  Returns ``func``
    unchanged — the verifier is the one pass that never rewrites.
    """
    func.validate()
    for block in func.blocks:
        block.terminator  # raises CompileError when the block lacks one
        for instr in block.instrs:
            for key in ("base", "index"):
                value = instr.attrs.get(key)
                if value is None:
                    continue
                if not isinstance(value, VReg) or value.type.reg_class != "int":
                    raise CompileError(
                        f"memory {key} operand of {instr!r} in block "
                        f"{block.label!r} must be an integer vreg")
            if instr.op == "shl" and not isinstance(instr.srcs[1], int):
                raise CompileError(
                    f"shl by register is not lowerable: {instr!r} in "
                    f"block {block.label!r}")
            if instr.op == "cbr" and not isinstance(instr.srcs[0], VReg):
                raise CompileError(
                    f"cbr first operand must be a vreg: {instr!r}")

    # forward must-be-defined dataflow: defined_in[b] = ∩ over preds of
    # (defined_in[p] ∪ defs[p]); entry starts from the parameters.
    # Intersection starts from the universal set so loops converge from
    # above.  Unreachable blocks are skipped (DCE's job, not an error).
    reachable = _reachable_labels(func)
    preds = _preds_map(func)
    defs: dict[str, set[VReg]] = {}
    for block in func.blocks:
        block_defs: set[VReg] = set()
        for instr in block.instrs:
            block_defs.update(instr.vregs_written())
        defs[block.label] = block_defs
    universe = set(func.all_vregs()) | set(func.params)
    entry = func.blocks[0].label
    defined_in = {label: set(universe) for label in reachable}
    defined_in[entry] = set(func.params)
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            label = block.label
            if label not in reachable or label == entry:
                continue
            incoming = [p for p in preds[label] if p in reachable]
            new_in = set(universe)
            for pred in incoming:
                new_in &= defined_in[pred] | defs[pred]
            if new_in != defined_in[label]:
                defined_in[label] = new_in
                changed = True
    for block in func.blocks:
        if block.label not in reachable:
            continue
        local = set(defined_in[block.label])
        for instr in block.instrs:
            for reg in instr.vregs_read():
                if reg not in local:
                    raise CompileError(
                        f"use of {reg!r} before definition in block "
                        f"{block.label!r} of {func.name!r}")
            local.update(instr.vregs_written())
    return func


# ----------------------------------------------------------------------
# fold
# ----------------------------------------------------------------------
_INT_BINOPS = {"add", "sub", "mul", "and", "shl"}
#: ops accepting an int immediate as their *second* source after
#: lowering (the first operand of two-address forms must stay a vreg)
_IMM_SECOND = {"add", "sub", "mul", "and"}
_IMM32_MIN, _IMM32_MAX = -(1 << 31), (1 << 31) - 1


def _wrap64(value: int) -> int:
    """Two's-complement 64-bit wraparound — folding must agree bit-for-
    bit with the simulated machine's integer arithmetic."""
    return ((value + (1 << 63)) & ((1 << 64) - 1)) - (1 << 63)


def _fits_imm32(value: int) -> bool:
    return _IMM32_MIN <= value <= _IMM32_MAX


def _eval_binop(op: str, a: int, b: int) -> int:
    if op == "add":
        return _wrap64(a + b)
    if op == "sub":
        return _wrap64(a - b)
    if op == "mul":
        return _wrap64(a * b)
    if op == "and":
        return a & b
    if op == "shl":
        return _wrap64(a << (b & 63))
    raise CompileError(f"unfoldable op {op!r}")


def fold_constants(func: Function) -> Function:
    """Per-block constant propagation, folding and algebraic identity
    simplification (see module docstring).  Immediate substitution is
    restricted to operand positions the lowering accepts (second
    sources, compare/store operands) and to values that fit a signed
    32-bit immediate."""
    func = func.clone()
    for block in func.blocks:
        known: dict[VReg, int] = {}
        out: list[Instr] = []
        for instr in block.instrs:
            op = instr.op
            # substitute known values where an immediate is lowerable
            if op in _IMM_SECOND or op == "cbr":
                second = instr.srcs[1]
                if isinstance(second, VReg) and second in known \
                        and _fits_imm32(known[second]):
                    instr = Instr(op, instr.dst,
                                  (instr.srcs[0], known[second]),
                                  dict(instr.attrs))
            elif op == "store":
                value = instr.srcs[0]
                if isinstance(value, VReg) and value in known \
                        and _fits_imm32(known[value]):
                    instr = Instr(op, None, (known[value], *instr.srcs[1:]),
                                  dict(instr.attrs))
            rewritten = self_value = None
            if op == "const":
                self_value = _wrap64(instr.srcs[0])
                rewritten = Instr("const", instr.dst, (self_value,))
            elif op == "mov":
                source = instr.srcs[0]
                if isinstance(source, int) or source in known:
                    self_value = (_wrap64(source) if isinstance(source, int)
                                  else known[source])
                    rewritten = Instr("const", instr.dst, (self_value,))
            elif op in _INT_BINOPS:
                first, second = instr.srcs
                a = known.get(first) if isinstance(first, VReg) else None
                b = second if isinstance(second, int) else known.get(second)
                if a is not None and b is not None:
                    self_value = _eval_binop(op, a, b)
                    rewritten = Instr("const", instr.dst, (self_value,))
                elif isinstance(b, int):
                    rewritten = _algebraic(instr, b)
                    if rewritten is not None and rewritten.op == "const":
                        self_value = rewritten.srcs[0]
            if rewritten is not None:
                instr = rewritten
            for written in instr.vregs_written():
                known.pop(written, None)
            if self_value is not None and instr.dst is not None:
                known[instr.dst] = self_value
            out.append(instr)
        block.instrs = out
    return func


def _algebraic(instr: Instr, b: int) -> Instr | None:
    """Identity simplifications when only the second operand is known."""
    op, first = instr.op, instr.srcs[0]
    if op in ("add", "sub", "shl") and b == 0:
        return Instr("mov", instr.dst, (first,))
    if op == "mul":
        if b == 1:
            return Instr("mov", instr.dst, (first,))
        if b == 0:
            return Instr("const", instr.dst, (0,))
    if op == "and":
        if b == 0:
            return Instr("const", instr.dst, (0,))
        if b == -1:
            return Instr("mov", instr.dst, (first,))
    return None


# ----------------------------------------------------------------------
# dce
# ----------------------------------------------------------------------
#: ops safe to drop when their destination is dead: no memory writes,
#: no control flow.  Dead *loads* are removable too — the kernels only
#: address mapped operands, so dropping one cannot unmask a fault.
_PURE_OPS = frozenset({
    "const", "mov", "add", "sub", "mul", "shl", "and",
    "load", "loadf", "loadv", "vloadi",
    "fadd", "fsub", "fmul", "fmad",
    "vadd", "vmul", "vfma", "vbroadcast_mem", "vbroadcasti_mem",
    "vaddi", "vmuli", "vgather", "vreduce",
})


def eliminate_dead_code(func: Function) -> Function:
    """Remove unreachable blocks and pure instructions with dead
    results, iterating block-level liveness to a fixed point so cross-
    block dead chains collapse too."""
    func = func.clone()
    reachable = _reachable_labels(func)
    func.blocks = [b for b in func.blocks if b.label in reachable]
    for _ in range(8):
        changed = False
        live_info = analyze(func)
        for block in func.blocks:
            live = set(live_info.live_out[block.label])
            kept: list[Instr] = []
            for instr in reversed(block.instrs):
                written = instr.vregs_written()
                if (instr.op in _PURE_OPS and written
                        and all(reg not in live for reg in written)):
                    changed = True
                    continue
                for reg in written:
                    live.discard(reg)
                live.update(instr.vregs_read())
                kept.append(instr)
            kept.reverse()
            block.instrs = kept
        if not changed:
            break
    return func


# ----------------------------------------------------------------------
# strength
# ----------------------------------------------------------------------
def reduce_strength(func: Function) -> Function:
    """Strength reduction: ``mul`` by a power-of-two immediate becomes
    ``shl``, and address adds feeding only same-block memory operands
    fold into the displacement (the add itself is left for DCE)."""
    func = func.clone()
    for block in func.blocks:
        for i, instr in enumerate(block.instrs):
            if (instr.op == "mul" and isinstance(instr.srcs[1], int)
                    and instr.srcs[1] > 1
                    and instr.srcs[1] & (instr.srcs[1] - 1) == 0):
                block.instrs[i] = Instr(
                    "shl", instr.dst,
                    (instr.srcs[0], instr.srcs[1].bit_length() - 1))
    _fold_addressing(func)
    return func


def _fold_addressing(func: Function) -> None:
    # global use/def census: a candidate t = add(a, imm) must be
    # defined exactly once, used only as a base/index register, and
    # only within its defining block (so no path sees a stale t)
    write_count: dict[VReg, int] = {}
    value_uses: dict[VReg, int] = {}
    for block in func.blocks:
        for instr in block.instrs:
            for reg in instr.vregs_written():
                write_count[reg] = write_count.get(reg, 0) + 1
            for src in instr.srcs:
                if isinstance(src, VReg):
                    value_uses[src] = value_uses.get(src, 0) + 1
            if instr.op in ("vfma", "fmad") and instr.dst is not None:
                value_uses[instr.dst] = value_uses.get(instr.dst, 0) + 1
    live_info = analyze(func)
    for block in func.blocks:
        live_out = live_info.live_out[block.label]
        for i, instr in enumerate(block.instrs):
            if not (instr.op == "add" and isinstance(instr.srcs[0], VReg)
                    and isinstance(instr.srcs[1], int)):
                continue
            target, base, disp = instr.dst, instr.srcs[0], instr.srcs[1]
            if (target is None or target in live_out
                    or write_count.get(target, 0) != 1
                    or value_uses.get(target, 0) != 0):
                continue
            uses: list[int] = []
            blocked = False
            for j in range(i + 1, len(block.instrs)):
                later = block.instrs[j]
                if base in later.vregs_written() \
                        or target in later.vregs_written():
                    blocked = True
                    break
                if later.attrs.get("base") is target \
                        or later.attrs.get("index") is target:
                    uses.append(j)
            if blocked or not uses:
                continue
            rewrites = []
            for j in uses:
                later = block.instrs[j]
                attrs = dict(later.attrs)
                if attrs.get("base") is target:
                    attrs["base"] = base
                    attrs["disp"] = attrs.get("disp", 0) + disp
                if attrs.get("index") is target:
                    attrs["index"] = base
                    attrs["disp"] = (attrs.get("disp", 0)
                                     + disp * attrs.get("scale", 1))
                if not _fits_imm32(attrs["disp"]):
                    rewrites = None
                    break
                rewrites.append((j, Instr(later.op, later.dst, later.srcs,
                                          attrs)))
            if rewrites:
                for j, replacement in rewrites:
                    block.instrs[j] = replacement


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------
_MEM_READS = frozenset({"load", "loadf", "loadv", "vloadi", "vgather",
                        "vbroadcast_mem", "vbroadcasti_mem"})
_MEM_WRITES = frozenset({"store", "storef", "storev"})


def _ir_latencies(spec: PipelineSpec) -> dict[str, float]:
    """IR-op critical-path weights from the machine's cost tables."""
    kind_cost = spec.kind_cost_map()
    l1 = spec.load_latency_map()["l1"]

    def lat(kind: InsnKind) -> float:
        return kind_cost[kind][0]

    return {
        "const": lat(InsnKind.MOV_INT), "mov": lat(InsnKind.MOV_INT),
        "add": lat(InsnKind.ALU_INT), "sub": lat(InsnKind.ALU_INT),
        "and": lat(InsnKind.ALU_INT), "shl": lat(InsnKind.ALU_INT),
        "mul": lat(InsnKind.MUL_INT),
        "load": l1, "loadf": l1, "loadv": l1, "vloadi": l1,
        "store": 1.0, "storef": 1.0, "storev": 1.0,
        "fadd": lat(InsnKind.VEC_ALU), "fsub": lat(InsnKind.VEC_ALU),
        "fmul": lat(InsnKind.VEC_MUL), "fmad": lat(InsnKind.VEC_FMA),
        "vadd": lat(InsnKind.VEC_ALU), "vaddi": lat(InsnKind.VEC_ALU),
        "vmul": lat(InsnKind.VEC_MUL), "vfma": lat(InsnKind.VEC_FMA),
        "vmuli": lat(InsnKind.VEC_IMUL),
        "vbroadcast_mem": lat(InsnKind.VEC_BCAST) + l1,
        "vbroadcasti_mem": lat(InsnKind.VEC_BCAST) + l1,
        "vgather": lat(InsnKind.VEC_GATHER),
        "vreduce": lat(InsnKind.VEC_EXTRACT) + 2 * lat(InsnKind.VEC_HADD),
    }


def schedule_blocks(func: Function,
                    spec: PipelineSpec | None = None) -> Function:
    """List-schedule each block body by critical-path priority.

    Dependence edges: register RAW/WAR/WAW (``fmad``/``vfma`` read
    their destination, so accumulation chains keep their order — f32
    bit-identity is preserved by construction), and conservative memory
    ordering (loads never cross stores, stores never cross anything
    memory).  Ties break toward the original instruction index, so the
    schedule is deterministic and a no-dependence block is untouched
    in the absence of latency differences.
    """
    func = func.clone()
    latency = _ir_latencies(spec or PipelineSpec())
    for block in func.blocks:
        if len(block.instrs) < 3:
            continue
        body, term = block.instrs[:-1], block.instrs[-1]
        n = len(body)
        reads = [set(instr.vregs_read()) for instr in body]
        writes = [set(instr.vregs_written()) for instr in body]
        succs: list[list[int]] = [[] for _ in range(n)]
        npreds = [0] * n
        for j in range(1, n):
            opj = body[j].op
            for i in range(j):
                opi = body[i].op
                dep = bool(writes[i] & reads[j]) \
                    or bool(reads[i] & writes[j]) \
                    or bool(writes[i] & writes[j])
                if not dep:
                    dep = ((opi in _MEM_WRITES
                            and (opj in _MEM_READS or opj in _MEM_WRITES))
                           or (opi in _MEM_READS and opj in _MEM_WRITES))
                if dep:
                    succs[i].append(j)
                    npreds[j] += 1
        priority = [0.0] * n
        for i in range(n - 1, -1, -1):
            tail = max((priority[j] for j in succs[i]), default=0.0)
            priority[i] = latency.get(body[i].op, 1.0) + tail
        ready = [(-priority[i], i) for i in range(n) if npreds[i] == 0]
        heapify(ready)
        order: list[int] = []
        while ready:
            _, i = heappop(ready)
            order.append(i)
            for j in succs[i]:
                npreds[j] -= 1
                if npreds[j] == 0:
                    heappush(ready, (-priority[j], j))
        if len(order) != n:
            raise CompileError(
                f"scheduling cycle in block {block.label!r}")
        block.instrs = [body[i] for i in order] + [term]
    return func


# ----------------------------------------------------------------------
# register pressure
# ----------------------------------------------------------------------
def max_register_pressure(func: Function) -> dict[str, int]:
    """Peak simultaneously-live vregs per register class (``"int"`` /
    ``"vec"``), from the allocators' own linearized live intervals —
    the estimate the unroll search bounds candidates with."""
    intervals = analyze(func).intervals.values()
    pressure: dict[str, int] = {}
    for reg_class in ("int", "vec"):
        events: list[tuple[int, int]] = []
        for interval in intervals:
            if interval.vreg.type.reg_class != reg_class:
                continue
            events.append((interval.start, 1))
            events.append((interval.end, -1))
        events.sort()
        current = peak = 0
        for _, delta in events:
            current += delta
            if current > peak:
                peak = current
        pressure[reg_class] = peak
    return pressure


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
_PASS_FNS = {
    "fold": fold_constants,
    "strength": reduce_strength,
    "dce": eliminate_dead_code,
    "schedule": schedule_blocks,
}


def _count(name: str) -> None:
    get_registry().counter("aot_pass_runs_total", **{"pass": name}).inc()


def run_passes(func: Function, config: PassConfig,
               spec: PipelineSpec | None = None) -> Function:
    """Run ``config``'s enabled transforms over ``func`` (pure: the
    input function is never mutated).  The verifier brackets the
    pipeline — once on the input, and again after any rewrite — so a
    transform bug surfaces as a :class:`~repro.errors.CompileError` at
    compile time, not as a miscompiled kernel."""
    with _span("aot.pass.verify", func=func.name):
        verify_function(func)
    _count("verify")
    enabled = config.enabled_passes()
    for name in enabled:
        with _span(f"aot.pass.{name}", func=func.name):
            if name == "schedule":
                func = schedule_blocks(func, spec)
            else:
                func = _PASS_FNS[name](func)
        _count(name)
    if enabled:
        with _span("aot.pass.verify", func=func.name):
            verify_function(func)
        _count("verify")
    return func
