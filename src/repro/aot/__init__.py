"""Ahead-of-time compiler substrate: the paper's baseline side.

The paper compares JITSPMM against code produced by AOT C/C++ compilers
(gcc / clang / icc) and against Intel MKL's hand-tuned SpMM routine.
Neither exists in this environment, so this subpackage *is* the
substitute: a miniature compiler with a three-address IR, dataflow
liveness, two register allocators (linear scan and Chaitin-style graph
colouring) with spilling, and a lowering pass to the shared x86-64
subset — plus compiler "personalities" that reproduce the relevant
differences between gcc, clang and icc (unroll factors, allocator
choice, whether AVX-512 auto-vectorization kicks in).

The crucial property (paper §III): these kernels compile Algorithm 1
*as written*, with the column loop outside the non-zero loop and no
runtime knowledge of ``d`` — so they reload ``A.vals[idx]`` /
``A.col_indices[idx]`` for every output column and keep the column-loop
branches that JITSPMM's coarse-grain column merging removes.
"""

from repro.aot.compiler import AotCompiler, CompilerPersonality, PERSONALITIES
from repro.aot.ir import Block, Function, Instr, VReg
from repro.aot.mkl import MklKernel
from repro.aot.passes import PassConfig, run_passes, verify_function
from repro.aot.search import PassChoice, search_passes

__all__ = [
    "AotCompiler",
    "Block",
    "CompilerPersonality",
    "Function",
    "Instr",
    "MklKernel",
    "PERSONALITIES",
    "PassChoice",
    "PassConfig",
    "VReg",
    "run_passes",
    "search_passes",
    "verify_function",
]
