"""Convenience builder for constructing IR functions.

Front-end sugar over :mod:`repro.aot.ir`: tracks a current block, offers
one method per opcode, and allocates fresh vregs/labels.  The kernel
constructors in :mod:`repro.aot.kernels` use it the way a tiny C front
end would emit code.
"""

from __future__ import annotations

import itertools

from repro.aot.ir import Block, Function, Instr, IrType, VReg
from repro.errors import CompileError

__all__ = ["IRBuilder"]


class IRBuilder:
    """Stateful builder appending instructions to a current block."""

    def __init__(self, name: str, num_params: int = 0,
                 param_hints: tuple[str, ...] = ()) -> None:
        self.func = Function(name)
        for position in range(num_params):
            hint = param_hints[position] if position < len(param_hints) else f"arg{position}"
            self.func.params.append(VReg(hint, IrType.I64))
        self._current: Block | None = None
        self._labels = itertools.count()
        self.start_block("entry")

    # ------------------------------------------------------------------
    # Blocks and labels
    # ------------------------------------------------------------------
    def fresh_label(self, hint: str = "bb") -> str:
        return f"{hint}{next(self._labels)}"

    def start_block(self, label: str, depth: int = 0) -> str:
        self._current = self.func.block(label, depth=depth)
        return label

    @property
    def current_label(self) -> str:
        if self._current is None:
            raise CompileError("no current block")
        return self._current.label

    def _emit(self, instr: Instr) -> VReg | None:
        if self._current is None:
            raise CompileError("emitting outside any block")
        self._current.instrs.append(instr)
        if instr.is_terminator:
            self._current = None
        return instr.dst

    def param(self, position: int) -> VReg:
        return self.func.params[position]

    def vreg(self, type: IrType, hint: str = "t") -> VReg:
        return self.func.new_vreg(type, hint)

    # ------------------------------------------------------------------
    # Integer ops
    # ------------------------------------------------------------------
    def const(self, value: int, hint: str = "c") -> VReg:
        dst = self.vreg(IrType.I64, hint)
        self._emit(Instr("const", dst, (value,)))
        return dst

    def mov(self, src: VReg, hint: str = "cp") -> VReg:
        dst = self.vreg(src.type, hint)
        self._emit(Instr("mov", dst, (src,)))
        return dst

    def _int_bin(self, op: str, a, b, hint: str) -> VReg:
        dst = self.vreg(IrType.I64, hint)
        self._emit(Instr(op, dst, (a, b)))
        return dst

    def add(self, a, b, hint: str = "sum") -> VReg:
        return self._int_bin("add", a, b, hint)

    # in-place forms for loop variables (the IR is not SSA)
    def iadd(self, dst: VReg, b) -> None:
        """In-place ``dst += b`` (loop-variable update)."""
        self._emit(Instr("add", dst, (dst, b)))

    def iset(self, dst: VReg, src) -> None:
        """In-place ``dst = src`` (re-assign an existing vreg)."""
        self._emit(Instr("mov", dst, (src,)))

    def sub(self, a, b, hint: str = "dif") -> VReg:
        return self._int_bin("sub", a, b, hint)

    def mul(self, a, b, hint: str = "prd") -> VReg:
        return self._int_bin("mul", a, b, hint)

    def shl(self, a, b, hint: str = "shf") -> VReg:
        return self._int_bin("shl", a, b, hint)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _mem_attrs(self, base, index, scale, disp, size) -> dict:
        return {"base": base, "index": index, "scale": scale,
                "disp": disp, "size": size}

    def load(self, base, index=None, scale=1, disp=0, size=8,
             hint: str = "ld") -> VReg:
        dst = self.vreg(IrType.I64, hint)
        self._emit(Instr("load", dst, (),
                         self._mem_attrs(base, index, scale, disp, size)))
        return dst

    def store(self, value, base, index=None, scale=1, disp=0, size=8) -> None:
        self._emit(Instr("store", None, (value,),
                         self._mem_attrs(base, index, scale, disp, size)))

    def loadf(self, base, index=None, scale=1, disp=0, hint: str = "f") -> VReg:
        dst = self.vreg(IrType.F32, hint)
        self._emit(Instr("loadf", dst, (),
                         self._mem_attrs(base, index, scale, disp, 4)))
        return dst

    def storef(self, value: VReg, base, index=None, scale=1, disp=0) -> None:
        self._emit(Instr("storef", None, (value,),
                         self._mem_attrs(base, index, scale, disp, 4)))

    def loadv(self, lanes: int, base, index=None, scale=1, disp=0,
              hint: str = "v") -> VReg:
        dst = self.vreg(IrType.vec_f(lanes), hint)
        self._emit(Instr("loadv", dst, (),
                         self._mem_attrs(base, index, scale, disp, 4 * lanes)))
        return dst

    def storev(self, value: VReg, base, index=None, scale=1, disp=0) -> None:
        size = 4 * value.type.lanes
        self._emit(Instr("storev", None, (value,),
                         self._mem_attrs(base, index, scale, disp, size)))

    def vloadi(self, lanes: int, base, index=None, scale=1, disp=0,
               hint: str = "vi") -> VReg:
        dst = self.vreg(IrType.vec_i(lanes), hint)
        self._emit(Instr("vloadi", dst, (),
                         self._mem_attrs(base, index, scale, disp, 4 * lanes)))
        return dst

    # ------------------------------------------------------------------
    # Float / vector arithmetic
    # ------------------------------------------------------------------
    def _f_bin(self, op: str, a: VReg, b: VReg, hint: str) -> VReg:
        dst = self.vreg(IrType.F32, hint)
        self._emit(Instr(op, dst, (a, b)))
        return dst

    def fadd(self, a, b, hint: str = "fs"):
        return self._f_bin("fadd", a, b, hint)

    def fsub(self, a, b, hint: str = "fd"):
        return self._f_bin("fsub", a, b, hint)

    def fmul(self, a, b, hint: str = "fp"):
        return self._f_bin("fmul", a, b, hint)

    def fmad(self, acc: VReg, a: VReg, b: VReg) -> None:
        """Scalar accumulate: ``acc += a * b`` (in place)."""
        self._emit(Instr("fmad", acc, (a, b)))

    def fzero(self, hint: str = "fz") -> VReg:
        """Materialize scalar float 0 (lowered to a zeroing idiom)."""
        dst = self.vreg(IrType.F32, hint)
        self._emit(Instr("fsub", dst, (dst, dst), {"zero": True}))
        return dst

    def vzero(self, lanes: int, hint: str = "vz") -> VReg:
        dst = self.vreg(IrType.vec_f(lanes), hint)
        self._emit(Instr("vadd", dst, (dst, dst), {"zero": True}))
        return dst

    def _v_bin(self, op: str, a: VReg, b: VReg, hint: str) -> VReg:
        dst = self.vreg(a.type, hint)
        self._emit(Instr(op, dst, (a, b)))
        return dst

    def vadd(self, a, b, hint: str = "va"):
        return self._v_bin("vadd", a, b, hint)

    def vmul(self, a, b, hint: str = "vm"):
        return self._v_bin("vmul", a, b, hint)

    def vaddi(self, a, b, hint: str = "vai"):
        return self._v_bin("vaddi", a, b, hint)

    def vmuli(self, a, b, hint: str = "vmi"):
        return self._v_bin("vmuli", a, b, hint)

    def vfma(self, acc: VReg, a: VReg, b: VReg) -> None:
        """Vector accumulate: ``acc += a * b`` (in place)."""
        self._emit(Instr("vfma", acc, (a, b)))

    def vbroadcast_mem(self, lanes: int, base, index=None, scale=1, disp=0,
                       hint: str = "bc") -> VReg:
        dst = self.vreg(IrType.vec_f(lanes), hint)
        self._emit(Instr("vbroadcast_mem", dst, (),
                         self._mem_attrs(base, index, scale, disp, 4)))
        return dst

    def vbroadcasti_mem(self, lanes: int, base, index=None, scale=1, disp=0,
                        hint: str = "bci") -> VReg:
        dst = self.vreg(IrType.vec_i(lanes), hint)
        self._emit(Instr("vbroadcasti_mem", dst, (),
                         self._mem_attrs(base, index, scale, disp, 4)))
        return dst

    def vgather(self, base: VReg, index_vec: VReg, scale: int = 4,
                hint: str = "gth") -> VReg:
        dst = self.vreg(IrType.vec_f(index_vec.type.lanes), hint)
        self._emit(Instr("vgather", dst, (index_vec,),
                         {"base": base, "scale": scale}))
        return dst

    def vreduce(self, src: VReg, hint: str = "red") -> VReg:
        dst = self.vreg(IrType.F32, hint)
        self._emit(Instr("vreduce", dst, (src,)))
        return dst

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def br(self, label: str) -> None:
        self._emit(Instr("br", None, (), {"label": label}))

    def cbr(self, cond: str, a, b, then_label: str, else_label: str) -> None:
        self._emit(Instr("cbr", None, (a, b),
                         {"cond": cond, "then_label": then_label,
                          "else_label": else_label}))

    def ret(self) -> None:
        self._emit(Instr("ret"))

    def finish(self) -> Function:
        self.func.validate()
        return self.func
