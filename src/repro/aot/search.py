"""Feedback-directed search over the AOT optimization-pass lattice.

The replay simulator is fast enough (post record/replay vectorization)
to graduate from validation artifact to *cost oracle*: this module
closes the loop by compiling candidate :class:`~repro.aot.passes
.PassConfig` points, scoring each by simulated cycles on a downsampled
operand sample (:func:`repro.machine.replay.replay_cost`), and
returning the cheapest configuration that is *bit-identical* to the
personality's fixed-function baseline — an optimization that changes
f32 accumulation order is rejected outright, never special-cased.

Search shape: coordinate descent over three axes — the unroll factor
(register-pressure-filtered candidates), the cleanup passes
(fold/strength/dce as one coordinate), and the scheduler — starting
from the personality's level-2 default.  The fixed-function baseline
is always evaluated first and wins ties, so a search can never regress
below the personality's historical lowering on the sample.  Everything
is deterministic: a pinned sample seed, deterministic simulation, and
stable tie-breaks, so the same matrix and budget always produce the
same winning config.

Winning verdicts persist in the process-wide autotune memo
(:func:`repro.core.autotune.record_pass_verdict`), namespaced under
``("aot-passes", ...)`` keys — they therefore ride the existing
``export_autotune_memo`` / ``seed_autotune_memo`` gateway broadcast,
and a matrix searched by one serving worker is never re-searched by
its peers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.aot.compiler import (
    AotCompiler,
    CompilerPersonality,
    register_pools_for,
)
from repro.aot.passes import PassConfig, max_register_pressure
from repro.errors import CompileError
from repro.machine.replay import replay_cost
from repro.obs.metrics import get_registry
from repro.obs.trace import span as _span
from repro.sparse.csr import CsrMatrix

__all__ = ["PassChoice", "sample_operands", "search_passes",
           "unroll_candidates"]

#: downsample target: enough non-zeros for the cost ranking to transfer
#: to the full workload, small enough that a 16-candidate search costs
#: a fraction of one full-matrix simulated run
_SAMPLE_TARGET_NNZ = 4096
_SAMPLE_SEED = 0xA07
#: dense columns simulated per sample evaluation (capped: cycles scale
#: ~linearly in d, so ranking at a small d ranks the full problem)
_SAMPLE_MAX_D = 16
#: unroll factors the search may consider, before pressure filtering
_UNROLL_LATTICE = (1, 2, 4, 8)
#: estimated live values beyond the allocatable pool a candidate may
#: need before the pressure filter drops it (a few spills are routine —
#: the personalities' own defaults spill — but runaway pressure is not)
_SPILL_HEADROOM = 8


@dataclass(frozen=True)
class PassChoice:
    """One search's verdict (picklable — it rides the autotune memo).

    ``scores`` records every evaluated candidate in evaluation order as
    ``(ident, cycles)`` pairs; rejected candidates (compile failure or
    a bit-identity mismatch against the baseline) carry cycles -1.
    """

    personality: str
    config: PassConfig
    cycles: int
    baseline_cycles: int
    evaluated: int
    rejected: int
    scores: tuple = ()

    @property
    def reduction_pct(self) -> float:
        """Simulated-cycle reduction vs the fixed-function baseline."""
        if not self.baseline_cycles:
            return 0.0
        return 100.0 * (1.0 - self.cycles / self.baseline_cycles)

    def describe(self) -> str:
        lines = [f"{self.personality}: {self.config.ident()} "
                 f"({self.cycles:,} cycles on sample, "
                 f"{self.reduction_pct:+.1f}% vs fixed-function, "
                 f"{self.evaluated} candidates, {self.rejected} rejected)"]
        for ident, cycles in sorted(
                (s for s in self.scores if s[1] >= 0), key=lambda s: s[1]):
            lines.append(f"  {ident:28s} {cycles:12,} cycles")
        return "\n".join(lines)


def _resolve(personality: CompilerPersonality | str) -> CompilerPersonality:
    if isinstance(personality, str):
        return AotCompiler(personality).personality
    return personality


def unroll_candidates(
        personality: CompilerPersonality | str) -> tuple[int, ...]:
    """Register-pressure-aware unroll factors for one personality.

    Each lattice point's kernel is built and its peak live-value count
    per register class (:func:`~repro.aot.passes.max_register_pressure`)
    compared against the personality's allocatable pools plus a small
    spill headroom; factors that would drown the allocator in spills
    are dropped.  The personality's own default always survives.
    """
    personality = _resolve(personality)
    pools = register_pools_for(personality.isa)
    budget = {"int": len(pools.int_pool) + _SPILL_HEADROOM,
              "vec": len(pools.vec_pool) + _SPILL_HEADROOM}
    candidates = []
    for factor in _UNROLL_LATTICE:
        pressure = max_register_pressure(
            personality.kernel(PassConfig(unroll=factor)))
        if factor == personality.unroll or (
                pressure["int"] <= budget["int"]
                and pressure["vec"] <= budget["vec"]):
            candidates.append(factor)
    return tuple(candidates)


def sample_operands(matrix: CsrMatrix, d: int,
                    target_nnz: int = _SAMPLE_TARGET_NNZ):
    """A downsampled ``(matrix, x)`` pair for candidate scoring.

    Rows are taken at a fixed stride (preserving the row-length mix a
    contiguous prefix would bias), keeping the full column space so
    gather/cache behavior stays representative; ``d`` is capped at
    ``_SAMPLE_MAX_D``.  The dense operand is seeded deterministically —
    sample identity is a pure function of the matrix and ``d``.
    """
    d = max(1, min(int(d), _SAMPLE_MAX_D))
    row_ptr = matrix.row_ptr
    if matrix.nnz > target_nnz and matrix.nrows > 1:
        stride = max(1, -(-matrix.nnz // target_nnz))  # ceil div
        rows = np.arange(0, matrix.nrows, stride, dtype=np.int64)
        counts = row_ptr[rows + 1] - row_ptr[rows]
        new_row_ptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=new_row_ptr[1:])
        take = np.concatenate(
            [np.arange(row_ptr[r], row_ptr[r + 1]) for r in rows]
        ) if len(rows) else np.zeros(0, dtype=np.int64)
        sampled = CsrMatrix.from_arrays(
            len(rows), matrix.ncols, new_row_ptr,
            matrix.col_indices[take], matrix.vals[take],
            name=f"{matrix.name or 'matrix'}-sample")
    else:
        sampled = matrix
    rng = np.random.default_rng(_SAMPLE_SEED)
    x = rng.standard_normal((matrix.ncols, d), dtype=np.float32)
    return sampled, x


def _evaluate(personality: CompilerPersonality, config: PassConfig,
              sampled: CsrMatrix, x, l1, l2):
    """Compile one candidate and run it on the sample; returns
    ``(cycles, y)``.  Import of the pipeline is local: the api package
    imports this module's siblings at registry time."""
    from repro.api import get_system

    compiled = AotCompiler(personality).compile_spmm(passes=config)
    artifact = get_system(f"aot:{personality.name}").prepare(
        split="row", threads=1, dynamic=False, backend="sim-fused",
        l1=l1, l2=l2, kernel=compiled)
    plan = artifact.bind(sampled, x)
    counters = replay_cost(plan.operands.memory, plan._thread_specs(),
                           l1=l1, l2=l2)
    return int(counters.cycles), plan.y_host.copy()


def search_passes(personality: CompilerPersonality | str,
                  matrix: CsrMatrix, d: int, *, budget: int = 16,
                  l1=None, l2=None, memo: bool = True) -> PassChoice:
    """Find the cheapest bit-identical :class:`PassConfig` for
    ``(personality, matrix, d)`` within ``budget`` compilations.

    Deterministic and never-regressing: the fixed-function baseline is
    candidate #0 and wins ties, so the returned config's sample cycles
    are always <= the baseline's.  With ``memo`` (default), verdicts
    are keyed by the matrix *content* fingerprint plus the cache
    geometry and reused process-wide (and fleet-wide, via the autotune
    memo broadcast).
    """
    # local import: repro.core.runner imports repro.aot, so a module-
    # level import of repro.core.autotune here would cycle
    from repro.core.autotune import lookup_pass_verdict, record_pass_verdict

    personality = _resolve(personality)
    if budget < 1:
        raise CompileError(f"search budget must be >= 1, got {budget}")
    key = (personality.name, matrix.fingerprint(), int(d),
           _geometry(l1), _geometry(l2))
    if memo:
        cached = lookup_pass_verdict(key)
        if cached is not None:
            return cached
    registry = get_registry()
    with _span("aot.search", personality=personality.name, d=int(d),
               budget=budget):
        sampled, x = sample_operands(matrix, d)
        order: list[tuple[str, int]] = []
        seen: dict[PassConfig, int | None] = {}
        state = {"baseline_y": None, "rejected": 0}

        def evaluate(config: PassConfig):
            if config in seen:
                return seen[config]
            if len(seen) >= budget:
                return None
            registry.counter("aot_search_iterations_total",
                             personality=personality.name).inc()
            with _span("aot.search.candidate", config=config.ident()):
                try:
                    cycles, y = _evaluate(personality, config, sampled, x,
                                          l1, l2)
                except CompileError:
                    cycles = y = None
                if y is not None and state["baseline_y"] is None:
                    state["baseline_y"] = y
                elif y is not None and not np.array_equal(
                        y, state["baseline_y"], equal_nan=True):
                    # bit-identity conformance gate: accumulation-order
                    # (or worse) changes are rejected, not tolerated
                    cycles = None
                if cycles is None:
                    state["rejected"] += 1
                seen[config] = cycles
                order.append((config.ident(),
                              -1 if cycles is None else cycles))
            return cycles

        baseline = personality.pass_config(0)
        baseline_cycles = evaluate(baseline)
        if baseline_cycles is None:
            raise CompileError(
                f"fixed-function baseline failed to compile or run for "
                f"personality {personality.name!r}")
        current = personality.pass_config(2)
        evaluate(current)
        improved = True
        while improved and len(seen) < budget:
            improved = False
            for axis in range(2):
                best_cfg = current
                best = seen.get(current)
                for candidate in _axis_points(current, axis, personality):
                    score = evaluate(candidate)
                    if score is not None and (best is None or score < best):
                        best, best_cfg = score, candidate
                if best_cfg != current:
                    current, improved = best_cfg, True
        # the winner is the cheapest *valid* candidate; ties go to the
        # earliest-evaluated (the baseline, then the level-2 default)
        winner_cfg, winner_cycles = baseline, baseline_cycles
        for config, cycles in seen.items():
            if cycles is not None and cycles < winner_cycles:
                winner_cfg, winner_cycles = config, cycles
        choice = PassChoice(
            personality=personality.name, config=winner_cfg,
            cycles=winner_cycles, baseline_cycles=baseline_cycles,
            evaluated=len(seen), rejected=state["rejected"],
            scores=tuple(order))
    if memo:
        record_pass_verdict(key, choice)
    return choice


def _axis_points(current: PassConfig, axis: int,
                 personality: CompilerPersonality):
    """Candidate configs along one coordinate-descent axis."""
    if axis == 0:
        return tuple(replace(current, unroll=u)
                     for u in unroll_candidates(personality)
                     if u != current.unroll)
    points = []
    for level in (0, 1, 2):
        candidate = current.at_level(level)
        if candidate != current:
            points.append(candidate)
    return tuple(points)


def _geometry(cache_config) -> tuple | None:
    """A hashable identity for a cache-geometry override (or None)."""
    if cache_config is None:
        return None
    return (getattr(cache_config, "size_bytes", None),
            getattr(cache_config, "line_bytes", None),
            getattr(cache_config, "ways", None))
