"""Calling convention shared by the AOT kernels and the runtime.

AOT kernels are compiled before the data exists, so — unlike the JIT
kernels, which bake addresses and ``d`` into the instruction stream —
they receive everything through a parameter block in memory plus three
integer arguments in the SysV registers:

* ``rdi`` — address of the parameter block (layout below);
* ``rsi`` — first row to process (inclusive);
* ``rdx`` — last row to process (exclusive);
* ``rbp`` — per-thread spill-area base (only when the kernel spilled).

Parameter block layout (8-byte fields):

====== =======================================
offset contents
====== =======================================
0      ``A.row_ptr`` base address (int64 array)
8      ``A.col_indices`` base address (int32 array)
16     ``A.vals`` base address (float32 array)
24     ``X`` base address (row-major float32)
32     ``Y`` base address (row-major float32)
40     ``d`` — number of dense columns
48     ``m`` — number of sparse rows
56     address of the shared ``NEXT`` row counter
64     dispatch batch size
====== =======================================
"""

from __future__ import annotations

PARAM_ROW_PTR = 0
PARAM_COL_INDICES = 8
PARAM_VALS = 16
PARAM_X = 24
PARAM_Y = 32
PARAM_D = 40
PARAM_M = 48
PARAM_NEXT = 56
PARAM_BATCH = 64
PARAM_BLOCK_BYTES = 72

ARG_PARAM_BLOCK = "rdi"
ARG_ROW_START = "rsi"
ARG_ROW_END = "rdx"
SPILL_BASE_REG = "rbp"
