"""Lowering: allocated IR -> x86-64 subset instructions.

One IR instruction maps to one x86 instruction in almost all cases
(memory operands carry x86 addressing already); the exceptions are
two-address fixups for integer arithmetic, the horizontal-reduction
sequence for ``vreduce``, and spill reloads/stores through the reserved
scratch registers.

Spilled values live in a *spill area* addressed by ``rbp`` (reserved for
this purpose, like a frame pointer).  The runner maps one spill area per
thread and passes its base in ``rbp`` — see
:attr:`CompiledKernel.spill_bytes` in :mod:`repro.aot.compiler`.
"""

from __future__ import annotations

from repro.aot.ir import Function, Instr, IrType, VReg
from repro.aot.regalloc import Allocation, RegisterPools
from repro.errors import CompileError
from repro.isa.assembler import Assembler, Program
from repro.isa.operands import Imm, Mem
from repro.isa.registers import GPR64, Register, VectorRegister, gpr, xmm, ymm, zmm

__all__ = ["SPILL_SLOT_BYTES", "lower"]

SPILL_SLOT_BYTES = 64  # one slot fits any register class

_SPILL_BASE = "rbp"

_COND_TO_JCC = {
    "lt": "jl", "le": "jle", "gt": "jg", "ge": "jge",
    "eq": "je", "ne": "jne", "b": "jb", "ae": "jae",
}

_VEC_BY_LANES = {1: xmm, 4: xmm, 8: ymm, 16: zmm}


def _phys_vec(code: int, type_: IrType) -> VectorRegister:
    return _VEC_BY_LANES[type_.lanes](code)


class _Lowerer:
    def __init__(self, func: Function, allocation: Allocation,
                 pools: RegisterPools, name: str) -> None:
        self.func = func
        self.allocation = allocation
        self.pools = pools
        self.asm = Assembler(name)
        self._block_labels = {b.label: f"{b.label}" for b in func.blocks}

    # ------------------------------------------------------------------
    # Operand mapping with spill handling
    # ------------------------------------------------------------------
    def _spill_mem(self, vreg: VReg) -> Mem:
        slot = self.allocation.spill_slots[vreg]
        size = 8 if vreg.type.reg_class == "int" else 4 * max(1, vreg.type.lanes)
        return Mem(gpr(_SPILL_BASE), disp=slot * SPILL_SLOT_BYTES, size=size)

    def _read(self, vreg: VReg, scratch: dict[VReg, Register]) -> Register:
        """Physical register holding ``vreg``'s value (reloading if spilled)."""
        kind, where = self.allocation.location(vreg)
        if kind == "reg":
            if vreg.type.reg_class == "int":
                return gpr(where)
            return _phys_vec(where, vreg.type)
        if vreg in scratch:
            return scratch[vreg]
        phys = self._claim_scratch(vreg, scratch)
        if vreg.type.reg_class == "int":
            self.asm.mov(phys, self._spill_mem(vreg))
        elif vreg.type.is_int_vector:
            self.asm.vmovdqu32(phys, self._spill_mem(vreg))
        elif vreg.type.lanes == 1:
            self.asm.vmovss(phys, self._spill_mem(vreg))
        else:
            self.asm.vmovups(phys, self._spill_mem(vreg))
        return phys

    def _write_target(self, vreg: VReg, scratch: dict[VReg, Register]) -> Register:
        """Physical register an instruction should write ``vreg`` into."""
        kind, where = self.allocation.location(vreg)
        if kind == "reg":
            if vreg.type.reg_class == "int":
                return gpr(where)
            return _phys_vec(where, vreg.type)
        if vreg in scratch:
            return scratch[vreg]
        return self._claim_scratch(vreg, scratch)

    def _claim_scratch(self, vreg: VReg, scratch: dict[VReg, Register]) -> Register:
        used = {reg.name for reg in scratch.values()}
        if vreg.type.reg_class == "int":
            for name in self.pools.int_scratch:
                if name not in used:
                    phys = gpr(name)
                    scratch[vreg] = phys
                    return phys
        else:
            for code in self.pools.vec_scratch:
                phys = _phys_vec(code, vreg.type)
                if phys.name not in used and not any(
                    isinstance(r, VectorRegister) and r.code == code
                    for r in scratch.values()
                ):
                    scratch[vreg] = phys
                    return phys
        raise CompileError(
            f"out of scratch registers spilling {vreg!r} "
            f"(too many spilled operands in one instruction)"
        )

    def _flush_write(self, vreg: VReg, scratch: dict[VReg, Register]) -> None:
        """Store a spilled destination back to its slot."""
        if vreg not in self.allocation.spill_slots:
            return
        phys = scratch[vreg]
        if vreg.type.reg_class == "int":
            self.asm.mov(self._spill_mem(vreg), phys)
        elif vreg.type.is_int_vector:
            self.asm.vmovdqu32(self._spill_mem(vreg), phys)
        elif vreg.type.lanes == 1:
            self.asm.vmovss(self._spill_mem(vreg), phys)
        else:
            self.asm.vmovups(self._spill_mem(vreg), phys)

    def _mem(self, instr: Instr, scratch: dict[VReg, Register]) -> Mem:
        attrs = instr.attrs
        base = attrs.get("base")
        index = attrs.get("index")
        base_phys = self._read(base, scratch) if isinstance(base, VReg) else None
        index_phys = self._read(index, scratch) if isinstance(index, VReg) else None
        return Mem(base_phys, index_phys, attrs.get("scale", 1),
                   attrs.get("disp", 0), attrs.get("size", 8))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def lower(self) -> Program:
        blocks = self.func.blocks
        for position, block in enumerate(blocks):
            next_label = blocks[position + 1].label if position + 1 < len(blocks) else None
            self.asm.label(self._block_labels[block.label])
            for instr in block.instrs:
                self._lower_instr(instr, next_label)
        return self.asm.finish()

    def _lower_instr(self, instr: Instr, next_label: str | None) -> None:
        scratch: dict[VReg, Register] = {}
        op = instr.op
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise CompileError(f"no lowering for IR op {op!r}")
        handler(instr, scratch, next_label)
        for written in instr.vregs_written():
            self._flush_write(written, scratch)

    # ------------------------------------------------------------------
    # Integer ops
    # ------------------------------------------------------------------
    def _op_const(self, instr, scratch, _next):
        dst = self._write_target(instr.dst, scratch)
        value = instr.srcs[0]
        width = 64 if not -(1 << 31) <= value < (1 << 31) else 0
        self.asm.mov(dst, Imm(value, width) if width else Imm(value))

    def _op_mov(self, instr, scratch, _next):
        src = instr.srcs[0]
        dst = self._write_target(instr.dst, scratch)
        if isinstance(src, int):
            self.asm.mov(dst, Imm(src))
            return
        src_phys = self._read(src, scratch)
        if dst.name == src_phys.name:
            return
        if instr.dst.type.reg_class == "int":
            self.asm.mov(dst, src_phys)
        else:
            self.asm.vmovaps(dst, src_phys)

    def _two_address(self, mnemonic: str, instr, scratch) -> None:
        # Reads must precede the write-target claim: when the destination
        # aliases a spilled source (in-place loop updates), _read both
        # claims the scratch register and loads the slot's current value.
        a, b = instr.srcs
        a_phys = self._read(a, scratch) if isinstance(a, VReg) else None
        b_val = self._read(b, scratch) if isinstance(b, VReg) else Imm(b)
        dst = self._write_target(instr.dst, scratch)
        commutative = mnemonic in ("add", "and", "or", "xor", "imul")
        if a_phys is None:
            raise CompileError(f"{mnemonic}: first operand must be a vreg")
        if dst.name == a_phys.name:
            self.asm.emit(mnemonic, dst, b_val)
            return
        if isinstance(b_val, GPR64) and dst.name == b_val.name:
            if commutative:
                self.asm.emit(mnemonic, dst, a_phys)
                return
            # dst aliases b on a non-commutative op: go through an int
            # scratch register not already claimed by spill reloads
            used = {reg.name for reg in scratch.values()}
            helper_name = next(
                (name for name in self.pools.int_scratch if name not in used),
                None,
            )
            if helper_name is None:
                raise CompileError(f"no scratch left for {mnemonic} fixup")
            helper = gpr(helper_name)
            self.asm.mov(helper, a_phys)
            self.asm.emit(mnemonic, helper, b_val)
            self.asm.mov(dst, helper)
            return
        self.asm.mov(dst, a_phys)
        self.asm.emit(mnemonic, dst, b_val)

    def _op_add(self, instr, scratch, _next):
        self._two_address("add", instr, scratch)

    def _op_sub(self, instr, scratch, _next):
        self._two_address("sub", instr, scratch)

    def _op_and(self, instr, scratch, _next):
        self._two_address("and", instr, scratch)

    def _op_mul(self, instr, scratch, _next):
        a, b = instr.srcs
        if isinstance(b, int):
            a_phys = self._read(a, scratch)
            dst = self._write_target(instr.dst, scratch)
            self.asm.imul(dst, a_phys, Imm(b))
            return
        self._two_address("imul", instr, scratch)

    def _op_shl(self, instr, scratch, _next):
        a, b = instr.srcs
        if not isinstance(b, int):
            raise CompileError("shl by register is not supported")
        a_phys = self._read(a, scratch)
        dst = self._write_target(instr.dst, scratch)
        if dst.name != a_phys.name:
            self.asm.mov(dst, a_phys)
        self.asm.shl(dst, Imm(b, 8))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def _op_load(self, instr, scratch, _next):
        mem = self._mem(instr, scratch)
        self.asm.mov(self._write_target(instr.dst, scratch), mem)

    def _op_store(self, instr, scratch, _next):
        mem = self._mem(instr, scratch)
        value = instr.srcs[0]
        if isinstance(value, int):
            self.asm.mov(mem, Imm(value, 32))
        else:
            self.asm.mov(mem, self._read(value, scratch))

    def _op_loadf(self, instr, scratch, _next):
        self.asm.vmovss(self._write_target(instr.dst, scratch),
                        self._mem(instr, scratch))

    def _op_storef(self, instr, scratch, _next):
        self.asm.vmovss(self._mem(instr, scratch),
                        self._read(instr.srcs[0], scratch))

    def _op_loadv(self, instr, scratch, _next):
        self.asm.vmovups(self._write_target(instr.dst, scratch),
                         self._mem(instr, scratch))

    def _op_storev(self, instr, scratch, _next):
        self.asm.vmovups(self._mem(instr, scratch),
                         self._read(instr.srcs[0], scratch))

    def _op_vloadi(self, instr, scratch, _next):
        self.asm.vmovdqu32(self._write_target(instr.dst, scratch),
                           self._mem(instr, scratch))

    # ------------------------------------------------------------------
    # Float / vector arithmetic (AVX three-operand: no fixups needed)
    # ------------------------------------------------------------------
    def _three_op(self, mnemonic: str, instr, scratch) -> None:
        if instr.attrs.get("zero"):
            dst = self._write_target(instr.dst, scratch)
            self.asm.vxorps(dst, dst, dst)
            return
        a, b = instr.srcs
        dst = self._write_target(instr.dst, scratch)
        self.asm.emit(mnemonic, dst, self._read(a, scratch),
                      self._read(b, scratch))

    def _op_fadd(self, instr, scratch, _next):
        self._three_op("vaddss", instr, scratch)

    def _op_fsub(self, instr, scratch, _next):
        self._three_op("vsubss", instr, scratch)

    def _op_fmul(self, instr, scratch, _next):
        self._three_op("vmulss", instr, scratch)

    def _op_fmad(self, instr, scratch, _next):
        a, b = instr.srcs
        acc = self._read(instr.dst, scratch)
        self.asm.vfmadd231ss(acc, self._read(a, scratch),
                             self._read(b, scratch))

    def _op_vadd(self, instr, scratch, _next):
        self._three_op("vaddps", instr, scratch)

    def _op_vmul(self, instr, scratch, _next):
        self._three_op("vmulps", instr, scratch)

    def _op_vaddi(self, instr, scratch, _next):
        self._three_op("vpaddd", instr, scratch)

    def _op_vmuli(self, instr, scratch, _next):
        self._three_op("vpmulld", instr, scratch)

    def _op_vfma(self, instr, scratch, _next):
        a, b = instr.srcs
        acc = self._read(instr.dst, scratch)
        self.asm.vfmadd231ps(acc, self._read(a, scratch),
                             self._read(b, scratch))

    def _op_vbroadcast_mem(self, instr, scratch, _next):
        self.asm.vbroadcastss(self._write_target(instr.dst, scratch),
                              self._mem(instr, scratch))

    def _op_vbroadcasti_mem(self, instr, scratch, _next):
        self.asm.vpbroadcastd(self._write_target(instr.dst, scratch),
                              self._mem(instr, scratch))

    def _op_vgather(self, instr, scratch, _next):
        base = self._read(instr.attrs["base"], scratch)
        index = self._read(instr.srcs[0], scratch)
        dst = self._write_target(instr.dst, scratch)
        mem = Mem(base, index, instr.attrs.get("scale", 4), 0, size=4)
        self.asm.vgatherdps(dst, mem)

    def _op_vreduce(self, instr, scratch, _next):
        src_reg = instr.srcs[0]
        src = self._read(src_reg, scratch)
        dst = self._write_target(instr.dst, scratch)
        s0, s1 = self.pools.vec_scratch[0], self.pools.vec_scratch[1]
        lanes = src_reg.type.lanes
        asm = self.asm
        if lanes == 16:
            asm.vextractf64x4(ymm(s0), zmm(src.code), Imm(1, 8))
            asm.vaddps(ymm(s0), ymm(s0), ymm(src.code))
            asm.vextractf128(xmm(s1), ymm(s0), Imm(1, 8))
            asm.vaddps(xmm(s0), xmm(s0), xmm(s1))
        elif lanes == 8:
            working = src.code
            if working >= 16:
                asm.vmovaps(ymm(s0), ymm(working))
                working = s0
            asm.vextractf128(xmm(s1), ymm(working), Imm(1, 8))
            asm.vaddps(xmm(s0), xmm(working), xmm(s1))
        elif lanes == 4:
            asm.vmovaps(xmm(s0), xmm(src.code))
        else:
            raise CompileError(f"cannot reduce {lanes}-lane vector")
        asm.vhaddps(xmm(s0), xmm(s0), xmm(s0))
        asm.vhaddps(xmm(s0), xmm(s0), xmm(s0))
        asm.vmovaps(xmm(dst.code), xmm(s0))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _op_br(self, instr, scratch, next_label):
        target = instr.attrs["label"]
        if target != next_label:
            self.asm.jmp(self._block_labels[target])

    def _op_cbr(self, instr, scratch, next_label):
        a, b = instr.srcs
        a_phys = self._read(a, scratch)
        b_val = self._read(b, scratch) if isinstance(b, VReg) else Imm(b)
        self.asm.cmp(a_phys, b_val)
        then_label = instr.attrs["then_label"]
        else_label = instr.attrs["else_label"]
        self.asm.emit(_COND_TO_JCC[instr.attrs["cond"]],
                      self._block_labels[then_label])
        if else_label != next_label:
            self.asm.jmp(self._block_labels[else_label])

    def _op_ret(self, instr, scratch, _next):
        self.asm.ret()


def lower(func: Function, allocation: Allocation, pools: RegisterPools,
          name: str = "") -> Program:
    """Lower an allocated IR function to a :class:`Program`."""
    return _Lowerer(func, allocation, pools, name or func.name).lower()
