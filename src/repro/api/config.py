"""`ExecutionConfig`: one validated home for every execution knob.

Before :mod:`repro.api`, the ``split / threads / dynamic / batch / isa /
timing / warmup / l1 / l2 / cache`` contract was re-declared — with
subtly different defaults and checks — by ``run_jit``-style runner
functions, :class:`repro.core.engine.JitSpMM`, and
:class:`repro.serve.SpmmService`.  This dataclass is the single place
the contract lives: construct one (any entry point's keyword arguments
map 1:1 onto its fields), and validation, normalization (ISA parsing)
and the dynamic-dispatch defaulting rule happen once, identically, for
every caller.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.split import SPLITS
from repro.errors import ShapeError
from repro.isa.isainfo import IsaLevel
from repro.machine.cache import CacheConfig

__all__ = ["DEFAULT_MAX_STEPS", "ExecutionConfig", "SPLITS", "TIER_MODES"]

#: default per-thread dynamic instruction budget (mirrors
#: :class:`repro.machine.CpuConfig`'s historical constant)
DEFAULT_MAX_STEPS = 500_000_000

#: tiered-execution modes for the serving subsystem: ``"off"`` serves
#: every request from the fully specialized plan (codegen inline on the
#: first request), ``"lazy"`` serves new handles from the address-free
#: template and promotes once traffic crosses ``promote_after``,
#: ``"eager"`` starts promotion on the first request
TIER_MODES = ("off", "lazy", "eager")


@dataclass(frozen=True)
class ExecutionConfig:
    """Validated execution knobs shared by every system in the registry.

    Attributes:
        split: Workload division — ``"row"`` / ``"nnz"`` / ``"merge"``,
            or ``"auto"`` (JIT only: the autotuner decides per matrix at
            bind time).
        threads: Simulated CPU threads (positive).
        dynamic: Listing-1 dynamic row dispatching.  ``None`` (default)
            resolves to True exactly for row-split, the paper's pairing;
            True with any other split is rejected, and ``"auto"``
            requires None (the tuner decides).
        batch: Dynamic-dispatch batch size; ``None`` sizes it from the
            row count (:func:`repro.core.runner.auto_batch`).
        isa: ISA level for JIT code generation (AOT personalities and
            the MKL kernel fix their own ISA).  Parsed at construction.
        timing: Model caches/pipeline on the simulated machine.  Legacy
            spelling of the backend axis: with ``backend=None`` it
            selects ``"sim"`` (True) or ``"counts"`` (False).
        backend: Execution backend by registry name — ``"native"``,
            ``"counts"``, ``"sim"``, ``"sim-fused"``, or anything
            registered via :func:`repro.exec.register_backend`.
            Validated (and alias-normalized) at construction; ``None``
            defers to ``timing``.  When set, it overrides ``timing``.
        max_steps: Per-thread dynamic instruction budget for the
            simulated backends; the interpreter raises
            :class:`repro.errors.ExecutionLimitExceeded` (naming the
            limit and the owning thread) when a thread exceeds it.
        warmup: Measure the second of two runs (warm caches/predictors,
            the paper's methodology); only meaningful with ``timing``.
        l1 / l2: Cache-geometry overrides for the simulated machine.
        cache: Optional :class:`repro.serve.KernelCache` (or the duck-
            compatible :class:`repro.serve.ShardedKernelCache`) shared
            across artifacts; ``None`` means no cross-artifact kernel
            reuse.
        max_batch: Request-coalescing cap for the serving fast path:
            up to this many concurrent same-kernel ``multiply`` requests
            execute as one stacked-operand SpMM.  1 (default) disables
            coalescing — every request executes alone, today's
            behavior.
        flush_us: Microseconds a coalescing batch leader lingers for
            followers before executing, when the batch is not yet full.
            0 (default) executes immediately — batches then form only
            from requests that arrive while an earlier batch is in
            flight (the closed-loop steady state).
        workers: Worker *processes* behind a serving gateway
            (:class:`repro.serve.gateway.Gateway`), each running its own
            :class:`~repro.serve.SpmmService`.  Irrelevant to in-process
            entry points; 1 (default) means a single worker.
        max_inflight: Gateway-wide cap on admitted-but-unanswered
            requests; arrivals beyond it are rejected with
            :class:`repro.errors.GatewayOverloaded` rather than queued
            unboundedly.
        tenant_quota: Per-tenant in-flight cap at the gateway (``None``
            disables per-tenant accounting; the gateway-wide cap always
            applies).
        deadline_ms: Default per-request deadline budget in
            milliseconds for gateway clients minted via
            :meth:`repro.serve.gateway.Gateway.connect`.  Rides the
            wire header, is checked at gateway admission, decremented
            across queue wait, and enforced inside the worker around
            bind/codegen/multiply; a blown budget surfaces as a typed
            :class:`repro.errors.DeadlineExceeded`.  ``None`` (default)
            means no deadline.
        hang_threshold_ms: Age at which the gateway watchdog declares a
            worker's oldest in-flight request hung: the worker is
            killed and respawned, its in-flight requests fail fast with
            :class:`repro.errors.WorkerHung`.  The 60 s default sits
            below the client's socket timeout but above any legitimate
            simulated profile; latency-sensitive deployments tune it
            down to a small multiple of their p99.
        max_retries: Retry attempts a gateway client makes for
            *idempotent* ops (multiply/profile/stats/ping — never
            register) after a connection drop or worker death, with
            capped exponential backoff + jitter, budgeted by the
            request deadline.  0 disables retries.
        breaker_threshold: Consecutive hang/crash failures after which
            a worker slot's circuit breaker opens (requests stop
            routing to it until a half-open probe succeeds).
        opt_level: AOT optimization level (systems without an IR-level
            pass pipeline ignore it).  0 (default) is the historical
            fixed-function lowering; 1 enables the cleanup passes
            (constant folding, strength reduction, DCE); 2 adds
            within-block instruction scheduling; 3 runs the
            feedback-directed search (:mod:`repro.aot.search`) per
            bound matrix, scoring candidate pass configs by simulated
            cycles on a downsampled operand sample.
        search_budget: Maximum candidate compilations one ``opt_level=3``
            search may evaluate (>= 1; 1 degenerates to the
            fixed-function baseline).
        tier_mode: Tiered-execution policy for the serving subsystem
            (:class:`repro.serve.SpmmService`).  ``"off"`` (default)
            keeps the historical behavior — the first request for each
            ``(handle, d)`` pays autotune + specialization inline.
            ``"lazy"`` serves cold handles immediately from the
            system's address-free template tier (zero per-matrix
            codegen) and promotes a ``(handle, d)`` to its specialized
            kernel in the background once it has served
            ``promote_after`` requests.  ``"eager"`` starts promotion
            on the first request.  Systems without a faster template
            tier (MKL, AOT below ``opt_level=3``) ignore tiering —
            they already serve every request from one shared template.
        promote_after: Request count at which a ``(handle, d)`` serving
            on the template tier is scheduled for background promotion
            (``tier_mode="lazy"``; >= 1).
        promotion_workers: Background promotion worker threads per
            service (>= 1).  Promotions are bounded by this pool, so a
            registration burst cannot oversubscribe the host with
            concurrent autotune/codegen runs.
    """

    split: str = "row"
    threads: int = 1
    dynamic: bool | None = None
    batch: int | None = None
    isa: IsaLevel | str = IsaLevel.AVX512
    timing: bool = True
    backend: str | None = None
    max_steps: int = DEFAULT_MAX_STEPS
    warmup: bool = False
    l1: CacheConfig | None = None
    l2: CacheConfig | None = None
    cache: object | None = None
    max_batch: int = 1
    flush_us: float = 0.0
    workers: int = 1
    max_inflight: int = 64
    tenant_quota: int | None = None
    deadline_ms: float | None = None
    hang_threshold_ms: float = 60_000.0
    max_retries: int = 2
    breaker_threshold: int = 3
    opt_level: int = 0
    search_budget: int = 16
    tier_mode: str = "off"
    promote_after: int = 32
    promotion_workers: int = 1

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ShapeError(
                f"thread count must be positive, got {self.threads}")
        if self.max_steps <= 0:
            raise ShapeError(
                f"max_steps must be positive, got {self.max_steps}")
        if self.backend is not None:
            # resolve through the live registry: unknown names fail here
            # with the full available-backend list, and aliases
            # normalize to the canonical registry key
            from repro.exec import canonical_name

            object.__setattr__(self, "backend",
                               canonical_name(self.backend))
        if self.split not in SPLITS:
            raise ShapeError(
                f"unknown split {self.split!r}; expected one of {SPLITS}")
        if self.split == "auto" and self.dynamic is not None:
            raise ShapeError("split='auto' chooses dispatch itself; "
                             "leave dynamic=None")
        if self.dynamic and self.split != "row":
            raise ShapeError("dynamic dispatch applies to row-split only")
        if self.batch is not None and self.batch <= 0:
            raise ShapeError(
                f"batch size must be positive, got {self.batch}")
        if self.max_batch < 1:
            raise ShapeError(
                f"max_batch must be at least 1, got {self.max_batch}")
        if self.flush_us < 0:
            raise ShapeError(
                f"flush_us must be non-negative, got {self.flush_us}")
        if self.workers < 1:
            raise ShapeError(
                f"workers must be at least 1, got {self.workers}")
        if self.max_inflight < 1:
            raise ShapeError(
                f"max_inflight must be at least 1, got {self.max_inflight}")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ShapeError(
                f"tenant_quota must be positive or None, got "
                f"{self.tenant_quota}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ShapeError(
                f"deadline_ms must be positive or None, got "
                f"{self.deadline_ms}")
        if self.hang_threshold_ms <= 0:
            raise ShapeError(
                f"hang_threshold_ms must be positive, got "
                f"{self.hang_threshold_ms}")
        if self.max_retries < 0:
            raise ShapeError(
                f"max_retries must be non-negative, got {self.max_retries}")
        if self.breaker_threshold < 1:
            raise ShapeError(
                f"breaker_threshold must be at least 1, got "
                f"{self.breaker_threshold}")
        if not 0 <= self.opt_level <= 3:
            raise ShapeError(
                f"opt_level must be in 0..3, got {self.opt_level}")
        if self.search_budget < 1:
            raise ShapeError(
                f"search_budget must be at least 1, got "
                f"{self.search_budget}")
        if self.tier_mode not in TIER_MODES:
            raise ShapeError(
                f"unknown tier_mode {self.tier_mode!r}; expected one of "
                f"{TIER_MODES}")
        if self.promote_after < 1:
            raise ShapeError(
                f"promote_after must be at least 1, got "
                f"{self.promote_after}")
        if self.promotion_workers < 1:
            raise ShapeError(
                f"promotion_workers must be at least 1, got "
                f"{self.promotion_workers}")
        object.__setattr__(self, "isa", IsaLevel.parse(self.isa))

    @property
    def effective_backend(self) -> str:
        """The resolved execution-backend name for this config.

        ``backend`` as given when explicit, else derived from the
        legacy ``timing`` flag: ``"sim"`` (cycle-accurate) when True,
        ``"counts"`` when False.
        """
        if self.backend is not None:
            return self.backend
        return "sim" if self.timing else "counts"

    @property
    def effective_dynamic(self) -> bool:
        """The resolved dispatch mode for a non-``"auto"`` split.

        ``dynamic`` as given when explicit, else the paper's default:
        dynamic exactly for row-split.  (For ``"auto"`` the tuner's
        verdict applies instead; this property then reports False.)
        """
        if self.dynamic is not None:
            return self.dynamic
        return self.split == "row"

    def with_overrides(self, **changes) -> "ExecutionConfig":
        """A copy with ``changes`` applied — re-validated on construction."""
        return replace(self, **changes)
