"""Built-in :class:`~repro.api.System` implementations.

Three systems mirror the paper's evaluation matrix:

* :class:`JitSystem` (``"jit"``) — JITSPMM: specialized code generated
  per problem (addresses baked, column loop folded away).  Kernel
  identity exists at bind time; ``split="auto"`` autotunes per matrix.
* :class:`AotSystem` (``"aot:<personality>"``) — the gcc / clang / icc
  / icc-avx512 compiler personalities.  Address-free param-block
  templates: compiled once per personality, reused for any operands.
* :class:`MklSystem` (``"mkl"``) — the hand-scheduled MKL-like kernel,
  likewise an address-free template (keyed by its SIMD lane count).

All three produce :class:`~repro.core.runner.RunResult` objects that
are bit-identical to what the pre-pipeline ``run_jit`` / ``run_aot`` /
``run_mkl`` entry points produced: operand segments are mapped in the
same order (so baked addresses — and therefore cache identities and
modeled memory behaviour — are unchanged), and the machine is driven
with the same warmup/dispatch contract.
"""

from __future__ import annotations

import time

import numpy as np

from repro.aot import abi
from repro.aot.compiler import AotCompiler
from repro.aot.mkl import MklKernel
from repro.core.autotune import choose_split
from repro.core.codegen import DEFAULT_BATCH, JitCodegen
from repro.core.engine import check_operands
from repro.core.runner import (
    MappedOperands,
    RunResult,
    jit_thread_specs,
    map_jit_operands,
    resolve_jit_dispatch,
)
from repro.core.split import partition
from repro.machine import ThreadSpec
from repro.obs.trace import span as _span
from repro.serve.cache import aot_key, jit_key, mkl_key

from repro.api.pipeline import Artifact, BoundPlan, System
from repro.api.registry import register

__all__ = ["AotSystem", "JitSystem", "MklSystem"]


# ----------------------------------------------------------------------
# JIT: specialized kernels, bind-time identity
# ----------------------------------------------------------------------
class JitPlan(BoundPlan):
    """A JIT problem binding: spec + partitions, operands mapped lazily.

    The kernel's cache identity bakes the mapped base addresses, so
    resolving :attr:`key` materializes the address space; a plan served
    purely by the ``"native"`` backend never does either.
    """

    def __init__(self, artifact: Artifact, matrix, x, *, split: str,
                 dynamic: bool, batch, partitions, ranges, choice,
                 name_prefix: str | None) -> None:
        super().__init__(
            artifact, matrix, key=None, split=split,
            partitions=partitions, ranges=ranges, x_host=x,
            dynamic=dynamic, choice=choice, name_prefix=name_prefix,
        )
        self._batch = batch
        self.spec = None

    def _materialize(self):
        config = self.config
        operands, spec, _, _ = map_jit_operands(
            self.matrix, self.x_host, split=self.split,
            threads=config.threads, dynamic=self.dynamic,
            batch=self._batch, isa=config.isa, y=self.y_host,
            partitions=self.partitions,
        )
        self.spec = spec
        return operands

    @property
    def key(self):
        """Kernel identity: needs the baked addresses, so the first
        resolution maps the operands."""
        self.operands
        return jit_key(self.spec, self.dynamic)

    def _thread_specs(self):
        return jit_thread_specs(
            self.kernel.program, self.threads, self.partitions,
            self.dynamic, name_prefix=self.name_prefix or "jit")

    def _reset_dispatch(self) -> None:
        if self.spec is not None and self.spec.next_addr:
            self._operands.memory.write_int(self.spec.next_addr, 8, 0)

    def _between_runs(self):
        return self._reset_dispatch

    def _make_result(self, merged, per_thread) -> RunResult:
        return RunResult(
            y=self.y_host, counters=merged, per_thread=per_thread,
            program=self.kernel.program,
            codegen_seconds=self.codegen_seconds,
            code_bytes=self.kernel.code_bytes, system="jit",
            split=self.split, threads=self.threads,
            partitions=self.partitions, cache_hit=self.cache_hit,
        )


class JitSystem(System):
    """JITSPMM: generate specialized code per problem, then execute."""

    name = "jit"
    address_free = False
    supports_autotune = True

    def bind(self, artifact: Artifact, matrix, x,
             name_prefix: str | None = None) -> JitPlan:
        config = artifact.config
        # bind a private copy: refresh() overwrites the buffer (and,
        # once mapped, the segment aliasing it) in place and must never
        # clobber the caller's array
        x = check_operands(matrix, x).copy()
        d = int(x.shape[1])
        choice = None
        split, dynamic, batch = config.split, config.dynamic, config.batch
        if split == "auto":
            choice = choose_split(matrix, d, config.threads, config.isa)
            split, dynamic = choice.split, choice.dynamic
            batch = batch or choice.batch
        dynamic, partitions = resolve_jit_dispatch(
            matrix, split, config.threads, dynamic)
        ranges = (partition(matrix, config.threads, "row") if dynamic
                  else partitions)
        return JitPlan(
            artifact, matrix, x, split=split, dynamic=dynamic, batch=batch,
            partitions=partitions, ranges=ranges, choice=choice,
            name_prefix=name_prefix,
        )

    def build_kernel(self, plan: JitPlan) -> tuple[object, float]:
        with _span("codegen.jit", dynamic=plan.dynamic,
                   split=str(plan.split)):
            plan.operands  # specialization bakes the mapped addresses
            output = JitCodegen(plan.spec).generate(dynamic=plan.dynamic)
        return output, output.codegen_seconds

    def kernel_nbytes(self, kernel) -> int:
        return kernel.code_bytes

    def tier_template(self, config):
        # the MKL-like template binds with partitioning only — no
        # autotune, no codegen — and is bit-identical to the JIT (both
        # accumulate each output element in ascending non-zero order).
        # "auto" is a JIT-only contract, so the template pins the
        # paper's default row split; the tuner still picks the
        # *promoted* plan's split.
        overrides = {"split": "row"} if config.split == "auto" else {}
        return "mkl", overrides


# ----------------------------------------------------------------------
# Param-block templates: AOT personalities and the MKL-like kernel
# ----------------------------------------------------------------------
class ParamBlockPlan(BoundPlan):
    """A problem bound to an address-free param-block kernel.

    Operand layout reproduces the legacy runner exactly: the five SpMM
    arrays, then the parameter block, then the NEXT word, then one
    spill area per thread.  The whole address space is materialized
    lazily (native-backend plans never map it); spill areas depend on
    the compiled kernel (its register allocation), so they are mapped
    when the kernel attaches — deterministically in the same position,
    since nothing else maps segments in between.
    """

    def __init__(self, artifact: Artifact, matrix, x, *, key,
                 name_prefix: str | None, pass_config=None) -> None:
        config = artifact.config
        # private copy, same reason as the JIT bind: refresh() writes
        # into the mapped segment
        x = check_operands(matrix, x).copy()
        partitions = partition(matrix, config.threads, config.split)
        super().__init__(
            artifact, matrix, key=key, split=config.split,
            partitions=partitions, ranges=partitions, x_host=x,
            name_prefix=name_prefix,
        )
        #: searched per-matrix PassConfig (opt_level=3 binds only);
        #: None means the artifact's template config applies
        self.pass_config = pass_config
        self.pb_addr = None
        self.next_addr = None
        self._init_gprs: list[dict] | None = None

    def _materialize(self):
        operands = MappedOperands.create(self.matrix, self.x_host,
                                         y=self.y_host)
        memory = operands.memory
        pb = np.zeros(abi.PARAM_BLOCK_BYTES // 8, dtype=np.int64)
        self.pb_addr = memory.map_array(pb, "param_block")
        self.next_addr, _ = memory.map_zeros(8, "NEXT")
        pb[abi.PARAM_ROW_PTR // 8] = operands.row_ptr_addr
        pb[abi.PARAM_COL_INDICES // 8] = operands.col_addr
        pb[abi.PARAM_VALS // 8] = operands.vals_addr
        pb[abi.PARAM_X // 8] = operands.x_addr
        pb[abi.PARAM_Y // 8] = operands.y_addr
        pb[abi.PARAM_D // 8] = operands.d
        pb[abi.PARAM_M // 8] = operands.m
        pb[abi.PARAM_NEXT // 8] = self.next_addr
        pb[abi.PARAM_BATCH // 8] = DEFAULT_BATCH
        return operands

    # -- kernel adapters (overridden by the MKL plan) -------------------
    def _program(self):
        return self.kernel.program

    def _spill_bytes(self) -> int:
        return self.kernel.spill_bytes

    def _label(self) -> str:
        return f"aot-{self.kernel.personality.name}"

    # ------------------------------------------------------------------
    def _on_attach(self, kernel) -> None:
        if self._init_gprs is not None:
            return
        # the attach lock is already held; materialize directly rather
        # than through the (re-entrant-unsafe) operands property
        if self._operands is None:
            self._operands = self._materialize()
        memory = self._operands.memory
        spill_bytes = self._spill_bytes()
        init_gprs = []
        for t, (r0, r1) in enumerate(self.partitions):
            init = {abi.ARG_PARAM_BLOCK: self.pb_addr,
                    abi.ARG_ROW_START: r0, abi.ARG_ROW_END: r1}
            if spill_bytes:
                spill_addr, _ = memory.map_zeros(spill_bytes, f"spill{t}")
                init[abi.SPILL_BASE_REG] = spill_addr
            init_gprs.append(init)
        self._init_gprs = init_gprs

    def _thread_specs(self):
        prefix = self.name_prefix or self._label()
        program = self._program()
        return [ThreadSpec(program, init_gpr=init, name=f"{prefix}{t}")
                for t, init in enumerate(self._init_gprs)]

    def _reset_dispatch(self) -> None:
        if self._operands is not None:
            self._operands.memory.write_int(self.next_addr, 8, 0)

    def _make_result(self, merged, per_thread) -> RunResult:
        # codegen_seconds stays 0: AOT compilation happens "before
        # shipping" and is never part of the measured execution (the
        # serving subsystem accounts amortization separately)
        return RunResult(
            y=self.y_host, counters=merged, per_thread=per_thread,
            program=self._program(), system=self._label(),
            split=self.split, threads=self.threads,
            partitions=self.partitions, cache_hit=self.cache_hit,
        )


class AotSystem(System):
    """An AOT compiler personality serving the param-block SpMM.

    ``config.opt_level`` selects the IR pass pipeline: levels 0-2 keep
    the address-free template contract (one compile per personality and
    level, any operands), while level 3 runs the feedback-directed
    search per bound matrix — the kernel identity then exists only at
    bind time, exactly like the JIT's.
    """

    address_free = True

    def __init__(self, personality: str = "icc-avx512") -> None:
        # resolve (and validate) eagerly so unknown personalities fail
        # at registry time, matching the legacy AotCompiler error
        self.personality = AotCompiler(personality).personality
        self.name = f"aot:{self.personality.name}"

    def prepare_key(self, config):
        if config.opt_level >= 3:
            return None  # searched per matrix: bind-time identity
        passes = self.personality.pass_config(config.opt_level)
        return aot_key(self.personality.name,
                       passes=passes.ident() if config.opt_level else "")

    def bind(self, artifact: Artifact, matrix, x,
             name_prefix: str | None = None) -> ParamBlockPlan:
        config = artifact.config
        key = self.prepare_key(config)
        pass_config = None
        if key is None:
            from repro.aot.search import search_passes

            choice = search_passes(
                self.personality, matrix, int(x.shape[1]),
                budget=config.search_budget, l1=config.l1, l2=config.l2)
            pass_config = choice.config
            key = aot_key(self.personality.name,
                          passes=pass_config.ident())
        return ParamBlockPlan(artifact, matrix, x, key=key,
                              name_prefix=name_prefix,
                              pass_config=pass_config)

    def build_template(self, config) -> tuple[object, float]:
        return self._compile(self.personality.pass_config(config.opt_level))

    def build_kernel(self, plan) -> tuple[object, float]:
        passes = getattr(plan, "pass_config", None)
        if passes is None:
            opt_level = 0 if plan is None else plan.config.opt_level
            passes = self.personality.pass_config(min(opt_level, 2))
        return self._compile(passes)

    def tier_template(self, config):
        if config.opt_level < 3:
            return None  # already one shared template: nothing faster
        # opt_level=3 searches a pass config per matrix (bind-time
        # identity, expensive); the *same personality's* static
        # level-2 template binds instantly and — every pass being
        # bit-preserving — computes identical bits, including for
        # icc-avx512's reordered accumulation
        return self.name, {"opt_level": 2}

    def _compile(self, passes) -> tuple[object, float]:
        with _span("codegen.aot", personality=self.personality,
                   passes=passes.ident()):
            started = time.perf_counter()
            compiled = AotCompiler(self.personality).compile_spmm(
                passes=passes)
            return compiled, time.perf_counter() - started

    def kernel_nbytes(self, kernel) -> int:
        return len(kernel.program.encode())


class MklPlan(ParamBlockPlan):
    """MKL template binding: the cached kernel is a bare ``Program``."""

    def _program(self):
        return self.kernel

    def _spill_bytes(self) -> int:
        return 0

    def _label(self) -> str:
        return "mkl"


class MklSystem(System):
    """The hand-scheduled MKL-like AOT kernel (``repro.aot.mkl``)."""

    address_free = True

    def __init__(self, lanes: int = 16) -> None:
        self.lanes = lanes
        self.name = "mkl" if lanes == 16 else f"mkl:{lanes}"

    def prepare_key(self, config):
        return mkl_key(self.lanes)

    def bind(self, artifact: Artifact, matrix, x,
             name_prefix: str | None = None) -> MklPlan:
        return MklPlan(artifact, matrix, x,
                       key=self.prepare_key(artifact.config),
                       name_prefix=name_prefix)

    def build_kernel(self, plan) -> tuple[object, float]:
        with _span("codegen.mkl", lanes=self.lanes):
            started = time.perf_counter()
            program = MklKernel(lanes=self.lanes).build()
            return program, time.perf_counter() - started

    def kernel_nbytes(self, kernel) -> int:
        return len(kernel.encode())


# ----------------------------------------------------------------------
# Built-in registrations (imported once via the registry)
# ----------------------------------------------------------------------
register("jit", JitSystem())
register("mkl", MklSystem())
for _personality in ("gcc", "clang", "icc", "icc-avx512"):
    register(f"aot:{_personality}", AotSystem(_personality),
             aliases=(_personality,))
del _personality
