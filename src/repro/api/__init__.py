"""`repro.api`: unified system registry + plan → bind → execute pipeline.

One measurement harness over many systems is the paper's whole
evaluation; this package is the abstraction that makes it one *API*:

* :class:`ExecutionConfig` — every execution knob, validated once;
* :class:`System` / :func:`register` / :func:`get_system` — the open
  registry of runnable SpMM implementations (``"jit"``,
  ``"aot:<personality>"`` + bare-personality aliases, ``"mkl"``);
* the three-stage pipeline — ``system.prepare(config)`` (codegen /
  compile, the cacheable unit) → ``artifact.bind(matrix, x)`` (operand
  mapping + partitioning, reusable across same-shaped requests) →
  ``plan.execute()`` (simulated run with counters);
* :func:`run` — the one-call convenience over all of the above.

Example::

    import repro

    result = repro.run(A, X, system="aot:icc-avx512", threads=8)

    # explicit staging, amortizing prepare across problems:
    system = repro.get_system("jit")
    artifact = system.prepare(repro.ExecutionConfig(threads=8,
                                                    cache=cache))
    plan = artifact.bind(A, X)        # codegen happens here (cached)
    r1 = plan.execute()
    plan.refresh(X2)                  # same-shaped follow-up request
    r2 = plan.execute()

The legacy entry points (``run_jit`` / ``run_aot`` / ``run_mkl``,
``JitSpMM.profile``, ``SpmmService``) remain as thin shims over this
pipeline.
"""

from __future__ import annotations

from repro.api.config import ExecutionConfig
from repro.api.pipeline import Artifact, BoundPlan, System
from repro.api.registry import (
    available_systems,
    get_system,
    register,
    unregister,
)
from repro.core.runner import RunResult

__all__ = [
    "Artifact",
    "BoundPlan",
    "ExecutionConfig",
    "RunResult",
    "System",
    "available_systems",
    "get_system",
    "register",
    "run",
    "unregister",
]


def run(matrix, x, system: str = "jit", *,
        config: ExecutionConfig | None = None, **overrides) -> RunResult:
    """One-call pipeline: resolve, prepare, bind, execute.

    ``system`` is any registered name (``repro.available_systems()``).
    Pass a prebuilt ``config`` or :class:`ExecutionConfig` fields as
    keywords — ``repro.run(A, X, system="jit", split="merge",
    threads=8)``.
    """
    if config is None:
        config = ExecutionConfig(**overrides)
    elif overrides:
        config = config.with_overrides(**overrides)
    return get_system(system).prepare(config).bind(matrix, x).execute()
