"""The system registry: names → :class:`repro.api.System` instances.

Built-in registrations (performed when :mod:`repro.api.systems` first
loads): ``"jit"``, ``"mkl"``, and one ``"aot:<personality>"`` per
compiler personality, each aliased by its bare personality name
(``"gcc"``, ``"clang"``, ``"icc"``, ``"icc-avx512"``) so the bench
harness's historical spellings keep working.  Unregistered
``"aot:<p>"`` / ``"mkl:<lanes>"`` names resolve on demand, so a
personality added to :data:`repro.aot.compiler.PERSONALITIES` or an
AVX2 MKL variant is reachable without touching this module.

The registry is open: third-party :class:`~repro.api.System`
implementations plug in with :func:`register` and immediately work with
``repro.run``, the bench harness, and :class:`repro.serve.SpmmService`
(see ``examples/custom_system.py``).
"""

from __future__ import annotations

import threading

from repro.errors import RegistryError

__all__ = ["available_systems", "get_system", "register", "unregister"]

_SYSTEMS: dict = {}
_ALIASES: dict[str, str] = {}
_LOCK = threading.Lock()
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load the built-in system implementations exactly once.

    The implementations live in :mod:`repro.api.systems`, which imports
    the engine/runner/serve layers — deferring that import keeps the
    registry itself dependency-free and breaks the import cycle (those
    layers' compatibility shims call back into the registry).
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.api.systems  # noqa: F401  (registers on import)
        _BUILTINS_LOADED = True


def register(name: str, system, *, aliases: tuple[str, ...] = ()) -> None:
    """Register ``system`` under ``name`` (and optional aliases).

    Re-registering a name replaces the previous entry (last wins), so
    reloading a module that registers at import stays idempotent.
    """
    if not name:
        raise RegistryError("system name must be non-empty")
    with _LOCK:
        _SYSTEMS[name] = system
        for alias in aliases:
            _ALIASES[alias] = name


def unregister(name: str) -> bool:
    """Drop a registration (and any aliases pointing at it)."""
    with _LOCK:
        found = _SYSTEMS.pop(name, None) is not None
        for alias in [a for a, target in _ALIASES.items() if target == name]:
            del _ALIASES[alias]
        return found


def get_system(name: str):
    """Resolve a system name (or alias) to its registered instance."""
    _ensure_builtins()
    with _LOCK:
        canonical = _ALIASES.get(name, name)
        system = _SYSTEMS.get(canonical)
    if system is not None:
        return system
    lazy = _resolve_lazy(name)
    if lazy is not None:
        register(name, lazy)
        return lazy
    raise RegistryError(
        f"unknown system {name!r}; available: "
        f"{', '.join(available_systems())}")


def _resolve_lazy(name: str):
    """Construct prefix-named systems (``aot:<p>``, ``mkl:<lanes>``)."""
    from repro.api.systems import AotSystem, MklSystem

    if name.startswith("aot:"):
        # unknown personalities raise CompileError inside AotSystem,
        # matching the legacy run_aot() behaviour
        return AotSystem(name[len("aot:"):])
    if name.startswith("mkl:"):
        try:
            lanes = int(name[len("mkl:"):])
        except ValueError:
            return None
        return MklSystem(lanes=lanes)
    return None


def available_systems() -> tuple[str, ...]:
    """Every resolvable name: canonical registrations plus aliases."""
    _ensure_builtins()
    with _LOCK:
        return tuple(sorted(set(_SYSTEMS) | set(_ALIASES)))
