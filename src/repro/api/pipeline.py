"""The three-stage execution pipeline: prepare → bind → execute.

The paper itself distinguishes the phases this module reifies:

* **prepare** — code generation / compilation, the cacheable unit
  (Table IV measures it; the serving subsystem amortizes it).
  ``system.prepare(config)`` returns an :class:`Artifact` whose kernels
  are keyed by the same identity :class:`repro.serve.KernelCache` uses.
* **bind** — operand mapping and work partitioning for one concrete
  ``(A, X)`` problem.  ``artifact.bind(matrix, x)`` returns a
  :class:`BoundPlan` that is reusable across same-shaped requests
  (:meth:`BoundPlan.refresh` writes a new ``X`` into the already-mapped
  segment, exactly what the serving workspaces do).
* **execute** — ``plan.execute()`` resolves an execution backend from
  the :mod:`repro.exec` registry (``config.backend``, or per-call
  ``backend=`` / legacy ``timing=`` overrides) and returns that
  backend's :class:`repro.core.runner.RunResult` — host-speed numpy
  (``"native"``), functional counting (``"counts"``), cycle-accurate
  simulation (``"sim"``), or the superblock-compiled simulator
  (``"sim-fused"``).

Systems differ in *when* their kernel exists.  Address-free templates
(AOT personalities, the MKL-like kernel read operands from a parameter
block) have a prepare-time identity: the artifact compiles them once
and every bind reuses the template.  Specialized JIT kernels bake the
operand addresses into the instruction stream, so their identity is
only known at bind time; the artifact then resolves the kernel through
its cache per plan.  :attr:`System.address_free` records which regime a
system lives in — the bench harness also uses it to decide which
systems' codegen belongs inside the measured run.
"""

from __future__ import annotations

import abc
import threading

import numpy as np

from repro.core.engine import check_operands, multiply_partitioned
from repro.core.runner import RunResult
from repro.errors import ReproError, ShapeError
from repro.exec import canonical_name, get_backend
from repro.obs.trace import span as _span

from repro.api.config import ExecutionConfig

__all__ = ["Artifact", "BoundPlan", "System"]


class System(abc.ABC):
    """One runnable SpMM implementation (the registry's unit).

    Subclasses provide the three hooks below; the pipeline mechanics —
    caching, lazy kernel resolution, machine execution — are shared by
    :class:`Artifact` and :class:`BoundPlan`.

    Attributes:
        name: Registry name (``"jit"``, ``"aot:<personality>"``,
            ``"mkl"``).
        address_free: True when the compiled kernel is a template with
            no problem state baked in (reusable across any operands);
            False for specialized kernels whose identity exists only
            once operands are mapped.
        supports_autotune: True when ``split="auto"`` is meaningful for
            this system (the JIT, whose cost model the tuner uses).
    """

    name: str = ""
    address_free: bool = False
    supports_autotune: bool = False

    # ------------------------------------------------------------------
    def prepare(self, config: ExecutionConfig | None = None, *,
                kernel=None, **overrides) -> "Artifact":
        """Stage 1: an :class:`Artifact` holding this system's kernels.

        Pass a ready :class:`ExecutionConfig`, or keyword overrides to
        build one.  ``kernel`` injects a pre-compiled kernel (address-
        free systems only — the ``run_aot(kernel=...)`` compatibility
        path), bypassing the cache entirely.
        """
        if config is None:
            config = ExecutionConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        if kernel is not None and not self.address_free:
            raise ReproError(
                f"system {self.name!r} specializes kernels per problem; "
                "a pre-compiled kernel cannot be injected at prepare()")
        return Artifact(self, config, kernel=kernel)

    # -- hooks ----------------------------------------------------------
    @abc.abstractmethod
    def bind(self, artifact: "Artifact", matrix, x,
             name_prefix: str | None = None) -> "BoundPlan":
        """Map operands + partition work for one problem (no codegen)."""

    @abc.abstractmethod
    def build_kernel(self, plan: "BoundPlan | None") -> tuple[object, float]:
        """Compile/generate one kernel; returns ``(kernel, seconds)``.

        Pure codegen — no cache interaction (the artifact and the
        serving subsystem each apply their own cache discipline around
        this hook).  ``plan`` is None for address-free templates.
        """

    @abc.abstractmethod
    def kernel_nbytes(self, kernel) -> int:
        """Cache-accounting size of one compiled kernel."""

    def prepare_key(self, config: ExecutionConfig):
        """Cache identity known at prepare time (address-free systems);
        None when the identity needs bound operands (the JIT, or an
        AOT personality whose pass config is searched per matrix)."""
        return None

    def build_template(self, config: ExecutionConfig):
        """Compile the address-free template for ``config``; returns
        ``(kernel, seconds)``.  Default delegates to
        ``build_kernel(None)`` — the historical contract third-party
        address-free systems implement; built-in systems override this
        when the template depends on the config (optimization level).
        """
        return self.build_kernel(None)

    def tier_template(self, config: ExecutionConfig):
        """The cheaper tier this system's cold requests can serve from.

        Returns ``(system_name, config_overrides)`` naming a registered
        address-free system (and the config changes making it valid)
        whose results are bit-identical to this system's, or ``None``
        when no faster tier exists — the serving subsystem then keeps
        its untiered behavior regardless of ``config.tier_mode``.  The
        template must be *cheaper to bind* (no per-matrix codegen or
        search), which is what makes template-first registration
        near-instant.
        """
        return None


class Artifact:
    """Stage-1 output: a system + config, resolving kernels on demand.

    The artifact is the cache boundary.  With ``config.cache`` set, all
    kernel lookups go through that shared :class:`KernelCache` (counted
    probes, exactly like the pre-pipeline ``run_jit(cache=...)`` path);
    without one, address-free templates are memoized on the artifact
    itself and specialized kernels are generated per bind.
    """

    def __init__(self, system: System, config: ExecutionConfig,
                 kernel=None) -> None:
        self.system = system
        self.config = config
        self.cache = config.cache
        self._kernel = kernel          # template (or injected) kernel
        self._injected = kernel is not None
        #: wall time spent compiling at this artifact (0 when every
        #: kernel came from the cache or was injected)
        self.prepare_seconds = 0.0

    @property
    def key(self):
        """Prepare-time cache identity; None for specialized systems."""
        return self.system.prepare_key(self.config)

    # ------------------------------------------------------------------
    @property
    def kernel(self):
        """The template kernel (address-free systems), compiled on first
        access through the cache.  Specialized systems have no prepare-
        time kernel — bind a problem and use ``plan.kernel`` instead."""
        if not self.system.address_free:
            raise ReproError(
                f"system {self.system.name!r} specializes kernels per "
                "problem; bind(matrix, x) and read plan.kernel")
        if self._kernel is None and self.key is None:
            raise ReproError(
                f"system {self.system.name!r} resolves its kernel "
                "identity per matrix at this config (feedback-directed "
                "search); bind(matrix, x) and read plan.kernel")
        kernel, _, _ = self._template_kernel()
        return kernel

    def _template_kernel(self):
        """Resolve the address-free template: ``(kernel, cache_hit, s)``.

        ``cache_hit`` is True when this call avoided a compile via the
        shared cache or the artifact's own memo; injected kernels never
        count as hits (they are "bring your own kernel", not a cache
        event — mirroring the legacy ``run_aot(kernel=...)`` contract).
        """
        if self._kernel is not None:
            return self._kernel, not self._injected, 0.0
        kernel = None
        if self.cache is not None:
            kernel = self.cache.get(self.key)
        if kernel is not None:
            self._kernel = kernel
            return kernel, True, 0.0
        kernel, seconds = self.system.build_template(self.config)
        if self.cache is not None:
            self.cache.put(self.key, kernel,
                           self.system.kernel_nbytes(kernel))
        self._kernel = kernel
        self.prepare_seconds += seconds
        return kernel, False, seconds

    # ------------------------------------------------------------------
    def bind(self, matrix, x, *, ensure_kernel: bool | None = None,
             name_prefix: str | None = None) -> "BoundPlan":
        """Stage 2: map operands and partition work for ``(matrix, x)``.

        With ``ensure_kernel=False`` the kernel stays unresolved (no
        cache probe, no codegen) until :meth:`BoundPlan.ensure_kernel`
        or the first execute — the serving subsystem uses this to pay
        autotune + mapping without touching the cache counters.  The
        default (``None``) resolves the kernel exactly when the
        config's execution backend needs one, so binding for the
        ``"native"`` backend never pays codegen.
        """
        if ensure_kernel is None:
            ensure_kernel = get_backend(
                self.config.effective_backend).requires_kernel
        with _span("pipeline.bind", system=self.system.name,
                   d=int(x.shape[1]) if getattr(x, "ndim", 0) == 2 else 0):
            plan = self.system.bind(self, matrix, x,
                                    name_prefix=name_prefix)
            if ensure_kernel:
                self.ensure_kernel(plan)
        return plan

    def ensure_kernel(self, plan: "BoundPlan") -> "BoundPlan":
        """Resolve ``plan``'s kernel: cache probe, then codegen on miss.

        Address-free systems with a prepare-time identity (or an
        injected kernel) resolve through the artifact's template path;
        everything else — the JIT, and searched AOT configs whose
        identity exists only once a matrix is bound — resolves through
        the plan's own key.
        """
        if plan.kernel is not None:
            return plan
        if self.system.address_free and (self._kernel is not None
                                         or self.key is not None):
            kernel, cache_hit, seconds = self._template_kernel()
            plan.attach_kernel(kernel, cache_hit=cache_hit,
                               codegen_seconds=seconds)
            return plan
        kernel = self.cache.get(plan.key) if self.cache is not None else None
        if kernel is not None:
            plan.attach_kernel(kernel, cache_hit=True, codegen_seconds=0.0)
            return plan
        kernel, seconds = self.system.build_kernel(plan)
        if self.cache is not None:
            self.cache.put(plan.key, kernel,
                           self.system.kernel_nbytes(kernel))
        self.prepare_seconds += seconds
        plan.attach_kernel(kernel, cache_hit=False, codegen_seconds=seconds)
        return plan


class BoundPlan:
    """Stage-2 output: one problem bound to one artifact, ready to run.

    Carries the host-side operand buffers, the resolved split and
    thread partitions, and (once resolved) the compiled kernel.  The
    *simulated* address space is bound lazily: ``bind`` only validates
    operands and partitions work, and the mapping is materialized the
    first time something actually reads it (kernel identity resolution
    or a simulated-machine backend).  A ``repro.run(..., backend=
    "native")`` therefore never maps the address space it never reads.
    Reusable across same-shaped requests: :meth:`refresh` writes a new
    ``X`` into the (possibly mapped) buffer and re-arms the dispatcher,
    and :meth:`execute` re-runs the identical instruction stream.
    """

    def __init__(self, artifact: Artifact, matrix, *, key, split: str,
                 partitions, ranges, operands=None, x_host=None,
                 dynamic: bool = False, choice=None,
                 name_prefix: str | None = None) -> None:
        self.artifact = artifact
        self.matrix = matrix
        self._key = key
        self.split = split
        self.dynamic = dynamic
        self.partitions = partitions
        #: row ranges for the numpy fast path (host-side equivalent of
        #: the simulated threads' ownership)
        self.ranges = ranges
        self.choice = choice
        self.name_prefix = name_prefix
        self.kernel = None
        self.cache_hit = False
        self.codegen_seconds = 0.0
        self._operands = operands
        if operands is not None:
            # eager binding (third-party systems): host views come from
            # the already-mapped segments
            self.x_host = operands.x_host
            self.y_host = operands.y_host
        else:
            self.x_host = x_host
            self.y_host = (None if x_host is None else
                           np.zeros((matrix.nrows, x_host.shape[1]),
                                    dtype=np.float32))
        # kernel attachment finalizes kernel-dependent state (spill
        # areas); concurrent resolvers (the serving subsystem) must not
        # run that finalization twice — the same lock also serializes
        # lazy operand materialization
        self._attach_lock = threading.Lock()

    @property
    def key(self):
        """Kernel-cache identity (may materialize operands: specialized
        kernels bake mapped addresses into their identity)."""
        return self._key

    @property
    def operands(self):
        """The simulated address space, mapped on first access."""
        operands = self._operands
        if operands is None:
            with self._attach_lock:
                operands = self._operands
                if operands is None:
                    operands = self._operands = self._materialize()
        return operands

    @property
    def mapped(self) -> bool:
        """Whether the simulated address space has been materialized."""
        return self._operands is not None

    def _materialize(self):
        """Subclass hook: map the simulated address space."""
        raise ReproError(
            f"plan for system {self.system_name!r} has no simulated "
            "operands; pass operands= at construction or override "
            "_materialize()")

    @property
    def config(self) -> ExecutionConfig:
        return self.artifact.config

    @property
    def threads(self) -> int:
        return self.artifact.config.threads

    @property
    def system_name(self) -> str:
        return self.artifact.system.name

    @property
    def d(self) -> int:
        return int(self.x_host.shape[1])

    # ------------------------------------------------------------------
    def attach_kernel(self, kernel, *, cache_hit: bool,
                      codegen_seconds: float) -> None:
        """Install a resolved kernel (idempotent for a given identity)."""
        with self._attach_lock:
            self.kernel = kernel
            self.cache_hit = cache_hit
            self.codegen_seconds = codegen_seconds
            self._on_attach(kernel)

    def _on_attach(self, kernel) -> None:
        """Subclass hook: finalize kernel-dependent state (spill areas)."""

    def ensure_kernel(self) -> "BoundPlan":
        if self.kernel is None:
            self.artifact.ensure_kernel(self)
        return self

    # ------------------------------------------------------------------
    def refresh(self, x) -> "BoundPlan":
        """Load a new same-shaped ``X`` into the bound address space.

        Zeroes ``Y`` and re-arms the dynamic dispatcher, so the next
        :meth:`execute` serves the new request on the cached kernel —
        the operand segments are zero-copy views, so the baked addresses
        stay valid.
        """
        x = check_operands(self.matrix, x)
        if int(x.shape[1]) != self.d:
            raise ShapeError(
                f"plan is bound for d={self.d}, got X with d={x.shape[1]}")
        self.x_host[:] = x
        self.y_host[:] = 0.0
        self._reset_dispatch()
        return self

    def _reset_dispatch(self) -> None:
        """Subclass hook: reset shared dispatch state (NEXT counter)."""

    # ------------------------------------------------------------------
    def execute(self, *, timing: bool | None = None,
                backend: str | None = None) -> RunResult:
        """Stage 3: run the plan through an execution backend.

        The backend is resolved per run: an explicit ``backend=`` wins,
        else a ``timing=`` override picks ``"sim"``/``"counts"`` (the
        legacy spelling, kept for per-request fidelity switching in the
        serving subsystem), else the config's
        :attr:`~repro.api.ExecutionConfig.effective_backend`.  The
        returned ``y`` aliases the plan's live output buffer — copy it
        before refreshing the plan if the result must outlive the next
        request.
        """
        resolved = self.resolve_backend(timing=timing, backend=backend)
        with _span("pipeline.execute", backend=resolved,
                   system=self.artifact.system.name):
            return get_backend(resolved).execute(self)

    def resolve_backend(self, *, timing: bool | None = None,
                        backend: str | None = None) -> str:
        """The canonical backend name one :meth:`execute` call with
        these arguments would dispatch to (aliases normalized, so
        traffic accounting and memo keys never fragment a backend)."""
        if backend is not None:
            return canonical_name(backend)
        if timing is not None:
            return "sim" if timing else "counts"
        return self.artifact.config.effective_backend

    def _thread_specs(self):
        raise NotImplementedError

    def _between_runs(self):
        """Callable for the warmup path's state reset, or None."""
        return None

    def _make_result(self, merged, per_thread) -> RunResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def multiply(self, x) -> np.ndarray:
        """Fast-path ``Y = A @ x`` over this plan's row ranges (numpy)."""
        x = check_operands(self.matrix, x)
        return multiply_partitioned(self.matrix, x, self.ranges)
