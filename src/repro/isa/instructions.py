"""Instruction objects and the mnemonic registry.

Every mnemonic the library can emit is described once in
:data:`MNEMONICS` with enough metadata for the assembler (operand roles),
the perf counters (loads/stores/branches), and the pipeline model
(instruction class -> port/latency mapping).  The registry covers exactly
the subset needed by the SpMM kernels of the paper: scalar integer control
flow, the ``lock xadd`` dynamic-dispatch primitive (Listing 1), and the
AVX-512 data path of Listing 2 (``vxorps`` / ``vbroadcastss`` /
``vfmadd231ps`` / ``vmovups``) plus what the AOT auto-vectorizer needs
(gathers, horizontal reductions, integer vector arithmetic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.operands import Mem, Operand
from repro.isa.registers import Register

__all__ = ["InsnKind", "Instruction", "MnemonicInfo", "MNEMONICS", "mnemonic_info"]


class InsnKind(enum.Enum):
    """Coarse instruction class, used for port binding and counting."""

    MOV_INT = "mov_int"
    ALU_INT = "alu_int"
    MUL_INT = "mul_int"
    LEA = "lea"
    BRANCH = "branch"
    COND_BRANCH = "cond_branch"
    RET = "ret"
    NOP = "nop"
    ATOMIC = "atomic"
    VEC_MOV = "vec_mov"
    VEC_XOR = "vec_xor"
    VEC_ALU = "vec_alu"
    VEC_MUL = "vec_mul"
    VEC_FMA = "vec_fma"
    VEC_BCAST = "vec_bcast"
    VEC_GATHER = "vec_gather"
    VEC_HADD = "vec_hadd"
    VEC_EXTRACT = "vec_extract"
    VEC_IMUL = "vec_imul"


@dataclass(frozen=True)
class MnemonicInfo:
    """Static description of one mnemonic.

    Attributes:
        name: Assembly mnemonic, e.g. ``"vfmadd231ps"``.
        kind: Instruction class for the pipeline model.
        roles: Operand roles, one of ``"r"``, ``"w"``, ``"rw"`` per operand
            position.  A memory operand in a ``"w"`` slot is a store; in an
            ``"r"`` slot a load; ``"rw"`` is a read-modify-write.
        arity: Allowed operand counts.
        writes_flags: Whether RFLAGS is written.
        reads_flags: Whether RFLAGS is read (conditional branches).
        doc: One-line description.
    """

    name: str
    kind: InsnKind
    roles: tuple[str, ...]
    arity: tuple[int, ...]
    writes_flags: bool = False
    reads_flags: bool = False
    doc: str = ""


def _info(
    name: str,
    kind: InsnKind,
    roles: str,
    arity: int | tuple[int, ...] | None = None,
    wf: bool = False,
    rf: bool = False,
    doc: str = "",
) -> MnemonicInfo:
    role_tuple = tuple(roles.split(",")) if roles else ()
    if arity is None:
        arity_tuple: tuple[int, ...] = (len(role_tuple),)
    elif isinstance(arity, int):
        arity_tuple = (arity,)
    else:
        arity_tuple = arity
    return MnemonicInfo(name, kind, role_tuple, arity_tuple, wf, rf, doc)


_CC_BRANCHES = {
    "je": "jump if equal (ZF=1)",
    "jne": "jump if not equal (ZF=0)",
    "jl": "jump if less, signed (SF!=OF)",
    "jle": "jump if less-or-equal, signed",
    "jg": "jump if greater, signed",
    "jge": "jump if greater-or-equal, signed (SF=OF)",
    "jb": "jump if below, unsigned (CF=1)",
    "jbe": "jump if below-or-equal, unsigned",
    "ja": "jump if above, unsigned",
    "jae": "jump if above-or-equal, unsigned (CF=0)",
}

MNEMONICS: dict[str, MnemonicInfo] = {
    info.name: info
    for info in [
        # -- integer data movement and arithmetic --------------------------
        _info("mov", InsnKind.MOV_INT, "w,r", doc="move register/memory/immediate"),
        _info("lea", InsnKind.LEA, "w,r", doc="load effective address"),
        _info("add", InsnKind.ALU_INT, "rw,r", wf=True, doc="integer add"),
        _info("sub", InsnKind.ALU_INT, "rw,r", wf=True, doc="integer subtract"),
        _info("and", InsnKind.ALU_INT, "rw,r", wf=True, doc="bitwise and"),
        _info("or", InsnKind.ALU_INT, "rw,r", wf=True, doc="bitwise or"),
        _info("xor", InsnKind.ALU_INT, "rw,r", wf=True, doc="bitwise xor"),
        _info("shl", InsnKind.ALU_INT, "rw,r", wf=True, doc="shift left"),
        _info("shr", InsnKind.ALU_INT, "rw,r", wf=True, doc="logical shift right"),
        _info("sar", InsnKind.ALU_INT, "rw,r", wf=True, doc="arithmetic shift right"),
        _info("imul", InsnKind.MUL_INT, "rw,r", arity=(2, 3), wf=True,
              doc="signed multiply (2-op: dst*=src; 3-op: dst=src*imm)"),
        _info("inc", InsnKind.ALU_INT, "rw", wf=True, doc="increment"),
        _info("dec", InsnKind.ALU_INT, "rw", wf=True, doc="decrement"),
        _info("neg", InsnKind.ALU_INT, "rw", wf=True, doc="two's-complement negate"),
        _info("cmp", InsnKind.ALU_INT, "r,r", wf=True, doc="compare (sets flags)"),
        _info("test", InsnKind.ALU_INT, "r,r", wf=True, doc="logical compare"),
        _info("xadd", InsnKind.ATOMIC, "rw,rw", wf=True,
              doc="exchange-and-add; with LOCK prefix: atomic fetch-add"),
        # -- control flow ---------------------------------------------------
        _info("jmp", InsnKind.BRANCH, "r", doc="unconditional jump"),
        _info("ret", InsnKind.RET, "", doc="return from jit-function"),
        _info("nop", InsnKind.NOP, "", doc="no operation"),
        # -- AVX / AVX-512 floating point ------------------------------------
        _info("vxorps", InsnKind.VEC_XOR, "w,r,r",
              doc="packed single xor; canonical register-zeroing idiom"),
        _info("vmovups", InsnKind.VEC_MOV, "w,r",
              doc="unaligned packed single move (load/store/reg)"),
        _info("vmovaps", InsnKind.VEC_MOV, "w,r", doc="aligned packed single move"),
        _info("vmovss", InsnKind.VEC_MOV, "w,r", doc="scalar single move"),
        _info("vmovdqu32", InsnKind.VEC_MOV, "w,r",
              doc="unaligned 32-bit-element integer vector move"),
        _info("vbroadcastss", InsnKind.VEC_BCAST, "w,r",
              doc="broadcast scalar single to all lanes"),
        _info("vpbroadcastd", InsnKind.VEC_BCAST, "w,r",
              doc="broadcast 32-bit integer to all lanes"),
        _info("vaddps", InsnKind.VEC_ALU, "w,r,r", doc="packed single add"),
        _info("vsubps", InsnKind.VEC_ALU, "w,r,r", doc="packed single subtract"),
        _info("vmulps", InsnKind.VEC_MUL, "w,r,r", doc="packed single multiply"),
        _info("vdivps", InsnKind.VEC_MUL, "w,r,r", doc="packed single divide"),
        _info("vaddss", InsnKind.VEC_ALU, "w,r,r", doc="scalar single add"),
        _info("vsubss", InsnKind.VEC_ALU, "w,r,r", doc="scalar single subtract"),
        _info("vmulss", InsnKind.VEC_MUL, "w,r,r", doc="scalar single multiply"),
        _info("vfmadd231ps", InsnKind.VEC_FMA, "rw,r,r",
              doc="packed fused multiply-add: dst += src1 * src2"),
        _info("vfmadd231ss", InsnKind.VEC_FMA, "rw,r,r",
              doc="scalar fused multiply-add: dst += src1 * src2"),
        _info("vhaddps", InsnKind.VEC_HADD, "w,r,r",
              doc="horizontal pairwise add of packed singles"),
        _info("vextractf128", InsnKind.VEC_EXTRACT, "w,r,r",
              doc="extract 128-bit lane from ymm"),
        _info("vextractf64x4", InsnKind.VEC_EXTRACT, "w,r,r",
              doc="extract 256-bit lane from zmm"),
        # -- AVX-512 integer + gather ----------------------------------------
        _info("vpaddd", InsnKind.VEC_ALU, "w,r,r", doc="packed 32-bit integer add"),
        _info("vpmulld", InsnKind.VEC_IMUL, "w,r,r",
              doc="packed 32-bit integer multiply (low)"),
        _info("vpslld", InsnKind.VEC_ALU, "w,r,r",
              doc="packed 32-bit shift left by immediate"),
        _info("vgatherdps", InsnKind.VEC_GATHER, "w,r",
              doc="gather packed singles via 32-bit vector indices (VSIB)"),
    ]
}
MNEMONICS.update(
    {
        name: _info(name, InsnKind.COND_BRANCH, "r", rf=True, doc=doc)
        for name, doc in _CC_BRANCHES.items()
    }
)


def mnemonic_info(name: str) -> MnemonicInfo:
    """Look up mnemonic metadata, raising :class:`AssemblyError` if unknown."""
    try:
        return MNEMONICS[name]
    except KeyError:
        raise AssemblyError(f"unknown mnemonic {name!r}") from None


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction: mnemonic + operands (+ optional LOCK).

    Operands appear in Intel order (destination first).  Branch targets are
    label names (strings) until the assembler resolves them.
    """

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    lock: bool = False

    info: MnemonicInfo = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        info = mnemonic_info(self.mnemonic)
        if len(self.operands) not in info.arity:
            raise AssemblyError(
                f"{self.mnemonic} takes {info.arity} operands, "
                f"got {len(self.operands)}"
            )
        if self.lock and info.kind is not InsnKind.ATOMIC:
            raise AssemblyError(f"LOCK prefix invalid on {self.mnemonic}")
        mem_count = sum(isinstance(op, Mem) for op in self.operands)
        if mem_count > 1:
            raise AssemblyError(
                f"{self.mnemonic}: at most one memory operand allowed"
            )
        object.__setattr__(self, "info", info)

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def kind(self) -> InsnKind:
        return self.info.kind

    @property
    def is_branch(self) -> bool:
        return self.kind in (InsnKind.BRANCH, InsnKind.COND_BRANCH)

    @property
    def is_cond_branch(self) -> bool:
        return self.kind is InsnKind.COND_BRANCH

    @property
    def branch_target(self) -> str | None:
        """Label name for branch instructions, else None."""
        if self.is_branch and self.operands and isinstance(self.operands[0], str):
            return self.operands[0]
        return None

    def _role_of(self, position: int) -> str:
        roles = self.info.roles
        if position < len(roles):
            return roles[position]
        return "r"  # extra operands (3-op imul immediate) are reads

    def memory_refs(self) -> tuple[tuple[Mem, str], ...]:
        """All memory operands with their access direction ('r'/'w'/'rw')."""
        refs = []
        for position, op in enumerate(self.operands):
            if isinstance(op, Mem):
                refs.append((op, self._role_of(position)))
        return tuple(refs)

    def registers_read(self) -> tuple[Register, ...]:
        """Registers whose value this instruction consumes.

        The register-zeroing idiom ``vxorps r, r, r`` (and ``xor r, r``)
        reads nothing, matching real hardware's dependency-breaking
        behaviour.
        """
        if self._is_zero_idiom():
            return ()
        seen: list[Register] = []
        for position, op in enumerate(self.operands):
            role = self._role_of(position)
            if isinstance(op, Register) and "r" in role:
                seen.append(op)
            elif isinstance(op, Mem):
                seen.extend(op.registers())
        return tuple(seen)

    def registers_read_data(self) -> tuple[Register, ...]:
        """Register operands consumed by the *execution* micro-op.

        Excludes effective-address registers: out-of-order cores split a
        load-operand instruction into a load micro-op (address registers
        only, see :meth:`registers_read_addr`) and an execution micro-op,
        so e.g. ``vfmadd231ps zmm0, zmm31, [mem]`` can start its load
        before the ``zmm0`` accumulator chain catches up.
        """
        if self._is_zero_idiom():
            return ()
        seen: list[Register] = []
        for position, op in enumerate(self.operands):
            if isinstance(op, Register) and "r" in self._role_of(position):
                seen.append(op)
        return tuple(seen)

    def registers_read_addr(self) -> tuple[Register, ...]:
        """Registers the address-generation micro-op needs."""
        seen: list[Register] = []
        for op in self.operands:
            if isinstance(op, Mem):
                seen.extend(op.registers())
        return tuple(seen)

    def registers_written(self) -> tuple[Register, ...]:
        """Registers this instruction writes."""
        written: list[Register] = []
        for position, op in enumerate(self.operands):
            if isinstance(op, Register) and "w" in self._role_of(position):
                written.append(op)
        return tuple(written)

    def _is_zero_idiom(self) -> bool:
        if self.mnemonic in ("vxorps", "xor") and len(self.operands) >= 2:
            ops = self.operands
            srcs = ops[1:] if self.mnemonic == "vxorps" else ops
            regs = [op for op in srcs if isinstance(op, Register)]
            return len(regs) == len(srcs) and len({r.name for r in regs}) == 1
        return False

    def __str__(self) -> str:
        prefix = "lock " if self.lock else ""
        if not self.operands:
            return f"{prefix}{self.mnemonic}"
        rendered = ", ".join(
            op if isinstance(op, str) else repr(op) for op in self.operands
        )
        return f"{prefix}{self.mnemonic} {rendered}"
