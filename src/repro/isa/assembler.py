"""Two-pass assembler: fluent instruction emission, labels, programs.

The :class:`Assembler` is the interface every code generator in this
library (JIT and AOT alike) uses to emit instructions, in the same spirit
as the AsmJit builder the paper uses.  A finished :class:`Program` carries
the instruction list, resolved label targets, and can be encoded to
machine-code bytes on demand.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.instructions import MNEMONICS, Instruction
from repro.isa.operands import Imm, Operand

__all__ = ["Assembler", "Label", "Program"]


@dataclass(frozen=True)
class Label:
    """A named position in the instruction stream."""

    name: str

    def __repr__(self) -> str:
        return f".{self.name}:"


@dataclass
class Program:
    """A finished, label-resolved instruction sequence.

    Attributes:
        instructions: Flat instruction list in program order.
        labels: Map from label name to the index of the instruction the
            label precedes (may equal ``len(instructions)`` for a label at
            the very end).
        name: Optional symbol name for listings.
    """

    instructions: list[Instruction]
    labels: dict[str, int]
    name: str = ""
    _encoded: bytes | None = field(default=None, repr=False, compare=False)
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.instructions)

    def fingerprint(self) -> str:
        """Content identity of the instruction stream (cached).

        Two programs with equal fingerprints have identical instructions
        and label targets, hence identical execution semantics — the
        interpreter keys its compiled-closure caches on this instead of
        ``id(program)``, whose value a garbage-collected program can
        bequeath to an unrelated new one.  ``name`` is excluded: it only
        decorates listings and error messages.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for insn in self.instructions:
                digest.update(str(insn).encode())
                digest.update(b"\n")
            for label, index in sorted(self.labels.items()):
                digest.update(f"{label}@{index}\n".encode())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def block_starts(self) -> list[int]:
        """Basic-block leader indices, in program order.

        A leader is the entry point, any label (every branch target is a
        label in this ISA), or the instruction following a branch/`ret`.
        The straight-line run from one leader to the next is a basic
        block — the unit the superblock-compiled simulator fuses.
        """
        leaders = {0}
        for index, insn in enumerate(self.instructions):
            if insn.is_branch or insn.mnemonic == "ret":
                leaders.add(index + 1)
        leaders.update(self.labels.values())
        return sorted(i for i in leaders if i < len(self.instructions))

    def target_index(self, label: str) -> int:
        """Resolve a label to an instruction index."""
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(
                f"undefined label {label!r} in program {self.name!r}"
            ) from None

    def listing(self) -> str:
        """Human-readable assembly listing with labels interleaved."""
        by_index: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines: list[str] = []
        if self.name:
            lines.append(f"{self.name}:")
        for index, insn in enumerate(self.instructions):
            for label in sorted(by_index.get(index, ())):
                lines.append(f".{label}:")
            lines.append(f"    {insn}")
        for label in sorted(by_index.get(len(self.instructions), ())):
            lines.append(f".{label}:")
        return "\n".join(lines)

    def encode(self) -> bytes:
        """Machine-code bytes for the whole program (cached)."""
        if self._encoded is None:
            from repro.isa.encoder import encode_program

            self._encoded = encode_program(self)
        return self._encoded

    def code_size(self) -> int:
        """Size of the encoded program in bytes."""
        return len(self.encode())

    def static_counts(self) -> dict[str, int]:
        """Static histogram of mnemonics (for codegen statistics)."""
        counts: dict[str, int] = {}
        for insn in self.instructions:
            counts[insn.mnemonic] = counts.get(insn.mnemonic, 0) + 1
        return counts


class Assembler:
    """Fluent instruction builder with label management.

    Mnemonics from the registry are exposed as methods::

        asm = Assembler("kernel")
        asm.mov(regs.rdi, Imm(0))
        asm.label("loop")
        ...
        asm.jmp("loop")
        program = asm.finish()

    Integer arguments in operand position are promoted to :class:`Imm`.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: list[Instruction | Label] = []
        self._label_names: set[str] = set()
        self._gensym = itertools.count()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    @staticmethod
    def _promote(op: Operand | int) -> Operand:
        if isinstance(op, int):
            return Imm(op)
        return op

    def emit(self, mnemonic: str, *operands: Operand | int, lock: bool = False) -> Instruction:
        """Append one instruction; returns it for inspection."""
        insn = Instruction(
            mnemonic, tuple(self._promote(op) for op in operands), lock=lock
        )
        self._items.append(insn)
        return insn

    def __getattr__(self, name: str):
        if name in MNEMONICS:
            def emit_named(*operands: Operand | int, lock: bool = False) -> Instruction:
                return self.emit(name, *operands, lock=lock)

            return emit_named
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------
    def label(self, name: str) -> str:
        """Bind ``name`` to the current position; returns the name."""
        if name in self._label_names:
            raise AssemblyError(f"label {name!r} defined twice")
        self._label_names.add(name)
        self._items.append(Label(name))
        return name

    def fresh_label(self, prefix: str = "L") -> str:
        """Generate a unique label *name* (not yet bound to a position)."""
        return f"{prefix}_{next(self._gensym)}"

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finish(self) -> Program:
        """Resolve labels and produce an immutable :class:`Program`."""
        instructions: list[Instruction] = []
        labels: dict[str, int] = {}
        for item in self._items:
            if isinstance(item, Label):
                labels[item.name] = len(instructions)
            else:
                instructions.append(item)
        for insn in instructions:
            target = insn.branch_target
            if target is not None and target not in labels:
                raise AssemblyError(
                    f"branch to undefined label {target!r} in {self.name!r}"
                )
        return Program(instructions, labels, name=self.name)

    def __len__(self) -> int:
        return sum(1 for item in self._items if isinstance(item, Instruction))
