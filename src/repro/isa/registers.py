"""Register model: x86-64 general-purpose and SIMD registers.

Mirrors the architectural state described in the paper's Figure 3: sixteen
64-bit general-purpose registers and the SIMD register file where
``XMMi``/``YMMi``/``ZMMi`` alias the low 128/256 bits of the same physical
512-bit register (paper §IV-D.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "GPR64",
    "GPR_NAMES",
    "Register",
    "RegisterFile",
    "VectorRegister",
    "gpr",
    "xmm",
    "ymm",
    "zmm",
]

GPR_NAMES = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)


@dataclass(frozen=True)
class Register:
    """An architectural register.

    Attributes:
        name: Assembly name, e.g. ``"r10"`` or ``"zmm31"``.
        code: Hardware encoding number (0-15 for GPRs, 0-31 for vectors).
        width: Width in bits (64 for GPRs; 128/256/512 for vectors).
    """

    name: str
    code: int
    width: int

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorRegister)

    @property
    def is_extended(self) -> bool:
        """True if encoding the register needs REX.B/R (code >= 8)."""
        return self.code >= 8

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class GPR64(Register):
    """A 64-bit general-purpose register (``rax`` ... ``r15``)."""


@dataclass(frozen=True, repr=False)
class VectorRegister(Register):
    """A SIMD register: ``xmm0-31``, ``ymm0-31`` or ``zmm0-31``.

    ``xmm(i)``, ``ymm(i)`` and ``zmm(i)`` share the physical register ``i``;
    :attr:`lanes_f32` gives the number of 32-bit float lanes the architectural
    width exposes (4, 8, 16).
    """

    @property
    def lanes_f32(self) -> int:
        return self.width // 32

    @property
    def lanes_i32(self) -> int:
        return self.width // 32

    def with_width(self, width: int) -> "VectorRegister":
        """Return the alias of this physical register at another width."""
        return _vector(self.code, width)


@lru_cache(maxsize=None)
def gpr(code_or_name: int | str) -> GPR64:
    """Look up a general-purpose register by encoding number or name."""
    if isinstance(code_or_name, str):
        try:
            code = GPR_NAMES.index(code_or_name)
        except ValueError:
            raise KeyError(f"unknown GPR name {code_or_name!r}") from None
    else:
        code = code_or_name
    if not 0 <= code < 16:
        raise KeyError(f"GPR code out of range: {code}")
    return GPR64(GPR_NAMES[code], code, 64)


_WIDTH_PREFIX = {128: "xmm", 256: "ymm", 512: "zmm"}


@lru_cache(maxsize=None)
def _vector(code: int, width: int) -> VectorRegister:
    if width not in _WIDTH_PREFIX:
        raise KeyError(f"unsupported vector width {width}")
    if not 0 <= code < 32:
        raise KeyError(f"vector register code out of range: {code}")
    return VectorRegister(f"{_WIDTH_PREFIX[width]}{code}", code, width)


def xmm(code: int) -> VectorRegister:
    """The 128-bit alias of physical vector register ``code``."""
    return _vector(code, 128)


def ymm(code: int) -> VectorRegister:
    """The 256-bit alias of physical vector register ``code``."""
    return _vector(code, 256)


def zmm(code: int) -> VectorRegister:
    """The 512-bit alias of physical vector register ``code``."""
    return _vector(code, 512)


class RegisterFile:
    """Names for the architectural registers, as attributes.

    Provides ``regs.rax`` ... ``regs.r15`` and ``regs.xmm0`` ...
    ``regs.zmm31`` so generated-code builders read like assembly listings.
    """

    def __getattr__(self, name: str) -> Register:
        if name in GPR_NAMES:
            return gpr(name)
        for prefix, width in (("xmm", 128), ("ymm", 256), ("zmm", 512)):
            if name.startswith(prefix) and name[len(prefix):].isdigit():
                return _vector(int(name[len(prefix):]), width)
        raise AttributeError(f"unknown register {name!r}")


#: Singleton register-file namespace; ``from repro.isa.registers import regs``.
regs = RegisterFile()
