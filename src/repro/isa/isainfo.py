"""ISA feature levels and vector geometry.

The paper targets CPUs with SSE2 / AVX / AVX2 / AVX-512 extensions
(§II-B, Figure 3).  An :class:`IsaLevel` captures what a code generator may
use: the widest vector register, how many architectural vector registers
exist (16 below AVX-512, 32 with it), and whether FMA and gathers are
available.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["IsaLevel", "ISA_SPECS", "IsaSpec", "VEC_LANES_F32"]

#: float32 lanes per vector register width in bits.
VEC_LANES_F32 = {128: 4, 256: 8, 512: 16}


class IsaLevel(enum.Enum):
    """Supported instruction-set feature levels."""

    SCALAR = "scalar"
    SSE2 = "sse2"
    AVX2 = "avx2"
    AVX512 = "avx512"

    @classmethod
    def parse(cls, value: "IsaLevel | str") -> "IsaLevel":
        if isinstance(value, IsaLevel):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            valid = ", ".join(level.value for level in cls)
            raise ValueError(
                f"unknown ISA level {value!r}; expected one of: {valid}"
            ) from None


@dataclass(frozen=True)
class IsaSpec:
    """Capabilities of one ISA level.

    Attributes:
        level: The feature level.
        max_vector_bits: Widest usable vector register (32 means
            scalar-in-XMM only).
        num_vector_regs: Architectural vector register count.
        has_fma: Fused multiply-add available.
        has_gather: Vector gather available.
    """

    level: IsaLevel
    max_vector_bits: int
    num_vector_regs: int
    has_fma: bool
    has_gather: bool

    @property
    def max_lanes_f32(self) -> int:
        """Widest number of float32 lanes (1 for scalar)."""
        return max(1, self.max_vector_bits // 32)

    def register_widths(self) -> tuple[int, ...]:
        """Usable packed register widths, widest first (empty for scalar)."""
        return tuple(w for w in (512, 256, 128) if w <= self.max_vector_bits)


ISA_SPECS: dict[IsaLevel, IsaSpec] = {
    # SCALAR means "no packed ops" on an AVX-512-capable core: the paper's
    # single-thread scalar study (Table II) still uses XMM0-7 + XMM31 as
    # scalar accumulators, so all 32 registers are addressable.
    IsaLevel.SCALAR: IsaSpec(IsaLevel.SCALAR, 32, 32, has_fma=False, has_gather=False),
    IsaLevel.SSE2: IsaSpec(IsaLevel.SSE2, 128, 16, has_fma=False, has_gather=False),
    IsaLevel.AVX2: IsaSpec(IsaLevel.AVX2, 256, 16, has_fma=True, has_gather=True),
    IsaLevel.AVX512: IsaSpec(IsaLevel.AVX512, 512, 32, has_fma=True, has_gather=True),
}


def isa_spec(level: IsaLevel | str) -> IsaSpec:
    """Look up the :class:`IsaSpec` for a level (accepts names)."""
    return ISA_SPECS[IsaLevel.parse(level)]
