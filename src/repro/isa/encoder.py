"""Machine-code encoder: REX / VEX / EVEX byte emission.

Encodes the instruction subset in :mod:`repro.isa.instructions` to real
x86-64 machine code.  The encoder makes a few fixed layout choices to keep
the two-pass assembly deterministic:

* branches always use rel32 displacement forms (``jmp`` = 5 bytes,
  ``jcc`` = 6 bytes);
* VEX always uses the three-byte ``C4`` form;
* EVEX memory operands never use compressed disp8 (disp32 instead);
* ``vgatherdps`` is emitted in its EVEX form with an implicit all-ones
  ``k1`` mask (the sequence real AVX-512 gather loops use after a
  ``kxnorw k1,k1,k1``, which our subset leaves implicit).

These choices are documented deviations, not bugs; the disassembler in
:mod:`repro.isa.disasm` round-trips everything this module emits.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem
from repro.isa.registers import GPR64, Register, VectorRegister

__all__ = ["encode_instruction", "encode_program", "instruction_length"]

# Opcode maps.
MAP_0F, MAP_0F38, MAP_0F3A = 1, 2, 3
# Mandatory-prefix ("pp") field values.
PP_NONE, PP_66, PP_F3, PP_F2 = 0, 1, 2, 3

_SCALE_LOG = {1: 0, 2: 1, 4: 2, 8: 3}


def _i32(value: int) -> bytes:
    return (value & 0xFFFFFFFF).to_bytes(4, "little")


def _i8(value: int) -> bytes:
    return (value & 0xFF).to_bytes(1, "little")


def _i64(value: int) -> bytes:
    return (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")


class _MemEncoding:
    """ModRM.mod/rm plus SIB/displacement tail for one memory operand."""

    def __init__(self, mem: Mem, allow_disp8: bool = True) -> None:
        self.x = 0  # REX.X / EVEX.X bit (index bit 3)
        self.b = 0  # REX.B bit (base bit 3)
        self.vsib_high = 0  # EVEX.V' (vector index bit 4)
        base, index = mem.base, mem.index
        if index is not None and isinstance(index, GPR64) and index.code == 4:
            raise EncodingError("rsp cannot be an index register")

        need_sib = (
            index is not None
            or base is None
            or (base.code & 7) == 4  # rsp/r12 demand a SIB byte
        )
        disp = mem.disp
        if base is None:
            # [index*scale + disp32] form: mod=00, base=101.
            self.mod, self.rm = 0, 4
            tail = self._sib(mem, base_code=5)
            tail += _i32(disp)
            self.tail = tail
            return

        base_low = base.code & 7
        self.b = (base.code >> 3) & 1
        force_disp = base_low == 5  # rbp/r13 cannot use mod=00
        if disp == 0 and not force_disp:
            self.mod, disp_bytes = 0, b""
        elif allow_disp8 and -128 <= disp < 128:
            self.mod, disp_bytes = 1, _i8(disp)
        else:
            self.mod, disp_bytes = 2, _i32(disp)
        if need_sib:
            self.rm = 4
            self.tail = self._sib(mem, base_code=base_low) + disp_bytes
        else:
            self.rm = base_low
            self.tail = disp_bytes

    def _sib(self, mem: Mem, base_code: int) -> bytes:
        index = mem.index
        if index is None:
            index_code = 4  # "no index"
        else:
            index_code = index.code & 7
            self.x = (index.code >> 3) & 1
            if isinstance(index, VectorRegister):
                self.vsib_high = (index.code >> 4) & 1
        scale = _SCALE_LOG[mem.scale]
        return bytes([(scale << 6) | (index_code << 3) | base_code])

    def modrm(self, reg_field: int) -> bytes:
        return bytes([(self.mod << 6) | ((reg_field & 7) << 3) | self.rm])


def _rex(w: int, r: int, x: int, b: int, force: bool = False) -> bytes:
    if w or r or x or b or force:
        return bytes([0x40 | (w << 3) | (r << 2) | (x << 1) | b])
    return b""


def _vex3(r: int, x: int, b: int, mmap: int, w: int, vvvv: int, vlen: int, pp: int) -> bytes:
    byte1 = ((r ^ 1) << 7) | ((x ^ 1) << 6) | ((b ^ 1) << 5) | mmap
    vl = 1 if vlen == 256 else 0
    byte2 = (w << 7) | (((~vvvv) & 0xF) << 3) | (vl << 2) | pp
    return bytes([0xC4, byte1, byte2])


def _evex(
    r: int,
    x: int,
    b: int,
    r_hi: int,
    mmap: int,
    w: int,
    vvvv: int,
    vlen: int,
    pp: int,
    v_hi: int = 0,
    aaa: int = 0,
) -> bytes:
    p0 = ((r ^ 1) << 7) | ((x ^ 1) << 6) | ((b ^ 1) << 5) | ((r_hi ^ 1) << 4) | mmap
    p1 = (w << 7) | (((~vvvv) & 0xF) << 3) | 0x04 | pp
    vl = {128: 0, 256: 1, 512: 2}[vlen]
    p2 = (vl << 5) | ((v_hi ^ 1) << 3) | aaa
    return bytes([0x62, p0, p1, p2])


def _reg_bits(reg: Register) -> tuple[int, int, int]:
    """(low3, bit3, bit4) of a register encoding number."""
    return reg.code & 7, (reg.code >> 3) & 1, (reg.code >> 4) & 1


def _needs_evex(insn: Instruction) -> bool:
    for op in insn.operands:
        if isinstance(op, VectorRegister) and (op.width == 512 or op.code >= 16):
            return True
        if isinstance(op, Mem):
            if op.size == 64:
                return True
            if isinstance(op.index, VectorRegister) and (
                op.index.width == 512 or op.index.code >= 16
            ):
                return True
    return insn.mnemonic in _EVEX_ONLY


_EVEX_ONLY = {"vextractf64x4", "vgatherdps"}

# ----------------------------------------------------------------------
# Legacy integer encodings
# ----------------------------------------------------------------------

# (opcode for r/m,r direction, opcode for r,r/m direction, /digit for group-83)
_ALU_OPS = {
    "add": (0x01, 0x03, 0),
    "or": (0x09, 0x0B, 1),
    "and": (0x21, 0x23, 4),
    "sub": (0x29, 0x2B, 5),
    "xor": (0x31, 0x33, 6),
    "cmp": (0x39, 0x3B, 7),
}
_SHIFT_DIGITS = {"shl": 4, "shr": 5, "sar": 7}
_JCC_OPCODES = {
    "je": 0x84, "jne": 0x85, "jb": 0x82, "jae": 0x83, "jbe": 0x86,
    "ja": 0x87, "jl": 0x8C, "jge": 0x8D, "jle": 0x8E, "jg": 0x8F,
}


def _w_for(mem: Mem | None) -> int:
    """REX.W for an integer op: follow the memory access size, default 64-bit."""
    if mem is None:
        return 1
    if mem.size == 8:
        return 1
    if mem.size == 4:
        return 0
    raise EncodingError(f"integer ops support 4/8-byte memory, got {mem.size}")


def _legacy_rm(
    opcode: bytes, reg_field: int, rm_op: Register | Mem, w: int, lock: bool = False
) -> bytes:
    prefix = b"\xf0" if lock else b""
    if isinstance(rm_op, Mem):
        enc = _MemEncoding(rm_op)
        rex = _rex(w, reg_field >> 3, enc.x, enc.b)
        return prefix + rex + opcode + enc.modrm(reg_field) + enc.tail
    low, b3, _ = _reg_bits(rm_op)
    rex = _rex(w, reg_field >> 3, 0, b3)
    modrm = bytes([0xC0 | ((reg_field & 7) << 3) | low])
    return prefix + rex + opcode + modrm


def _enc_mov(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if isinstance(dst, GPR64) and isinstance(src, Imm):
        if src.width == 64:
            low, b3, _ = _reg_bits(dst)
            return _rex(1, 0, 0, b3) + bytes([0xB8 + low]) + _i64(src.value)
        return _legacy_rm(b"\xc7", 0, dst, w=1) + _i32(src.value)
    if isinstance(dst, Mem) and isinstance(src, Imm):
        return _legacy_rm(b"\xc7", 0, dst, w=_w_for(dst)) + _i32(src.value)
    if isinstance(dst, GPR64) and isinstance(src, Mem):
        return _legacy_rm(b"\x8b", dst.code, src, w=_w_for(src))
    if isinstance(dst, Mem) and isinstance(src, GPR64):
        return _legacy_rm(b"\x89", src.code, dst, w=_w_for(dst))
    if isinstance(dst, GPR64) and isinstance(src, GPR64):
        return _legacy_rm(b"\x8b", dst.code, src, w=1)
    raise EncodingError(f"unsupported mov form: {insn}")


def _enc_alu(insn: Instruction) -> bytes:
    rm_store, rm_load, digit = _ALU_OPS[insn.mnemonic]
    dst, src = insn.operands
    if isinstance(src, Imm):
        if not isinstance(dst, (GPR64, Mem)):
            raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")
        w = _w_for(dst if isinstance(dst, Mem) else None)
        if src.width == 8:
            return _legacy_rm(b"\x83", digit, dst, w=w) + _i8(src.value)
        if src.width == 32:
            return _legacy_rm(b"\x81", digit, dst, w=w) + _i32(src.value)
        raise EncodingError(f"{insn.mnemonic} immediate too wide: {src}")
    if isinstance(dst, GPR64) and isinstance(src, (GPR64, Mem)):
        w = _w_for(src if isinstance(src, Mem) else None)
        return _legacy_rm(bytes([rm_load]), dst.code, src, w=w)
    if isinstance(dst, Mem) and isinstance(src, GPR64):
        return _legacy_rm(bytes([rm_store]), src.code, dst, w=_w_for(dst))
    raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")


def _enc_test(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if isinstance(src, GPR64) and isinstance(dst, (GPR64, Mem)):
        return _legacy_rm(b"\x85", src.code, dst, w=1)
    raise EncodingError(f"unsupported test form: {insn}")


def _enc_imul(insn: Instruction) -> bytes:
    if len(insn.operands) == 2:
        dst, src = insn.operands
        if isinstance(dst, GPR64) and isinstance(src, (GPR64, Mem)):
            return _legacy_rm(b"\x0f\xaf", dst.code, src, w=1)
    else:
        dst, src, imm = insn.operands
        if (
            isinstance(dst, GPR64)
            and isinstance(src, (GPR64, Mem))
            and isinstance(imm, Imm)
        ):
            if imm.width == 8:
                return _legacy_rm(b"\x6b", dst.code, src, w=1) + _i8(imm.value)
            return _legacy_rm(b"\x69", dst.code, src, w=1) + _i32(imm.value)
    raise EncodingError(f"unsupported imul form: {insn}")


def _enc_unary(insn: Instruction) -> bytes:
    (dst,) = insn.operands
    table = {"inc": (b"\xff", 0), "dec": (b"\xff", 1), "neg": (b"\xf7", 3)}
    opcode, digit = table[insn.mnemonic]
    if isinstance(dst, (GPR64, Mem)):
        return _legacy_rm(opcode, digit, dst, w=1)
    raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")


def _enc_shift(insn: Instruction) -> bytes:
    dst, amount = insn.operands
    if isinstance(dst, (GPR64, Mem)) and isinstance(amount, Imm):
        digit = _SHIFT_DIGITS[insn.mnemonic]
        return _legacy_rm(b"\xc1", digit, dst, w=1) + _i8(amount.value)
    raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")


def _enc_lea(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if isinstance(dst, GPR64) and isinstance(src, Mem):
        return _legacy_rm(b"\x8d", dst.code, src, w=1)
    raise EncodingError(f"unsupported lea form: {insn}")


def _enc_xadd(insn: Instruction) -> bytes:
    dst, src = insn.operands
    if isinstance(dst, (Mem, GPR64)) and isinstance(src, GPR64):
        w = _w_for(dst if isinstance(dst, Mem) else None)
        return _legacy_rm(b"\x0f\xc1", src.code, dst, w=w, lock=insn.lock)
    raise EncodingError(f"unsupported xadd form: {insn}")


# ----------------------------------------------------------------------
# Vector encodings (VEX / EVEX)
# ----------------------------------------------------------------------

def _vector_prefix(
    insn_evex: bool,
    mmap: int,
    pp: int,
    w: int,
    vlen: int,
    reg: Register,
    vvvv_reg: Register | None,
    rm_op: Register | Mem,
    aaa: int = 0,
) -> tuple[bytes, int]:
    """Build the VEX/EVEX prefix; returns (prefix bytes, reg low bits)."""
    reg_low, reg_b3, reg_b4 = _reg_bits(reg)
    vvvv = vvvv_reg.code if vvvv_reg is not None else 0
    if isinstance(rm_op, Mem):
        enc = _MemEncoding(rm_op, allow_disp8=not insn_evex)
        x, b = enc.x, enc.b
        vsib_hi = enc.vsib_high
    else:
        rm_low, rm_b3, rm_b4 = _reg_bits(rm_op)
        x, b = rm_b4, rm_b3  # EVEX uses X as rm bit 4 for reg-reg forms
        vsib_hi = 0
    if insn_evex:
        v_hi = (vvvv >> 4) & 1 if vvvv_reg is not None else 0
        # For VSIB, EVEX.V' carries the index register's bit 4.
        if isinstance(rm_op, Mem) and rm_op.is_gather:
            v_hi = vsib_hi
        prefix = _evex(reg_b3, x, b, reg_b4, mmap, w, vvvv & 0xF, vlen, pp, v_hi, aaa)
    else:
        if reg_b4 or (vvvv >> 4):
            raise EncodingError("register 16-31 requires EVEX")
        prefix = _vex3(reg_b3, x, b, mmap, w, vvvv & 0xF, vlen, pp)
    return prefix, reg_low


def _vec_body(reg_low: int, rm_op: Register | Mem, evex: bool) -> bytes:
    if isinstance(rm_op, Mem):
        enc = _MemEncoding(rm_op, allow_disp8=not evex)
        return enc.modrm(reg_low) + enc.tail
    rm_low, _, _ = _reg_bits(rm_op)
    return bytes([0xC0 | ((reg_low & 7) << 3) | rm_low])


def _vlen_of(insn: Instruction) -> int:
    widths = [op.width for op in insn.operands if isinstance(op, VectorRegister)]
    if not widths:
        raise EncodingError(f"no vector operand in {insn}")
    return max(widths)


# mnemonic -> (map, pp, opcode, W)
_VEC_3OP = {
    "vxorps": (MAP_0F, PP_NONE, 0x57, 0),
    "vaddps": (MAP_0F, PP_NONE, 0x58, 0),
    "vmulps": (MAP_0F, PP_NONE, 0x59, 0),
    "vsubps": (MAP_0F, PP_NONE, 0x5C, 0),
    "vdivps": (MAP_0F, PP_NONE, 0x5E, 0),
    "vaddss": (MAP_0F, PP_F3, 0x58, 0),
    "vmulss": (MAP_0F, PP_F3, 0x59, 0),
    "vsubss": (MAP_0F, PP_F3, 0x5C, 0),
    "vhaddps": (MAP_0F, PP_F2, 0x7C, 0),
    "vfmadd231ps": (MAP_0F38, PP_66, 0xB8, 0),
    "vfmadd231ss": (MAP_0F38, PP_66, 0xB9, 0),
    "vpaddd": (MAP_0F, PP_66, 0xFE, 0),
    "vpmulld": (MAP_0F38, PP_66, 0x40, 0),
}

# mnemonic -> (map, pp, load opcode, store opcode)
_VEC_MOV = {
    "vmovups": (MAP_0F, PP_NONE, 0x10, 0x11),
    "vmovaps": (MAP_0F, PP_NONE, 0x28, 0x29),
    "vmovss": (MAP_0F, PP_F3, 0x10, 0x11),
    "vmovdqu32": (MAP_0F, PP_F3, 0x6F, 0x7F),
}


def _enc_vec_3op(insn: Instruction) -> bytes:
    mmap, pp, opcode, w = _VEC_3OP[insn.mnemonic]
    dst, src1, src2 = insn.operands
    if not isinstance(dst, VectorRegister) or not isinstance(src1, VectorRegister):
        raise EncodingError(f"unsupported form: {insn}")
    evex = _needs_evex(insn)
    if insn.mnemonic == "vhaddps" and evex:
        raise EncodingError("vhaddps has no EVEX form (xmm/ymm 0-15 only)")
    vlen = _vlen_of(insn)
    prefix, reg_low = _vector_prefix(evex, mmap, pp, w, vlen, dst, src1, src2)
    return prefix + bytes([opcode]) + _vec_body(reg_low, src2, evex)


def _enc_vec_mov(insn: Instruction) -> bytes:
    mmap, pp, load_op, store_op = _VEC_MOV[insn.mnemonic]
    dst, src = insn.operands
    evex = _needs_evex(insn)
    if isinstance(dst, VectorRegister):
        vlen = dst.width
        prefix, reg_low = _vector_prefix(evex, mmap, pp, 0, vlen, dst, None, src)
        return prefix + bytes([load_op]) + _vec_body(reg_low, src, evex)
    if isinstance(dst, Mem) and isinstance(src, VectorRegister):
        vlen = src.width
        prefix, reg_low = _vector_prefix(evex, mmap, pp, 0, vlen, src, None, dst)
        return prefix + bytes([store_op]) + _vec_body(reg_low, dst, evex)
    raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")


def _enc_broadcast(insn: Instruction) -> bytes:
    opcode = {"vbroadcastss": 0x18, "vpbroadcastd": 0x58}[insn.mnemonic]
    dst, src = insn.operands
    if not isinstance(dst, VectorRegister):
        raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")
    evex = _needs_evex(insn)
    prefix, reg_low = _vector_prefix(
        evex, MAP_0F38, PP_66, 0, dst.width, dst, None, src
    )
    return prefix + bytes([opcode]) + _vec_body(reg_low, src, evex)


def _enc_extract(insn: Instruction) -> bytes:
    # Destination is the ModRM.rm operand; source register supplies reg field.
    dst, src, imm = insn.operands
    if not isinstance(src, VectorRegister) or not isinstance(imm, Imm):
        raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")
    if insn.mnemonic == "vextractf128":
        opcode, w, vlen, evex = 0x19, 0, 256, _needs_evex(insn)
        if evex:
            raise EncodingError("vextractf128 with regs 16-31 unsupported; "
                                "use vextractf64x4")
    else:  # vextractf64x4
        opcode, w, vlen, evex = 0x1B, 1, 512, True
    if not isinstance(dst, (VectorRegister, Mem)):
        raise EncodingError(f"unsupported {insn.mnemonic} form: {insn}")
    prefix, reg_low = _vector_prefix(evex, MAP_0F3A, PP_66, w, vlen, src, None, dst)
    return prefix + bytes([opcode]) + _vec_body(reg_low, dst, evex) + _i8(imm.value)


def _enc_gather(insn: Instruction) -> bytes:
    dst, mem = insn.operands
    if not (isinstance(dst, VectorRegister) and isinstance(mem, Mem) and mem.is_gather):
        raise EncodingError(f"vgatherdps needs (vreg, vsib mem): {insn}")
    prefix, reg_low = _vector_prefix(
        True, MAP_0F38, PP_66, 0, dst.width, dst, None, mem, aaa=1
    )
    return prefix + bytes([0x92]) + _vec_body(reg_low, mem, evex=True)


def _enc_vpslld(insn: Instruction) -> bytes:
    # vpslld dst, src, imm8: VEX/EVEX.66.0F 72 /6 ib, with vvvv = destination.
    dst, src, imm = insn.operands
    if not (
        isinstance(dst, VectorRegister)
        and isinstance(src, VectorRegister)
        and isinstance(imm, Imm)
    ):
        raise EncodingError(f"unsupported vpslld form: {insn}")
    src_low, src_b3, src_b4 = _reg_bits(src)
    if _needs_evex(insn):
        prefix = _evex(
            0, src_b4, src_b3, 0, MAP_0F, 0,
            dst.code & 0xF, dst.width, PP_66, v_hi=(dst.code >> 4) & 1,
        )
    else:
        if dst.code >= 16 or src.code >= 16:
            raise EncodingError("register 16-31 requires EVEX")
        prefix = _vex3(0, 0, src_b3, MAP_0F, 0, dst.code, dst.width, PP_66)
    modrm = bytes([0xC0 | (6 << 3) | src_low])
    return prefix + b"\x72" + modrm + _i8(imm.value)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

def instruction_length(insn: Instruction) -> int:
    """Encoded length in bytes (branches use their fixed rel32 forms)."""
    if insn.mnemonic == "jmp":
        return 5
    if insn.mnemonic in _JCC_OPCODES:
        return 6
    return len(encode_instruction(insn, branch_rel=0))


def encode_instruction(insn: Instruction, branch_rel: int = 0) -> bytes:
    """Encode one instruction; ``branch_rel`` is the resolved rel32."""
    name = insn.mnemonic
    if name == "ret":
        return b"\xc3"
    if name == "nop":
        return b"\x90"
    if name == "jmp":
        return b"\xe9" + _i32(branch_rel)
    if name in _JCC_OPCODES:
        return bytes([0x0F, _JCC_OPCODES[name]]) + _i32(branch_rel)
    if name == "mov":
        return _enc_mov(insn)
    if name in _ALU_OPS:
        return _enc_alu(insn)
    if name == "test":
        return _enc_test(insn)
    if name == "imul":
        return _enc_imul(insn)
    if name in ("inc", "dec", "neg"):
        return _enc_unary(insn)
    if name in _SHIFT_DIGITS:
        return _enc_shift(insn)
    if name == "lea":
        return _enc_lea(insn)
    if name == "xadd":
        return _enc_xadd(insn)
    if name in _VEC_3OP:
        return _enc_vec_3op(insn)
    if name in _VEC_MOV:
        return _enc_vec_mov(insn)
    if name in ("vbroadcastss", "vpbroadcastd"):
        return _enc_broadcast(insn)
    if name in ("vextractf128", "vextractf64x4"):
        return _enc_extract(insn)
    if name == "vgatherdps":
        return _enc_gather(insn)
    if name == "vpslld":
        return _enc_vpslld(insn)
    raise EncodingError(f"no encoder for mnemonic {name!r}")


def encode_program(program: Program) -> bytes:
    """Encode a whole program, resolving branch displacements.

    Because branch encodings have fixed lengths, a single pass computes all
    instruction offsets, then a second pass fills in rel32 displacements.
    """
    offsets: list[int] = []
    cursor = 0
    lengths: list[int] = []
    for insn in program.instructions:
        offsets.append(cursor)
        length = instruction_length(insn)
        lengths.append(length)
        cursor += length
    end_offset = cursor

    def label_offset(index: int) -> int:
        return offsets[index] if index < len(offsets) else end_offset

    chunks: list[bytes] = []
    for i, insn in enumerate(program.instructions):
        target = insn.branch_target
        if target is not None:
            target_off = label_offset(program.target_index(target))
            rel = target_off - (offsets[i] + lengths[i])
            chunks.append(encode_instruction(insn, branch_rel=rel))
        else:
            chunks.append(encode_instruction(insn))
    return b"".join(chunks)
