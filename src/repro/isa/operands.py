"""Instruction operands: immediates and memory references.

A memory operand follows the x86-64 effective-address form
``[base + index*scale + disp]`` with an explicit access ``size`` in bytes.
The explicit size removes the ambiguity that real assemblers resolve with
``dword ptr`` annotations and lets the perf counters attribute the right
number of bytes to each access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.isa.registers import GPR64, Register, VectorRegister

__all__ = ["Imm", "Mem", "Operand"]

_VALID_SCALES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Imm:
    """An immediate integer operand.

    Attributes:
        value: The signed integer value.
        width: Encoded width in bits (8, 32 or 64); chosen automatically
            when omitted.
    """

    value: int
    width: int = 0

    def __post_init__(self) -> None:
        if self.width not in (0, 8, 32, 64):
            raise AssemblyError(f"unsupported immediate width {self.width}")
        width = self.width or self.natural_width(self.value)
        object.__setattr__(self, "width", width)

    @staticmethod
    def natural_width(value: int) -> int:
        if -(1 << 7) <= value < (1 << 7):
            return 8
        if -(1 << 31) <= value < (1 << 31):
            return 32
        if -(1 << 63) <= value < (1 << 64):
            return 64
        raise AssemblyError(f"immediate out of 64-bit range: {value}")

    def __repr__(self) -> str:
        return f"{self.value:#x}" if abs(self.value) > 9 else str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + index*scale + disp]`` of ``size`` bytes.

    ``index`` may be a general-purpose register, or a vector register for
    gather addressing (VSIB), in which case every 32-bit lane of the index
    register contributes one element address.
    """

    base: GPR64 | None
    index: Register | None = None
    scale: int = 1
    disp: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.base is None and self.index is None:
            raise AssemblyError("memory operand needs a base or index register")
        if self.base is not None and not isinstance(self.base, GPR64):
            raise AssemblyError(f"memory base must be a GPR, got {self.base}")
        if self.scale not in _VALID_SCALES:
            raise AssemblyError(f"invalid scale {self.scale}; must be 1/2/4/8")
        if self.size not in (1, 2, 4, 8, 16, 32, 64):
            raise AssemblyError(f"invalid access size {self.size}")
        if not -(1 << 31) <= self.disp < (1 << 31):
            raise AssemblyError(f"displacement out of 32-bit range: {self.disp}")

    @property
    def is_gather(self) -> bool:
        """True when the index register is a vector register (VSIB form)."""
        return isinstance(self.index, VectorRegister)

    def registers(self) -> tuple[Register, ...]:
        """The registers read to form the effective address."""
        parts: list[Register] = []
        if self.base is not None:
            parts.append(self.base)
        if self.index is not None:
            parts.append(self.index)
        return tuple(parts)

    def __repr__(self) -> str:
        inner = []
        if self.base is not None:
            inner.append(self.base.name)
        if self.index is not None:
            term = self.index.name
            if self.scale != 1:
                term += f"*{self.scale}"
            inner.append(term)
        if self.disp:
            inner.append(f"{self.disp:+#x}" if abs(self.disp) > 9 else f"{self.disp:+d}")
        body = " + ".join(inner).replace("+ -", "- ")
        return f"[{body}]{{{self.size}}}"


#: Union of things that may appear in an instruction's operand list.
Operand = Register | Imm | Mem | str  # str = label reference (branch target)
