"""Disassembler for the byte encodings produced by :mod:`repro.isa.encoder`.

Decodes machine code back into :class:`repro.isa.instructions.Instruction`
objects.  Branch targets come back as :class:`Imm` holding the *absolute
byte offset* of the target within the decoded buffer (labels cannot be
recovered from bytes).  The decoder is intentionally strict: it accepts
exactly the encoding choices our encoder makes and raises
:class:`DisassemblyError` on anything else, which turns any encoder
regression into a loud round-trip test failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DisassemblyError
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem
from repro.isa.registers import gpr, xmm, ymm, zmm

__all__ = ["DecodedInstruction", "decode_one", "disassemble"]

_VLEN_REG = {128: xmm, 256: ymm, 512: zmm}

_JCC_BY_OPCODE = {
    0x84: "je", 0x85: "jne", 0x82: "jb", 0x83: "jae", 0x86: "jbe",
    0x87: "ja", 0x8C: "jl", 0x8D: "jge", 0x8E: "jle", 0x8F: "jg",
}
_ALU_BY_RM_STORE = {0x01: "add", 0x09: "or", 0x21: "and", 0x29: "sub",
                    0x31: "xor", 0x39: "cmp"}
_ALU_BY_RM_LOAD = {0x03: "add", 0x0B: "or", 0x23: "and", 0x2B: "sub",
                   0x33: "xor", 0x3B: "cmp"}
_ALU_BY_DIGIT = {0: "add", 1: "or", 4: "and", 5: "sub", 6: "xor", 7: "cmp"}
_SHIFT_BY_DIGIT = {4: "shl", 5: "shr", 7: "sar"}

# (map, pp, opcode) -> (mnemonic, form); forms: "3op", "load", "store",
# "bcast", "extract", "gather", "shift_imm"
_VEC_BY_KEY = {
    (1, 0, 0x57): ("vxorps", "3op"),
    (1, 0, 0x58): ("vaddps", "3op"),
    (1, 0, 0x59): ("vmulps", "3op"),
    (1, 0, 0x5C): ("vsubps", "3op"),
    (1, 0, 0x5E): ("vdivps", "3op"),
    (1, 2, 0x58): ("vaddss", "3op"),
    (1, 2, 0x59): ("vmulss", "3op"),
    (1, 2, 0x5C): ("vsubss", "3op"),
    (1, 3, 0x7C): ("vhaddps", "3op"),
    (2, 1, 0xB8): ("vfmadd231ps", "3op"),
    (2, 1, 0xB9): ("vfmadd231ss", "3op"),
    (1, 1, 0xFE): ("vpaddd", "3op"),
    (2, 1, 0x40): ("vpmulld", "3op"),
    (1, 0, 0x10): ("vmovups", "load"),
    (1, 0, 0x11): ("vmovups", "store"),
    (1, 0, 0x28): ("vmovaps", "load"),
    (1, 0, 0x29): ("vmovaps", "store"),
    (1, 2, 0x10): ("vmovss", "load"),
    (1, 2, 0x11): ("vmovss", "store"),
    (1, 2, 0x6F): ("vmovdqu32", "load"),
    (1, 2, 0x7F): ("vmovdqu32", "store"),
    (2, 1, 0x18): ("vbroadcastss", "bcast"),
    (2, 1, 0x58): ("vpbroadcastd", "bcast"),
    (3, 1, 0x19): ("vextractf128", "extract"),
    (3, 1, 0x1B): ("vextractf64x4", "extract"),
    (2, 1, 0x92): ("vgatherdps", "gather"),
    (1, 1, 0x72): ("vpslld", "shift_imm"),
}


@dataclass(frozen=True)
class DecodedInstruction:
    """One decoded instruction plus its position in the byte stream."""

    offset: int
    length: int
    instruction: Instruction

    def __str__(self) -> str:
        return f"{self.offset:6d}: {self.instruction}"


class _Reader:
    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise DisassemblyError("unexpected end of code")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def peek(self) -> int:
        if self.pos >= len(self.data):
            raise DisassemblyError("unexpected end of code")
        return self.data[self.pos]

    def i8(self) -> int:
        value = self.u8()
        return value - 256 if value >= 128 else value

    def i32(self) -> int:
        raw = int.from_bytes(self._take(4), "little")
        return raw - (1 << 32) if raw >= (1 << 31) else raw

    def i64(self) -> int:
        raw = int.from_bytes(self._take(8), "little")
        return raw - (1 << 64) if raw >= (1 << 63) else raw

    def _take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise DisassemblyError("unexpected end of code")
        chunk = self.data[self.pos: self.pos + count]
        self.pos += count
        return chunk


@dataclass
class _ModRM:
    mod: int
    reg: int
    rm: int
    mem: Mem | None


def _read_modrm(
    reader: _Reader,
    rex_r: int,
    rex_x: int,
    rex_b: int,
    reg_hi: int = 0,
    mem_size: int = 8,
    vsib_width: int = 0,
    vsib_hi: int = 0,
    evex: bool = False,
) -> _ModRM:
    byte = reader.u8()
    mod, reg, rm = byte >> 6, (byte >> 3) & 7, byte & 7
    reg_code = reg | (rex_r << 3) | (reg_hi << 4)
    if mod == 3:
        return _ModRM(mod, reg_code, rm | (rex_b << 3), None)
    base = index = None
    scale = 1
    if rm == 4:
        sib = reader.u8()
        scale = 1 << (sib >> 6)
        index_code = ((sib >> 3) & 7) | (rex_x << 3)
        base_code = (sib & 7) | (rex_b << 3)
        if vsib_width:
            index = _VLEN_REG[vsib_width](index_code | (vsib_hi << 4))
        elif index_code != 4:
            index = gpr(index_code)
        if (sib & 7) == 5 and mod == 0:
            base = None  # disp32, no base
        else:
            base = gpr(base_code)
    else:
        base = gpr(rm | (rex_b << 3))
    if mod == 1:
        if evex:
            raise DisassemblyError("EVEX disp8 not produced by our encoder")
        disp = reader.i8()
    elif mod == 2 or (mod == 0 and base is None):
        disp = reader.i32()
    else:
        disp = 0
    if scale == 1 and index is None and base is not None and vsib_width == 0:
        mem = Mem(base, None, 1, disp, mem_size)
    else:
        mem = Mem(base, index, scale, disp, mem_size)
    return _ModRM(mod, reg_code, 0, mem)


def _gpr_or_mem(modrm: _ModRM, rex_b: int):
    if modrm.mem is not None:
        return modrm.mem
    return gpr(modrm.rm)


def _decode_legacy(reader: _Reader, offset: int, lock: bool) -> Instruction:
    rex_w = rex_r = rex_x = rex_b = 0
    byte = reader.u8()
    if 0x40 <= byte <= 0x4F:
        rex_w, rex_r, rex_x, rex_b = (
            (byte >> 3) & 1, (byte >> 2) & 1, (byte >> 1) & 1, byte & 1
        )
        byte = reader.u8()
    size = 8 if rex_w else 4

    def rm_modrm(mem_size: int = size) -> _ModRM:
        return _read_modrm(reader, rex_r, rex_x, rex_b, mem_size=mem_size)

    if byte == 0xC3:
        return Instruction("ret")
    if byte == 0x90:
        return Instruction("nop")
    if byte == 0xE9:
        rel = reader.i32()
        return Instruction("jmp", (Imm(reader.pos + rel, 64),))
    if byte == 0x0F:
        second = reader.u8()
        if second in _JCC_BY_OPCODE:
            rel = reader.i32()
            return Instruction(_JCC_BY_OPCODE[second], (Imm(reader.pos + rel, 64),))
        if second == 0xAF:
            modrm = rm_modrm()
            return Instruction("imul", (gpr(modrm.reg), _gpr_or_mem(modrm, rex_b)))
        if second == 0xC1:
            modrm = rm_modrm()
            return Instruction(
                "xadd", (_gpr_or_mem(modrm, rex_b), gpr(modrm.reg)), lock=lock
            )
        raise DisassemblyError(f"unknown 0F opcode {second:#x} at {offset}")
    if 0xB8 <= byte <= 0xBF:
        reg_code = (byte - 0xB8) | (rex_b << 3)
        return Instruction("mov", (gpr(reg_code), Imm(reader.i64(), 64)))
    if byte == 0xC7:
        modrm = rm_modrm()
        return Instruction("mov", (_gpr_or_mem(modrm, rex_b), Imm(reader.i32(), 32)))
    if byte == 0x8B:
        modrm = rm_modrm()
        return Instruction("mov", (gpr(modrm.reg), _gpr_or_mem(modrm, rex_b)))
    if byte == 0x89:
        modrm = rm_modrm()
        return Instruction("mov", (_gpr_or_mem(modrm, rex_b), gpr(modrm.reg)))
    if byte in _ALU_BY_RM_LOAD:
        modrm = rm_modrm()
        return Instruction(
            _ALU_BY_RM_LOAD[byte], (gpr(modrm.reg), _gpr_or_mem(modrm, rex_b))
        )
    if byte in _ALU_BY_RM_STORE:
        modrm = rm_modrm()
        return Instruction(
            _ALU_BY_RM_STORE[byte], (_gpr_or_mem(modrm, rex_b), gpr(modrm.reg))
        )
    if byte in (0x83, 0x81):
        modrm = rm_modrm()
        width = 8 if byte == 0x83 else 32
        value = reader.i8() if byte == 0x83 else reader.i32()
        mnemonic = _ALU_BY_DIGIT.get(modrm.reg & 7)
        if mnemonic is None:
            raise DisassemblyError(f"unknown group-1 digit {modrm.reg & 7}")
        return Instruction(mnemonic, (_gpr_or_mem(modrm, rex_b), Imm(value, width)))
    if byte == 0x85:
        modrm = rm_modrm()
        return Instruction("test", (_gpr_or_mem(modrm, rex_b), gpr(modrm.reg)))
    if byte in (0x6B, 0x69):
        modrm = rm_modrm()
        value = reader.i8() if byte == 0x6B else reader.i32()
        width = 8 if byte == 0x6B else 32
        return Instruction(
            "imul", (gpr(modrm.reg), _gpr_or_mem(modrm, rex_b), Imm(value, width))
        )
    if byte == 0xFF:
        modrm = rm_modrm()
        if (modrm.reg & 7) == 0:
            return Instruction("inc", (_gpr_or_mem(modrm, rex_b),))
        if (modrm.reg & 7) == 1:
            return Instruction("dec", (_gpr_or_mem(modrm, rex_b),))
        raise DisassemblyError(f"unknown FF digit {modrm.reg & 7}")
    if byte == 0xF7:
        modrm = rm_modrm()
        if (modrm.reg & 7) == 3:
            return Instruction("neg", (_gpr_or_mem(modrm, rex_b),))
        raise DisassemblyError(f"unknown F7 digit {modrm.reg & 7}")
    if byte == 0xC1:
        modrm = rm_modrm()
        mnemonic = _SHIFT_BY_DIGIT.get(modrm.reg & 7)
        if mnemonic is None:
            raise DisassemblyError(f"unknown shift digit {modrm.reg & 7}")
        return Instruction(mnemonic, (_gpr_or_mem(modrm, rex_b), Imm(reader.i8(), 8)))
    if byte == 0x8D:
        modrm = rm_modrm()
        if modrm.mem is None:
            raise DisassemblyError("lea needs a memory operand")
        return Instruction("lea", (gpr(modrm.reg), modrm.mem))
    raise DisassemblyError(f"unknown opcode {byte:#x} at offset {offset}")


def _decode_vex(reader: _Reader) -> Instruction:
    assert reader.u8() == 0xC4
    byte1 = reader.u8()
    byte2 = reader.u8()
    rex_r, rex_x, rex_b = (byte1 >> 7) ^ 1, ((byte1 >> 6) & 1) ^ 1, ((byte1 >> 5) & 1) ^ 1
    mmap = byte1 & 0x1F
    vvvv = (~(byte2 >> 3)) & 0xF
    vlen = 256 if (byte2 >> 2) & 1 else 128
    pp = byte2 & 3
    opcode = reader.u8()
    return _decode_vector(
        reader, mmap, pp, opcode, vlen, vvvv,
        rex_r, rex_x, rex_b, reg_hi=0, v_hi=0, evex=False,
    )


def _decode_evex(reader: _Reader) -> Instruction:
    assert reader.u8() == 0x62
    p0, p1, p2 = reader.u8(), reader.u8(), reader.u8()
    rex_r, rex_x, rex_b = (p0 >> 7) ^ 1, ((p0 >> 6) & 1) ^ 1, ((p0 >> 5) & 1) ^ 1
    reg_hi = ((p0 >> 4) & 1) ^ 1
    mmap = p0 & 3
    vvvv = (~(p1 >> 3)) & 0xF
    pp = p1 & 3
    vlen = {0: 128, 1: 256, 2: 512}[(p2 >> 5) & 3]
    v_hi = ((p2 >> 3) & 1) ^ 1
    opcode = reader.u8()
    return _decode_vector(
        reader, mmap, pp, opcode, vlen, vvvv,
        rex_r, rex_x, rex_b, reg_hi, v_hi, evex=True,
    )


def _decode_vector(
    reader: _Reader,
    mmap: int,
    pp: int,
    opcode: int,
    vlen: int,
    vvvv: int,
    rex_r: int,
    rex_x: int,
    rex_b: int,
    reg_hi: int,
    v_hi: int,
    evex: bool,
) -> Instruction:
    entry = _VEC_BY_KEY.get((mmap, pp, opcode))
    if entry is None:
        raise DisassemblyError(
            f"unknown vector opcode map={mmap} pp={pp} op={opcode:#x}"
        )
    mnemonic, form = entry
    make_reg = _VLEN_REG[vlen]
    scalar = mnemonic in ("vmovss", "vaddss", "vmulss", "vsubss", "vfmadd231ss")
    if scalar:
        make_reg = xmm
    mem_size = 4 if scalar or form in ("bcast", "gather") else vlen // 8
    if mnemonic in ("vextractf128", "vextractf64x4"):
        mem_size = 16 if mnemonic == "vextractf128" else 32
    vsib_width = vlen if form == "gather" else 0

    modrm = _read_modrm(
        reader, rex_r, rex_x, rex_b, reg_hi,
        mem_size=mem_size, vsib_width=vsib_width,
        vsib_hi=(v_hi if form == "gather" else 0), evex=evex,
    )
    if modrm.mem is not None:
        rm_operand: Mem | object = modrm.mem
    else:
        rm_code = modrm.rm | ((rex_x << 4) if evex else 0)
        rm_operand = make_reg(rm_code)
        if evex:
            # For reg-reg EVEX, X carries rm bit 4 (already folded above) and
            # B carries bit 3.
            rm_operand = make_reg((modrm.rm & 0xF) | (rex_x << 4))
    reg_operand = make_reg(modrm.reg)

    if form == "3op":
        vvvv_code = vvvv | ((v_hi << 4) if evex else 0)
        src1 = make_reg(vvvv_code)
        return Instruction(mnemonic, (reg_operand, src1, rm_operand))
    if form == "load":
        if mnemonic == "vmovss":
            reg_operand = xmm(modrm.reg)
        return Instruction(mnemonic, (reg_operand, rm_operand))
    if form == "store":
        if mnemonic == "vmovss":
            reg_operand = xmm(modrm.reg)
        return Instruction(mnemonic, (rm_operand, reg_operand))
    if form == "bcast":
        src = rm_operand if modrm.mem is not None else xmm(
            rm_operand.code if hasattr(rm_operand, "code") else 0
        )
        return Instruction(mnemonic, (reg_operand, src))
    if form == "extract":
        imm = Imm(reader.i8(), 8)
        dst_width = 128 if mnemonic == "vextractf128" else 256
        src_width = 256 if mnemonic == "vextractf128" else 512
        src = _VLEN_REG[src_width](modrm.reg)
        if modrm.mem is not None:
            dst: Mem | object = modrm.mem
        else:
            dst = _VLEN_REG[dst_width](rm_operand.code)
        return Instruction(mnemonic, (dst, src, imm))
    if form == "gather":
        if modrm.mem is None:
            raise DisassemblyError("vgatherdps requires a memory operand")
        return Instruction(mnemonic, (reg_operand, modrm.mem))
    if form == "shift_imm":
        imm = Imm(reader.i8(), 8)
        dst_code = vvvv | ((v_hi << 4) if evex else 0)
        src = rm_operand
        return Instruction(mnemonic, (make_reg(dst_code), src, imm))
    raise DisassemblyError(f"unhandled form {form!r}")


def decode_one(data: bytes, offset: int = 0) -> DecodedInstruction:
    """Decode a single instruction starting at ``offset``."""
    reader = _Reader(data, offset)
    lock = False
    if reader.peek() == 0xF0:
        reader.u8()
        lock = True
    first = reader.peek()
    if first == 0xC4:
        insn = _decode_vex(reader)
    elif first == 0x62:
        insn = _decode_evex(reader)
    else:
        insn = _decode_legacy(reader, offset, lock)
        return DecodedInstruction(offset, reader.pos - offset, insn)
    if lock:
        raise DisassemblyError("LOCK prefix on vector instruction")
    return DecodedInstruction(offset, reader.pos - offset, insn)


def disassemble(data: bytes) -> list[DecodedInstruction]:
    """Decode an entire byte buffer into a list of instructions."""
    decoded: list[DecodedInstruction] = []
    offset = 0
    while offset < len(data):
        item = decode_one(data, offset)
        decoded.append(item)
        offset += item.length
    return decoded
