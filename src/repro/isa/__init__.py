"""x86-64 instruction-set subset: registers, operands, assembler, encoder.

This subpackage models the slice of x86-64 that SpMM kernels need — the
general-purpose registers, the SSE2/AVX2/AVX-512 vector registers
(XMM/YMM/ZMM with aliasing), memory operands, a two-pass assembler with
labels, a machine-code encoder (REX / VEX / EVEX), and a disassembler that
round-trips the encoder's output.

The simulator (:mod:`repro.machine`) executes :class:`Instruction` objects
directly; the byte encoder exists so that generated kernels are *real*
machine code (inspectable, measurable, round-trippable), exactly as the
paper's AsmJit-based generator produces.
"""

from repro.isa.assembler import Assembler, Label, Program
from repro.isa.instructions import Instruction, MnemonicInfo, mnemonic_info
from repro.isa.isainfo import IsaLevel, VEC_LANES_F32
from repro.isa.operands import Imm, Mem
from repro.isa.registers import (
    GPR64,
    Register,
    RegisterFile,
    VectorRegister,
    gpr,
    xmm,
    ymm,
    zmm,
)

__all__ = [
    "Assembler",
    "GPR64",
    "Imm",
    "Instruction",
    "IsaLevel",
    "Label",
    "Mem",
    "MnemonicInfo",
    "Program",
    "Register",
    "RegisterFile",
    "VEC_LANES_F32",
    "VectorRegister",
    "gpr",
    "mnemonic_info",
    "xmm",
    "ymm",
    "zmm",
]
