"""Deterministic fault injection: seeded, serializable failure plans.

The serving stack survives crashes, hangs, dropped connections and
resource exhaustion — but none of those are reproducible on demand
without this module.  A :class:`FaultPlan` is a *schedule* of injection
points: a seed plus a tuple of :class:`FaultRule` entries naming where
(``site``), how often (``probability`` drawn from a per-site seeded
stream), and how many times (``after`` / ``max_fires``) a fault fires.
Production code calls :func:`check` at named hooks; with no plan
installed that is one dict lookup returning ``None``, so the hooks are
free in normal operation.

Injection sites honored by the gateway stack:

========================  ====================================================
site                      effect at the hook
========================  ====================================================
``worker.hang``           the worker sleeps ``hang_seconds`` mid-request
                          (the gateway watchdog declares it hung and kills it)
``worker.crash``          the worker process exits immediately
                          (``os._exit``), exercising crash recovery
``conn.drop``             the client closes its socket before reading the
                          reply, exercising reconnect + retry
``shm.exhaust``           gateway admission behaves as if every shared-memory
                          slot were in flight (typed ``GatewayOverloaded``)
``codegen.raise``         the worker raises a typed ``CodegenError`` instead
                          of serving the request
``reply.delay``           the gateway delays the reply write by ``delay_ms``
========================  ====================================================

Activation is explicit (:func:`install_plan` /
:meth:`~repro.serve.gateway.Gateway.set_fault_plan`, which broadcasts
to worker processes) or environmental: ``REPRO_FAULT_PLAN`` holding
either inline JSON or a path to a JSON file is picked up lazily by
every process that evaluates a hook — worker processes inherit the
variable, so one env var arms the whole fleet.

Determinism: each site draws from its own ``random.Random`` stream
seeded from ``(plan seed, site)``, and per-site evaluation counters are
serialized under one lock, so a single-threaded request sequence fires
identically run over run.  Concurrent storms stay *seeded* (same plan,
same marginal rates) even though thread interleaving can reorder which
request absorbs a fault.  Every fire emits a ``fault.inject`` span and
increments ``faults_injected_total{site=...}``.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from random import Random

from repro.errors import FaultConfigError
from repro.obs.metrics import get_registry
from repro.obs.trace import span as _span

__all__ = [
    "ENV_VAR",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "check",
    "clear_plan",
    "fires",
    "install_plan",
    "plan_from_env",
]

#: the injection points the serving stack honors
SITES = frozenset({
    "worker.hang",
    "worker.crash",
    "conn.drop",
    "shm.exhaust",
    "codegen.raise",
    "reply.delay",
})

#: inline JSON or a path to a JSON file holding a serialized plan
ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: where, how often, how many times.

    Attributes:
        site: Injection point (one of :data:`SITES`).
        probability: Chance an eligible evaluation fires, drawn from
            the plan's per-site seeded stream.  1.0 (default) fires on
            every eligible evaluation — fully deterministic.
        max_fires: Cap on total fires of this rule per process
            (``None`` = unlimited).  Bounded plans go quiet on their
            own, which is what lets a chaos run measure *recovery*.
        after: Skip the first ``after`` evaluations at this site before
            the rule becomes eligible (lets setup traffic through).
        hang_seconds: Sleep length for ``worker.hang`` (should exceed
            the gateway's hang threshold, or nothing interesting
            happens).
        delay_ms: Added latency for ``reply.delay``.
    """

    site: str
    probability: float = 1.0
    max_fires: int | None = 1
    after: int = 0
    hang_seconds: float = 30.0
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultConfigError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{sorted(SITES)}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultConfigError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultConfigError(
                f"max_fires must be positive or None, got {self.max_fires}")
        if self.after < 0:
            raise FaultConfigError(
                f"after must be non-negative, got {self.after}")
        if self.hang_seconds <= 0:
            raise FaultConfigError(
                f"hang_seconds must be positive, got {self.hang_seconds}")
        if self.delay_ms < 0:
            raise FaultConfigError(
                f"delay_ms must be non-negative, got {self.delay_ms}")

    def to_dict(self) -> dict:
        return {
            "site": self.site, "probability": self.probability,
            "max_fires": self.max_fires, "after": self.after,
            "hang_seconds": self.hang_seconds, "delay_ms": self.delay_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict):
            raise FaultConfigError(
                f"fault rule must be an object, got {type(data).__name__}")
        known = {"site", "probability", "max_fires", "after",
                 "hang_seconds", "delay_ms"}
        unknown = set(data) - known
        if unknown:
            raise FaultConfigError(
                f"unknown fault-rule fields {sorted(unknown)}")
        if "site" not in data:
            raise FaultConfigError("fault rule is missing its site")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of fault injections."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultConfigError(
                    f"rules must be FaultRule instances, got "
                    f"{type(rule).__name__}")

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultConfigError(
                f"fault plan must be an object, got {type(data).__name__}")
        unknown = set(data) - {"seed", "rules"}
        if unknown:
            raise FaultConfigError(
                f"unknown fault-plan fields {sorted(unknown)}")
        rules = tuple(FaultRule.from_dict(entry)
                      for entry in data.get("rules", ()))
        return cls(seed=int(data.get("seed", 0)), rules=rules)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise FaultConfigError(f"fault plan is not valid JSON: {error}")
        return cls.from_dict(data)

    def describe(self) -> str:
        if not self.rules:
            return f"fault plan (seed {self.seed}): empty"
        lines = [f"fault plan (seed {self.seed}):"]
        for rule in self.rules:
            cap = ("unlimited" if rule.max_fires is None
                   else f"<= {rule.max_fires}x")
            lines.append(f"  {rule.site}: p={rule.probability:g} "
                         f"after {rule.after} ({cap})")
        return "\n".join(lines)


@dataclass
class _RuleState:
    rule: FaultRule
    fires: int = 0


@dataclass
class _SiteState:
    rng: Random
    evaluations: int = 0
    fired: int = 0
    states: list[_RuleState] = field(default_factory=list)


class FaultInjector:
    """Evaluates one plan's rules at hook sites, deterministically.

    Per-site state (an evaluation counter and a dedicated seeded RNG)
    lives behind one lock; :meth:`check` is the only hot entry point
    and sites without rules return before taking it.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._sites: dict[str, _SiteState] = {}
        registry = get_registry()
        self._counters = {}
        for rule in plan.rules:
            state = self._sites.get(rule.site)
            if state is None:
                state = _SiteState(rng=Random(f"{plan.seed}:{rule.site}"))
                self._sites[rule.site] = state
                self._counters[rule.site] = registry.counter(
                    "faults_injected_total", site=rule.site)
            state.states.append(_RuleState(rule))

    def check(self, site: str, **context) -> FaultRule | None:
        """The rule that fires at ``site`` for this evaluation, if any."""
        state = self._sites.get(site)
        if state is None:
            return None
        with self._lock:
            state.evaluations += 1
            for rule_state in state.states:
                rule = rule_state.rule
                if (rule.max_fires is not None
                        and rule_state.fires >= rule.max_fires):
                    continue
                if state.evaluations <= rule.after:
                    continue
                if (rule.probability < 1.0
                        and state.rng.random() >= rule.probability):
                    continue
                rule_state.fires += 1
                state.fired += 1
                fired = rule
                break
            else:
                return None
        self._counters[site].inc()
        with _span("fault.inject", site=site, **context):
            pass
        return fired

    def fires(self) -> dict[str, int]:
        """Total fires per site in this process so far."""
        with self._lock:
            return {site: state.fired
                    for site, state in self._sites.items() if state.fired}

    def exhausted(self) -> bool:
        """True when every rule has hit its ``max_fires`` cap."""
        with self._lock:
            return all(
                rule_state.rule.max_fires is not None
                and rule_state.fires >= rule_state.rule.max_fires
                for state in self._sites.values()
                for rule_state in state.states)


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_lock = threading.Lock()
_injector: FaultInjector | None = None
_env_checked = False


def plan_from_env() -> FaultPlan | None:
    """The plan named by ``REPRO_FAULT_PLAN`` (inline JSON or a path)."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return None
    if not raw.lstrip().startswith("{"):
        try:
            with open(raw) as handle:
                raw = handle.read()
        except OSError as error:
            raise FaultConfigError(
                f"{ENV_VAR}={raw!r} is neither inline JSON nor a "
                f"readable file: {error}")
    return FaultPlan.from_json(raw)


def install_plan(plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` process-wide; returns its live injector."""
    global _injector, _env_checked
    injector = FaultInjector(plan)
    with _lock:
        _injector = injector
        _env_checked = True          # explicit install beats the env var
    return injector


def clear_plan() -> None:
    """Disarm fault injection in this process (env var included)."""
    global _injector, _env_checked
    with _lock:
        _injector = None
        _env_checked = True


def reset_inherited_state() -> None:
    """Forget any plan (and env verdict) copied in by ``fork``.

    A forked child inherits this module's state wholesale — an
    installed injector, its partially-consumed counters, even a lock a
    parent thread held mid-``check``.  Worker processes call this at
    birth so that only an explicit plan (spawn argument or gateway
    broadcast) or their *own* read of the environment variable arms
    them — the same behaviour the spawn start method gets for free.
    """
    global _lock, _injector, _env_checked
    _lock = threading.Lock()
    _injector = None
    _env_checked = False


def active_plan() -> FaultPlan | None:
    injector = _get_injector()
    return injector.plan if injector is not None else None


def _get_injector() -> FaultInjector | None:
    global _injector, _env_checked
    if _env_checked:
        return _injector
    with _lock:
        if not _env_checked:
            _env_checked = True
            plan = plan_from_env()
            if plan is not None:
                _injector = FaultInjector(plan)
    return _injector


def check(site: str, **context) -> FaultRule | None:
    """Evaluate ``site`` against the active plan (``None`` = no fault).

    The no-plan fast path is one global read — hooks cost nothing in
    normal operation.
    """
    injector = _get_injector()
    if injector is None:
        return None
    return injector.check(site, **context)


def fires() -> dict[str, int]:
    """Fires per site under the active plan (empty without one)."""
    injector = _get_injector()
    return injector.fires() if injector is not None else {}
