"""Closed-form event counts for the generated JIT kernels.

Because the JIT kernels are straight-line loops with no data-dependent
control flow beyond the loop bounds, every perf event is an exact affine
function of the workload: rows processed, non-zeros processed, batches
fetched.  This module states those functions explicitly; the test suite
asserts they agree *exactly* with the simulator's measured counts, which
pins down both the code generator and the interpreter (a disagreement
means one of them changed shape).

The model also enables large-scale estimation: counts for a billion-edge
matrix cost O(1) to predict even though simulating it is infeasible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.codegen import JitKernelSpec
from repro.core.layout import tile_columns
from repro.isa.isainfo import isa_spec

__all__ = ["AnalyticCounts", "jit_dynamic_counts", "jit_range_counts",
           "mkl_counts"]


@dataclass(frozen=True)
class AnalyticCounts:
    """Predicted event counts for one thread's kernel execution."""

    instructions: int
    memory_loads: int
    memory_stores: int
    branches: int
    atomic_ops: int = 0

    def per_nnz(self, nnz: int) -> float:
        return self.instructions / nnz if nnz else 0.0


def _row_body_counts(spec: JitKernelSpec) -> tuple[int, int, int, int, int]:
    """Per-row and per-nnz terms of the Listing-2 body.

    Returns ``(per_row_insns, per_row_loads, per_row_stores,
    per_nnz_insns, per_nnz_loads)``; branch terms are derived by the
    callers from the loop trip counts.
    """
    tiles = tile_columns(spec.d, spec.isa)
    isa = isa_spec(spec.isa)
    per_row_insns = per_row_loads = per_row_stores = 0
    per_nnz_insns = per_nnz_loads = 0
    for tile in tiles:
        pieces = tile.layout.num_accumulators
        # per tile, per row: P vxorps + 2 row_ptr loads + 3 Y-address ops
        # + the final P stores + the loop-exit check (cmp, jge)
        per_row_insns += pieces + 2 + 3 + pieces + 2
        per_row_loads += 2
        per_row_stores += pieces
        # per non-zero: cmp, jge, col load, broadcast, imul, add, inc, jmp
        # plus the accumulation instructions
        if isa.has_fma:
            accumulate = pieces  # one FMA per piece
        else:
            # scalar fallback: vmulss + vaddss per piece
            accumulate = 2 * pieces
        per_nnz_insns += 8 + accumulate
        per_nnz_loads += 2 + pieces  # col + broadcast + one per piece
    return per_row_insns, per_row_loads, per_row_stores, per_nnz_insns, per_nnz_loads


def jit_range_counts(spec: JitKernelSpec, rows: int, nnz: int) -> AnalyticCounts:
    """Counts for the range kernel over ``rows`` rows holding ``nnz`` nnz."""
    tiles = len(tile_columns(spec.d, spec.isa))
    pr_i, pr_l, pr_s, pn_i, pn_l = _row_body_counts(spec)
    prologue = 5 + 1  # five base movs + mov rdi, rsi
    # row loop: head (cmp+jge) rows+1 times, latch (inc+jmp) rows times
    insns = (
        prologue
        + 2 * (rows + 1) + 2 * rows
        + pr_i * rows + pn_i * nnz
        + 1  # ret
    )
    loads = pr_l * rows + pn_l * nnz
    stores = pr_s * rows
    # branches: row head jge (rows+1) + row latch jmp (rows), then per
    # tile the nnz loop runs its jge (nnz+1) times per row (= nnz + rows
    # summed) and its back-edge jmp nnz times; finally ret.
    branches = (rows + 1) + rows + tiles * (nnz + rows) + tiles * nnz + 1
    return AnalyticCounts(insns, loads, stores, branches)


def jit_dynamic_counts(spec: JitKernelSpec, threads: int,
                       rows: int, nnz: int) -> AnalyticCounts:
    """Counts for the Listing-1 dynamic kernel, summed over all threads.

    Dynamic dispatch adds a fixed cost per *fetched batch*: exactly
    ``ceil(m / batch)`` productive fetches happen machine-wide, plus one
    final empty fetch per thread that observes ``NEXT >= m`` and exits.
    """
    tiles = len(tile_columns(spec.d, spec.isa))
    pr_i, pr_l, pr_s, pn_i, pn_l = _row_body_counts(spec)
    batches = math.ceil(rows / spec.batch) if rows else 0
    full_batches = rows // spec.batch
    partial = rows - full_batches * spec.batch

    prologue_per_thread = 5 + 1  # bases + NEXT address
    # per productive fetch: mov batch, xadd, cmp, jge(not taken),
    # then clamp: mov r15, add, cmp, jle, and mov rdi = 9 instructions;
    # the clamping "mov r15, m" executes only for the final partial batch
    per_fetch = 9
    clamp_movs = 1 if partial else 0
    # per exiting fetch: mov batch, xadd, cmp, jge taken = 4, + ret
    per_exit = 4 + 1
    # batch row loop: per batch the head (cmp+jge) runs batch_rows+1
    # times and the latch (inc+jmp) batch_rows times
    insns = (
        threads * prologue_per_thread
        + batches * per_fetch + clamp_movs
        + threads * per_exit
        + (rows + batches) * 2 + rows * 2
        + pr_i * rows + pn_i * nnz
    )
    loads = pr_l * rows + pn_l * nnz + (batches + threads)  # xadd reads
    stores = pr_s * rows + (batches + threads)  # xadd writes
    branches = (
        (batches + threads)           # fetch jge end
        + batches                     # jle clamp check
        + (rows + batches) + rows     # batch row-loop jge + back-edge jmp
        + tiles * (nnz + rows)        # nnz-loop jge (per tile)
        + tiles * nnz                 # nnz-loop back-edge jmp (per tile)
        + threads                     # ret
    )
    atomic = batches + threads
    return AnalyticCounts(insns, loads, stores, branches, atomic_ops=atomic)


def mkl_counts(d: int, rows: int, nnz: int, lanes: int = 16,
               threads: int = 1) -> AnalyticCounts:
    """Exact event counts for the MKL-like kernel (``repro.aot.mkl``).

    The kernel's loops are data-independent given ``(d, rows, nnz)``:
    per row it zeroes the output in ``s = d // lanes`` strips plus a
    ``r = d % lanes`` scalar tail, then for every non-zero runs the same
    strip + tail structure with a load-FMA-store through memory.
    """
    s, r = d // lanes, d % lanes
    per_thread_prologue = 6 + 2 + 1  # param block loads + rbp mask + vxorps
    per_row = (
        2          # row head cmp, jge (the +1 trips are counted below)
        + 2 + 4    # start/end loads + ycur computation
        + 1        # zero cursor reset
        + 2 * (s + 1) + 3 * s          # zero strip loop head + body
        + 2 * (r + 1) + 3 * r          # zero scalar tail head + body
        + 2        # idx loop exit check (cmp, jge at nnz_i+1-th trip)
        + 2        # row_next inc, jmp
    )
    per_nnz = (
        2          # idx head cmp, jge (taken trips)
        + 5        # col load, broadcast, imul, shl, add
        + 1        # js cursor reset
        + 2 * (s + 1) + 6 * s          # strip loop head + body
        + 2 * (r + 1) + 6 * r          # scalar tail head + body
        + 2        # idx_next inc, jmp
    )
    insns = (
        threads * (per_thread_prologue + 2 + 1)  # + final row head + ret
        + per_row * rows + per_nnz * nnz
    )
    loads = (
        threads * 6                     # param block
        + 2 * rows                      # row_ptr start/end
        + nnz * (2 + 2 * s + 2 * r)     # col + broadcast + X/Y per strip
    )
    stores = rows * (s + r) + nnz * (s + r)   # zeroing + accumulation
    branches = (
        threads * 1                                  # ret
        + (rows + threads) + rows                    # row loop jge + jmp
        + rows * ((s + 1) + s + (r + 1) + r)         # zero loops
        + (nnz + rows)                               # idx head jge
        + nnz                                        # idx_next jmp
        + nnz * ((s + 1) + s + (r + 1) + r)          # js loops
    )
    return AnalyticCounts(insns, loads, stores, branches)
