"""Output-row register layout: the paper's Figure 8.

Given the runtime column count ``d``, decompose the output row vector
``ret[0:d]`` into a linear combination of register-sized pieces —
16 lanes (ZMM), 8 (YMM), 4 (XMM), 1 (scalar) — "while using the fewest
number of registers possible" (paper §IV-D.1).  For ``d = 45`` on
AVX-512 this yields ``16(ZMM0) + 16(ZMM1) + 8(YMM2) + 4(XMM3) +
1(XMM4)``, exactly the paper's example.

When ``d`` exceeds what the register file can hold (more pieces than
available accumulators), :func:`tile_columns` splits the row into column
tiles that each fit — the natural extension of coarse-grain column
merging for wide dense matrices (each tile re-walks the row's non-zeros).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodegenError
from repro.isa.isainfo import IsaLevel, IsaSpec, isa_spec
from repro.isa.registers import VectorRegister, xmm, ymm, zmm

__all__ = ["ColumnTile", "Piece", "RowLayout", "plan_layout", "tile_columns"]

_LANES_TO_REG = {16: zmm, 8: ymm, 4: xmm, 1: xmm}


@dataclass(frozen=True)
class Piece:
    """One accumulator piece: ``ret[offset : offset + lanes]``."""

    offset: int
    lanes: int
    code: int

    @property
    def register(self) -> VectorRegister:
        return _LANES_TO_REG[self.lanes](self.code)

    @property
    def is_scalar(self) -> bool:
        return self.lanes == 1


@dataclass(frozen=True)
class RowLayout:
    """Full register plan for accumulating one output row slice."""

    d: int
    isa: IsaSpec
    pieces: tuple[Piece, ...]
    broadcast_code: int

    @property
    def broadcast(self) -> VectorRegister:
        """Register holding the broadcast non-zero value (ZMM31-style)."""
        widest = max((p.lanes for p in self.pieces), default=1)
        return _LANES_TO_REG[widest](self.broadcast_code)

    @property
    def scratch_code(self) -> int:
        """Second reserved register (scalar multiply temp without FMA)."""
        return self.broadcast_code - 1

    @property
    def num_accumulators(self) -> int:
        return len(self.pieces)

    def covered(self) -> int:
        return sum(p.lanes for p in self.pieces)


def decompose(d: int, spec: IsaSpec) -> list[int]:
    """Greedy minimal decomposition of ``d`` into piece widths."""
    widths = [w // 32 for w in spec.register_widths()] + [1]
    remaining = d
    sizes: list[int] = []
    for width in widths:
        while remaining >= width:
            sizes.append(width)
            remaining -= width
    return sizes


def accumulator_capacity(spec: IsaSpec) -> int:
    """Accumulators available: the register file minus two reserved regs.

    One reserved register holds the broadcast non-zero value (the paper's
    ZMM31); one more is scratch for the non-FMA scalar fallback.
    """
    return spec.num_vector_regs - 2


def plan_layout(d: int, isa: IsaLevel | IsaSpec | str = IsaLevel.AVX512) -> RowLayout:
    """Plan the register layout for a full row of ``d`` columns.

    Raises :class:`CodegenError` when the row does not fit the register
    file — callers should then use :func:`tile_columns`.
    """
    spec = isa if isinstance(isa, IsaSpec) else isa_spec(isa)
    if d <= 0:
        raise CodegenError(f"column count must be positive, got {d}")
    sizes = decompose(d, spec)
    if len(sizes) > accumulator_capacity(spec):
        raise CodegenError(
            f"d={d} needs {len(sizes)} accumulators but {spec.level.value} "
            f"offers {accumulator_capacity(spec)}; use tile_columns()"
        )
    pieces = []
    offset = 0
    for code, lanes in enumerate(sizes):
        pieces.append(Piece(offset, lanes, code))
        offset += lanes
    return RowLayout(d, spec, tuple(pieces),
                     broadcast_code=spec.num_vector_regs - 1)


@dataclass(frozen=True)
class ColumnTile:
    """A column range ``[start, start + layout.d)`` processed in one pass."""

    start: int
    layout: RowLayout


def tile_columns(d: int, isa: IsaLevel | IsaSpec | str = IsaLevel.AVX512) -> list[ColumnTile]:
    """Split ``d`` columns into register-sized tiles, widest tiles first.

    Each tile fits :func:`plan_layout`; a single tile is returned whenever
    the whole row fits (the common GNN case — the paper's X matrices are
    "tall and skinny", §II-A).
    """
    spec = isa if isinstance(isa, IsaSpec) else isa_spec(isa)
    if d <= 0:
        raise CodegenError(f"column count must be positive, got {d}")
    capacity = accumulator_capacity(spec)
    widest = max(spec.max_lanes_f32, 1)
    max_tile = capacity * widest
    tiles: list[ColumnTile] = []
    start = 0
    while start < d:
        width = min(max_tile, d - start)
        # keep every tile decomposable within capacity (always true: width
        # <= capacity * widest means <= capacity pieces of widest lanes,
        # but the tail mixing smaller pieces can exceed it; shrink if so)
        while len(decompose(width, spec)) > capacity:
            width -= width % widest or widest
        tiles.append(ColumnTile(start, plan_layout(width, spec)))
        start += width
    return tiles
