"""JITSPMM core: the paper's contribution.

The just-in-time SpMM code generator and its three techniques:

* :mod:`repro.core.layout` — register allocation for the output row:
  decompose ``d`` into ZMM/YMM/XMM/scalar pieces (paper §IV-D.1, Fig. 8);
* :mod:`repro.core.codegen` — coarse-grain column merging codegen
  (paper §IV-C, Alg. 2, Listing 2) plus the driver loops, with column
  tiling as the natural extension for ``d`` beyond register capacity;
* :mod:`repro.core.split` — row-split / nnz-split / merge-split
  partitioners (paper §IV-B, Fig. 6) and the ``lock xadd`` dynamic row
  dispatcher (Listing 1);
* :mod:`repro.core.runner` — maps operands into the simulated machine and
  executes JIT / AOT / MKL kernels under identical conditions;
* :mod:`repro.core.analytic` — closed-form event counts, tested to agree
  exactly with the simulator;
* :mod:`repro.core.engine` — :class:`JitSpMM`, the user-facing API.
"""

from repro.core.autotune import SplitChoice, choose_split
from repro.core.codegen import JitCodegen, JitKernelSpec
from repro.core.engine import JitSpMM, SpmmResult
from repro.core.layout import ColumnTile, Piece, RowLayout, plan_layout
from repro.core.split import merge_split, nnz_split, row_split

__all__ = [
    "ColumnTile",
    "JitCodegen",
    "JitKernelSpec",
    "JitSpMM",
    "Piece",
    "RowLayout",
    "SplitChoice",
    "SpmmResult",
    "choose_split",
    "merge_split",
    "nnz_split",
    "plan_layout",
    "row_split",
]
