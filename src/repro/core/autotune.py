"""Split-strategy auto-tuning from matrix statistics.

The paper evaluates all three workload divisions and observes that the
winner is matrix-dependent (Figs. 9-10 show per-dataset crossovers).
Because JIT code generation already happens at run time — when the
matrix is in hand — the natural extension is to *choose* the strategy
then too.  The tuner predicts each candidate's makespan (the slowest
thread's work) from the exact per-thread event counts of
:mod:`repro.core.analytic`, weighted by a simple per-event cycle
estimate, and returns the predicted-fastest plan.  No simulation, no
probing: O(m) per candidate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.analytic import AnalyticCounts, jit_dynamic_counts, jit_range_counts
from repro.core.codegen import JitKernelSpec
from repro.core.runner import auto_batch
from repro.core.split import partition
from repro.isa.isainfo import IsaLevel
from repro.obs.trace import span as _span
from repro.sparse.csr import CsrMatrix

__all__ = ["SplitChoice", "autotune_memo_stats", "choose_split",
           "clear_autotune_memo", "export_autotune_memo",
           "lookup_pass_verdict", "predicted_makespan",
           "record_pass_verdict", "seed_autotune_memo"]

#: crude per-event cycle weights for ranking (not a timing model — only
#: relative ordering between strategies matters here)
_CYCLES_PER_INSN = 0.3
_CYCLES_PER_LOAD = 1.2
_CYCLES_PER_BRANCH = 0.3
_CYCLES_PER_ATOMIC = 20.0


@dataclass(frozen=True)
class SplitChoice:
    """The tuner's verdict for one (matrix, d, threads) instance."""

    split: str
    dynamic: bool
    batch: int
    predicted_cycles: float
    scores: dict  # candidate name -> predicted makespan cycles

    def describe(self) -> str:
        ranked = sorted(self.scores.items(), key=lambda kv: kv[1])
        lines = [f"chosen: {self.split}"
                 f"{' (dynamic)' if self.dynamic else ''}"]
        lines.extend(f"  {name:14s} predicted {cycles:14,.0f} cycles"
                     for name, cycles in ranked)
        return "\n".join(lines)


def _weight(counts: AnalyticCounts) -> float:
    return (counts.instructions * _CYCLES_PER_INSN
            + counts.memory_loads * _CYCLES_PER_LOAD
            + counts.branches * _CYCLES_PER_BRANCH
            + counts.atomic_ops * _CYCLES_PER_ATOMIC)


def predicted_makespan(matrix: CsrMatrix, d: int, threads: int, split: str,
                       isa: IsaLevel | str = IsaLevel.AVX512) -> float:
    """Predicted slowest-thread cycles for a static split strategy."""
    spec = _spec(matrix, d, isa)
    worst = 0.0
    for r0, r1 in partition(matrix, threads, split):
        rows = r1 - r0
        nnz = int(matrix.row_ptr[r1] - matrix.row_ptr[r0])
        counts = jit_range_counts(spec, rows=rows, nnz=nnz)
        weight = _weight(counts)
        if weight > worst:
            worst = weight
    return worst


def _dynamic_makespan(matrix: CsrMatrix, d: int, threads: int, batch: int,
                      isa: IsaLevel | str) -> float:
    """Predicted makespan for dynamic row dispatching.

    Dynamic dispatch self-balances at batch granularity: model it as the
    total machine-wide work divided evenly, plus one worst-case batch of
    slack (a thread can be stuck with the heaviest batch it grabbed
    last) and the atomic-fetch serialization.
    """
    spec = _spec(matrix, d, isa, batch=batch)
    total = _weight(jit_dynamic_counts(spec, threads=threads,
                                       rows=matrix.nrows, nnz=matrix.nnz))
    heaviest_batch = 0.0
    row_ptr = matrix.row_ptr
    for start in range(0, matrix.nrows, batch):
        end = min(start + batch, matrix.nrows)
        nnz = int(row_ptr[end] - row_ptr[start])
        weight = _weight(jit_range_counts(spec, rows=end - start, nnz=nnz))
        if weight > heaviest_batch:
            heaviest_batch = weight
    return total / threads + heaviest_batch


def _spec(matrix: CsrMatrix, d: int, isa: IsaLevel | str,
          batch: int = 128) -> JitKernelSpec:
    return JitKernelSpec(
        d=d, m=matrix.nrows, row_ptr_addr=0, col_addr=0, vals_addr=0,
        x_addr=0, y_addr=0, next_addr=1, batch=batch,
        isa=IsaLevel.parse(isa) if isinstance(isa, str) else isa,
    )


#: process-wide memo of tuning verdicts — the tuner is a pure function
#: of (matrix contents, d, threads, isa), so a re-registered matrix, a
#: copied twin, or a second service never re-tunes.  LRU-bounded: the
#: verdicts are tiny, but unbounded growth over an unbounded matrix
#: stream would still be a leak.  The same map also holds the AOT
#: pass-search verdicts (:mod:`repro.aot.search`), namespaced under
#: ``("aot-passes", ...)`` keys so one export/seed channel replicates
#: both kinds of tuning across gateway workers.
_MEMO_CAP = 1024
_PASS_VERDICT_NS = "aot-passes"
_memo: OrderedDict[tuple, object] = OrderedDict()
_memo_lock = threading.Lock()
_memo_hits = 0
_memo_misses = 0


def autotune_memo_stats() -> dict:
    """Counters for the process-wide tuning memo (hits/misses/entries;
    ``pass_entries`` counts the AOT pass-search verdicts among them)."""
    with _memo_lock:
        pass_entries = sum(1 for key in _memo
                           if key and key[0] == _PASS_VERDICT_NS)
        return {"hits": _memo_hits, "misses": _memo_misses,
                "entries": len(_memo), "pass_entries": pass_entries}


def clear_autotune_memo() -> None:
    """Drop every memoized verdict and zero the counters (test hook)."""
    global _memo_hits, _memo_misses
    with _memo_lock:
        _memo.clear()
        _memo_hits = 0
        _memo_misses = 0


def export_autotune_memo() -> dict[tuple, object]:
    """Every memoized verdict, keyed ``(fingerprint, d, threads, isa)``
    — plus the ``("aot-passes", ...)``-keyed pass-search verdicts.

    The key tuples and the :class:`SplitChoice` /
    :class:`repro.aot.search.PassChoice` values are plain picklable
    data, so a multi-process serving gateway can ship one worker's
    verdicts to its peers (:func:`seed_autotune_memo`) and each kernel
    identity is tuned once per *fleet*, not once per process.
    """
    with _memo_lock:
        return dict(_memo)


def seed_autotune_memo(entries: dict[tuple, object]) -> int:
    """Install externally produced verdicts; returns how many were new.

    Existing entries win (a verdict is deterministic, so a collision is
    a no-op either way) and neither the hit nor the miss counter moves —
    seeding is replication, not tuning.  The LRU cap still applies.
    """
    added = 0
    with _memo_lock:
        for key, choice in entries.items():
            if key not in _memo:
                _memo[key] = choice
                added += 1
        while len(_memo) > _MEMO_CAP:
            _memo.popitem(last=False)
    return added


def record_pass_verdict(key: tuple, verdict) -> None:
    """Memoize one AOT pass-search verdict process-wide.

    ``key`` is the search's identity tuple (personality, matrix
    fingerprint, d, cache geometry); it is stored namespaced under
    ``("aot-passes", *key)`` in the same LRU map as the split verdicts,
    so :func:`export_autotune_memo` / :func:`seed_autotune_memo`
    replicate searched pass configs across gateway workers for free.
    """
    with _memo_lock:
        full = (_PASS_VERDICT_NS, *key)
        _memo[full] = verdict
        _memo.move_to_end(full)
        while len(_memo) > _MEMO_CAP:
            _memo.popitem(last=False)


def lookup_pass_verdict(key: tuple):
    """The memoized pass-search verdict for ``key``, or None.

    Counts against the shared memo hit/miss counters — a fleet that
    seeds verdicts from its peers shows up as hits here.
    """
    global _memo_hits, _memo_misses
    with _memo_lock:
        full = (_PASS_VERDICT_NS, *key)
        cached = _memo.get(full)
        if cached is not None:
            _memo.move_to_end(full)
            _memo_hits += 1
            return cached
        _memo_misses += 1
        return None


def choose_split(matrix: CsrMatrix, d: int, threads: int,
                 isa: IsaLevel | str = IsaLevel.AVX512,
                 memo: bool = True) -> SplitChoice:
    """Pick the predicted-fastest workload division for this instance.

    Verdicts are memoized process-wide, keyed by the matrix content
    fingerprint plus ``(d, threads, isa)`` — hashing the CSR arrays is
    far cheaper than re-scoring four candidate plans, and the scoring
    is deterministic, so memoization is invisible apart from the time
    saved.  ``memo=False`` forces a fresh scoring run.
    """
    global _memo_hits, _memo_misses
    isa = IsaLevel.parse(isa)
    with _span("autotune.choose_split", d=d, threads=threads) as sp:
        if memo:
            key = (matrix.fingerprint(), d, threads, isa.name)
            with _memo_lock:
                cached = _memo.get(key)
                if cached is not None:
                    _memo.move_to_end(key)
                    _memo_hits += 1
                    sp.annotate(memo_hit=True, split=cached.split)
                    return cached
        batch = auto_batch(matrix.nrows, threads)
        scores = {
            "row (static)": predicted_makespan(matrix, d, threads, "row",
                                               isa),
            "nnz": predicted_makespan(matrix, d, threads, "nnz", isa),
            "merge": predicted_makespan(matrix, d, threads, "merge", isa),
            "row (dynamic)": _dynamic_makespan(matrix, d, threads, batch,
                                               isa),
        }
        best = min(scores, key=scores.get)
        if best == "row (dynamic)":
            choice = SplitChoice("row", True, batch, scores[best], scores)
        else:
            split = "row" if best == "row (static)" else best
            choice = SplitChoice(split, False, batch, scores[best], scores)
        if memo:
            with _memo_lock:
                _memo_misses += 1
                _memo[key] = choice
                _memo.move_to_end(key)
                while len(_memo) > _MEMO_CAP:
                    _memo.popitem(last=False)
        sp.annotate(memo_hit=False, split=choice.split,
                    dynamic=choice.dynamic)
        return choice
