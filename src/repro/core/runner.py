"""Operand mapping, run results, and the legacy one-call entry points.

This module holds the experimental testbed's shared plumbing: mapping
the operands of ``Y = A @ X`` into a simulated address space
(:class:`MappedOperands`), the JIT spec/thread-launch helpers, and
:class:`RunResult`.  The one-call entry points ``run_jit`` /
``run_aot`` / ``run_mkl`` remain as thin compatibility shims over the
:mod:`repro.api` pipeline (``get_system(name).prepare(config)
.bind(A, X).execute()``) — same signatures, same results, one
execution path for every system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aot import abi
from repro.aot.compiler import CompiledKernel
from repro.core.codegen import DEFAULT_BATCH, JitKernelSpec
from repro.core.split import partition
from repro.errors import ShapeError
from repro.isa.assembler import Program
from repro.isa.isainfo import IsaLevel
from repro.machine import CacheConfig, Counters, Memory, ThreadSpec
from repro.sparse.csr import CsrMatrix

__all__ = [
    "MappedOperands",
    "PLACEHOLDER_ADDRESSES",
    "RunResult",
    "auto_batch",
    "jit_thread_specs",
    "make_jit_spec",
    "map_jit_operands",
    "resolve_jit_dispatch",
    "run_aot",
    "run_jit",
    "run_mkl",
]

#: Spaced synthetic addresses for address-independent kernel inspection
#: (:meth:`repro.core.engine.JitSpMM.inspect`): the instruction-stream
#: shape is identical to a real run's, only the baked immediates differ.
PLACEHOLDER_ADDRESSES = {
    "row_ptr_addr": 0x10000, "col_addr": 0x20000, "vals_addr": 0x30000,
    "x_addr": 0x40000, "y_addr": 0x50000,
}
PLACEHOLDER_NEXT_ADDR = 0x60000


@dataclass
class MappedOperands:
    """The five SpMM arrays mapped into one simulated address space."""

    memory: Memory
    y_host: np.ndarray
    row_ptr_addr: int
    col_addr: int
    vals_addr: int
    x_addr: int
    y_addr: int
    d: int
    m: int
    x_host: np.ndarray | None = None

    @classmethod
    def create(cls, matrix: CsrMatrix, x: np.ndarray,
               y: np.ndarray | None = None) -> "MappedOperands":
        """Map the five arrays; pass ``y`` to alias an existing output
        buffer (the lazy-binding plans hand in the host-side ``y`` they
        created at bind time, so the mapping stays zero-copy)."""
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[0] != matrix.ncols:
            raise ShapeError(
                f"X must be {matrix.ncols}xd, got shape {x.shape}"
            )
        x = np.ascontiguousarray(x, dtype=np.float32)
        memory = Memory()
        # col_indices are stored as int32 in kernel memory (the common
        # choice of real SpMM libraries, incl. MKL's default ILP32).
        col32 = np.ascontiguousarray(matrix.col_indices, dtype=np.int32)
        if y is None:
            y = np.zeros((matrix.nrows, x.shape[1]), dtype=np.float32)
        return cls(
            memory=memory,
            y_host=y,
            row_ptr_addr=memory.map_array(matrix.row_ptr, "row_ptr"),
            col_addr=memory.map_array(col32, "col_indices"),
            vals_addr=memory.map_array(matrix.vals, "vals"),
            x_addr=memory.map_array(x, "X"),
            y_addr=memory.map_array(y, "Y"),
            d=int(x.shape[1]),
            m=matrix.nrows,
            x_host=x,
        )

    @property
    def addresses(self) -> dict[str, int]:
        """The five base addresses, keyed by their spec field names."""
        return {
            "row_ptr_addr": self.row_ptr_addr, "col_addr": self.col_addr,
            "vals_addr": self.vals_addr, "x_addr": self.x_addr,
            "y_addr": self.y_addr,
        }


@dataclass
class RunResult:
    """Outcome of one SpMM execution through an execution backend.

    ``backend`` records which :class:`repro.exec.Executor` produced the
    row — its capability flags say what the result can be trusted for
    (``native`` rows carry no counters, only ``sim`` rows carry cycles).
    """

    y: np.ndarray
    counters: Counters
    per_thread: list[Counters]
    program: Program | None
    codegen_seconds: float = 0.0
    code_bytes: int = 0
    system: str = ""
    split: str = ""
    threads: int = 1
    partitions: list[tuple[int, int]] = field(default_factory=list)
    cache_hit: bool = False
    backend: str = ""

    def modeled_seconds(self, ghz: float = 3.7) -> float:
        return self.counters.seconds(ghz)

    def codegen_overhead(self, ghz: float = 3.7) -> float:
        """Codegen wall time / total time, the paper's Table IV metric."""
        total = self.codegen_seconds + self.modeled_seconds(ghz)
        return self.codegen_seconds / total if total else 0.0


def auto_batch(m: int, threads: int) -> int:
    """Dynamic-dispatch batch size for a matrix with ``m`` rows.

    The paper fixes 128 (footnote 4), tuned for matrices with tens of
    millions of rows; on scaled twins that would hand all rows to one
    thread.  The auto rule keeps the paper's value as a cap while
    guaranteeing at least ~4 batches per thread.
    """
    return max(1, min(DEFAULT_BATCH, m // (threads * 4)))


def make_jit_spec(
    d: int,
    m: int,
    addresses: dict[str, int],
    *,
    next_addr: int = 0,
    batch: int | None = None,
    threads: int = 1,
    isa: IsaLevel | str = IsaLevel.AVX512,
) -> JitKernelSpec:
    """Single construction point for JIT kernel specs.

    Both the runner (real mapped addresses) and the engine's ``inspect``
    (:data:`PLACEHOLDER_ADDRESSES`) build their specs here, so the
    defaulting rules — ``batch`` from :func:`auto_batch`, ``next_addr``
    nonzero exactly when dispatch is dynamic — cannot drift apart.
    """
    if batch is None:
        batch = auto_batch(m, threads)
    return JitKernelSpec(
        d=d, m=m, next_addr=next_addr, batch=batch,
        isa=IsaLevel.parse(isa), **addresses,
    )


def resolve_jit_dispatch(
    matrix: CsrMatrix,
    split: str,
    threads: int,
    dynamic: bool | None,
) -> tuple[bool, list[tuple[int, int]]]:
    """The single home of the JIT dispatch contract: ``dynamic``
    defaults to True exactly for row-split (and is rejected for any
    other split), static splits get host-side partitions while dynamic
    threads self-dispatch.  Shared by :func:`map_jit_operands` and the
    lazy ``JitSystem.bind`` (which resolves dispatch before — possibly
    ever — mapping operands).  Returns ``(dynamic, partitions)``.
    """
    if dynamic is None:
        dynamic = split == "row"
    if dynamic and split != "row":
        raise ShapeError("dynamic dispatch applies to row-split only")
    partitions = [] if dynamic else partition(matrix, threads, split)
    return dynamic, partitions


def map_jit_operands(
    matrix: CsrMatrix,
    x: np.ndarray,
    *,
    split: str = "row",
    threads: int = 1,
    dynamic: bool | None = None,
    batch: int | None = None,
    isa: IsaLevel | str = IsaLevel.AVX512,
    y: np.ndarray | None = None,
    partitions: list[tuple[int, int]] | None = None,
) -> tuple[MappedOperands, JitKernelSpec, bool, list[tuple[int, int]]]:
    """Set up one JIT execution: mapped operands, spec, thread ranges.

    The single place (shared by :func:`run_jit` and the serving
    subsystem's persistent workspaces) that applies the execution
    contract (:func:`resolve_jit_dispatch`) and maps the NEXT counter
    iff dispatch is dynamic.  A caller that already resolved dispatch
    (the lazy bind path) passes its ``partitions`` to skip the
    recomputation.  Returns ``(operands, spec, dynamic, partitions)``.
    """
    if partitions is None:
        dynamic, partitions = resolve_jit_dispatch(matrix, split, threads,
                                                   dynamic)
    elif dynamic is None:
        raise ShapeError(
            "precomputed partitions need a resolved dynamic flag")
    operands = MappedOperands.create(matrix, x, y=y)
    next_addr = 0
    if dynamic:
        next_addr, _ = operands.memory.map_zeros(8, "NEXT")
    spec = make_jit_spec(
        operands.d, operands.m, operands.addresses,
        next_addr=next_addr, batch=batch, threads=threads, isa=isa,
    )
    return operands, spec, dynamic, partitions


def jit_thread_specs(
    program: Program,
    threads: int,
    partitions: list[tuple[int, int]],
    dynamic: bool,
    name_prefix: str = "jit",
) -> list[ThreadSpec]:
    """Thread launch plan for a JIT kernel (shared with the server).

    Dynamic kernels self-dispatch via the NEXT counter, so every thread
    runs the bare program; range kernels get their row window in the
    ABI argument registers.
    """
    if dynamic:
        return [ThreadSpec(program, name=f"{name_prefix}{t}")
                for t in range(threads)]
    return [
        ThreadSpec(program,
                   init_gpr={abi.ARG_ROW_START: r0, abi.ARG_ROW_END: r1},
                   name=f"{name_prefix}{t}")
        for t, (r0, r1) in enumerate(partitions)
    ]


def run_jit(
    matrix: CsrMatrix,
    x: np.ndarray,
    split: str = "row",
    threads: int = 1,
    dynamic: bool | None = None,
    batch: int | None = None,
    isa: IsaLevel | str = IsaLevel.AVX512,
    timing: bool = True,
    backend: str | None = None,
    max_steps: int | None = None,
    warmup: bool = False,
    l1: CacheConfig | None = None,
    l2: CacheConfig | None = None,
    cache=None,
) -> RunResult:
    """Run JITSPMM: generate specialized code, then execute it.

    ``dynamic`` defaults to True for row-split (the paper pairs row-split
    with the Listing-1 dynamic dispatcher) and False otherwise.  ``batch``
    defaults to :func:`auto_batch`.  ``warmup=True`` measures the second
    of two runs (warm caches/predictors, the paper's methodology);
    ``l1``/``l2`` override the cache geometry (the bench harness scales
    caches down with the dataset twins).  ``cache`` — a
    :class:`repro.serve.KernelCache` — reuses a previously generated
    kernel when the full identity (shapes, ISA, baked addresses)
    matches, reporting ``codegen_seconds=0`` and ``cache_hit=True`` on
    a hit: codegen amortized away, the serving subsystem's premise.
    The probe-generate-insert sequence is not serialized across
    concurrent ``run_jit`` callers (racing callers may each generate;
    results stay correct, work is merely duplicated) — request streams
    that need codegen-once guarantees go through
    :class:`repro.serve.SpmmService`, which serializes per kernel
    identity.
    """
    # imported lazily: the api package's system implementations import
    # this module's helpers, so the shim resolves the registry at call
    # time rather than at import time
    from repro.api import ExecutionConfig, get_system

    config = ExecutionConfig(
        split=split, threads=threads, dynamic=dynamic, batch=batch,
        isa=isa, timing=timing, backend=backend, warmup=warmup,
        l1=l1, l2=l2, cache=cache, **_steps_override(max_steps),
    )
    return get_system("jit").prepare(config).bind(matrix, x).execute()


def _steps_override(max_steps: int | None) -> dict:
    """Keyword overrides for an optional per-call step limit (``None``
    keeps :data:`repro.api.config.DEFAULT_MAX_STEPS`)."""
    return {} if max_steps is None else {"max_steps": max_steps}


def run_aot(
    matrix: CsrMatrix,
    x: np.ndarray,
    personality: str = "icc-avx512",
    split: str = "row",
    threads: int = 1,
    timing: bool = True,
    backend: str | None = None,
    max_steps: int | None = None,
    kernel: CompiledKernel | None = None,
    warmup: bool = False,
    l1: CacheConfig | None = None,
    l2: CacheConfig | None = None,
    cache=None,
) -> RunResult:
    """Run an AOT-compiled baseline (gcc / clang / icc / icc-avx512).

    Pass a pre-compiled ``kernel`` — or a :class:`repro.serve.KernelCache`
    via ``cache``, keyed on the personality name since the param-block
    ABI makes the template address-free — to amortize compilation across
    runs (AOT compilation happens "before shipping", so it is never part
    of the measured execution, unlike the JIT's codegen overhead).
    """
    from repro.api import ExecutionConfig, get_system

    config = ExecutionConfig(
        split=split, threads=threads, timing=timing, backend=backend,
        warmup=warmup, l1=l1, l2=l2, cache=cache,
        **_steps_override(max_steps),
    )
    if isinstance(personality, str):
        system = get_system(f"aot:{personality}")
    else:  # a CompilerPersonality instance, as AotCompiler accepts
        from repro.api.systems import AotSystem
        system = AotSystem(personality)
    return system.prepare(config, kernel=kernel).bind(matrix, x).execute()


def run_mkl(
    matrix: CsrMatrix,
    x: np.ndarray,
    split: str = "row",
    threads: int = 1,
    lanes: int = 16,
    timing: bool = True,
    backend: str | None = None,
    max_steps: int | None = None,
    warmup: bool = False,
    l1: CacheConfig | None = None,
    l2: CacheConfig | None = None,
    cache=None,
) -> RunResult:
    """Run the MKL-like hand-scheduled AOT baseline.

    ``cache`` — a :class:`repro.serve.KernelCache` — reuses the built
    kernel across calls (keyed by lane count): the MKL template used to
    be rebuilt on every call, which the registry's ``prepare()`` stage
    now amortizes exactly like the other systems' kernels.
    """
    from repro.api import ExecutionConfig, get_system

    config = ExecutionConfig(
        split=split, threads=threads, timing=timing, backend=backend,
        warmup=warmup, l1=l1, l2=l2, cache=cache,
        **_steps_override(max_steps),
    )
    name = "mkl" if lanes == 16 else f"mkl:{lanes}"
    return get_system(name).prepare(config).bind(matrix, x).execute()
