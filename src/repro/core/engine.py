"""The user-facing JITSPMM engine (paper Fig. 5).

:class:`JitSpMM` wraps the whole workflow — assembly code generation,
thread spawning, execution, result joining — behind two entry points:

* :meth:`JitSpMM.multiply` — compute ``Y = A @ X`` with the ``"native"``
  execution backend (same partitioning logic, host-speed numpy); use
  this in applications;
* :meth:`JitSpMM.profile` — generate the specialized kernel and execute
  it on a simulator backend (``"sim"`` / ``"counts"`` / ``"sim-fused"``
  from the :mod:`repro.exec` registry), returning the perf counters the
  paper's evaluation reports; use this to reproduce the experiments.

:meth:`JitSpMM.run` is the engine's single pipeline-dispatch path;
``profile`` forwards to it, and ``multiply`` runs the identical shared
arithmetic (:func:`multiply_partitioned` over the resolved partitions,
exactly what the native executor does) without binding a simulated
address space the host-speed product would never read.

Example::

    engine = JitSpMM(split="merge", threads=8)
    y = engine.multiply(A, X)                    # fast result
    result = engine.profile(A, X)                # simulated, with counters
    fast = engine.profile(A, X, backend="sim-fused")  # superblock simulator
    print(result.counters)
    print(engine.inspect(A, X))                  # generated assembly

``split="auto"`` defers the workload-division choice to
:func:`repro.core.autotune.choose_split`, re-deciding per matrix — the
natural extension of JIT specialization, since the matrix is in hand
when code is generated anyway.  Passing a shared
:class:`repro.serve.KernelCache` lets repeated :meth:`profile` calls on
same-shaped problems skip codegen entirely (see :mod:`repro.serve` for
the full serving workflow).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.autotune import SplitChoice, choose_split
from repro.core.codegen import JitCodegen
from repro.core.layout import tile_columns
from repro.core.runner import (
    PLACEHOLDER_ADDRESSES,
    PLACEHOLDER_NEXT_ADDR,
    RunResult,
    make_jit_spec,
)
from repro.core.split import SPLITS, partition
from repro.errors import ShapeError
from repro.exec import get_backend
from repro.isa.isainfo import IsaLevel
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import spmm_reference

__all__ = ["JitSpMM", "SPLITS", "SpmmResult", "check_operands",
           "fast_check_operands", "multiply_partitioned", "scatter_columns",
           "stack_columns"]

SpmmResult = RunResult  # public alias

_F32 = np.dtype(np.float32)


def check_operands(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Validate ``(A, X)`` compatibility; returns X as contiguous f32.

    Shared by the engine and the serving subsystem so every entry point
    rejects malformed operands with identical errors.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ShapeError(f"X must be 2-D, got ndim={x.ndim}")
    if x.shape[0] != matrix.ncols:
        raise ShapeError(
            f"dimension mismatch: A is {matrix.nrows}x{matrix.ncols}, "
            f"X is {x.shape[0]}x{x.shape[1]}"
        )
    if x.shape[1] <= 0:
        raise ShapeError("X must have at least one column")
    return np.ascontiguousarray(x, dtype=np.float32)


def fast_check_operands(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """:func:`check_operands` with the steady-state path hoisted out.

    The matrix side of the contract is fixed at registration; per call
    only ``x`` varies, and production traffic sends well-formed operands
    (contiguous float32 of the right height).  This probe accepts that
    common case with a handful of cheap attribute reads — no
    ``asarray`` / ``ascontiguousarray`` round trip — and defers
    everything else (wrong dtype, non-contiguous, lists, malformed
    shapes) to the full check, so error behavior is identical.
    """
    if (type(x) is np.ndarray and x.dtype == _F32 and x.ndim == 2
            and x.shape[0] == matrix.ncols and x.shape[1] > 0
            and x.flags.c_contiguous):
        return x
    return check_operands(matrix, x)


# Optional accelerator for the host fast path: scipy's C csr_matmat
# accumulates each output column in float32, in non-zero storage order
# — the identical operation order (and therefore identical rounding) as
# the ``np.add.at`` segment reduction in ``spmm_reference`` and as the
# generated kernels' per-row accumulators, at a fraction of the cost.
# Conformance is asserted in tests/test_core_engine.py; without scipy
# the pure-numpy path below serves identically.
try:
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - scipy ships with the test env
    _scipy_sparse = None


def _range_product(matrix: CsrMatrix, x: np.ndarray,
                   r0: int, r1: int) -> np.ndarray:
    """Rows ``[r0, r1)`` of ``A @ X``, bit-identical to the reference."""
    lo = int(matrix.row_ptr[r0])
    hi = int(matrix.row_ptr[r1])
    if _scipy_sparse is not None:
        sub = _scipy_sparse.csr_matrix(
            (matrix.vals[lo:hi], matrix.col_indices[lo:hi],
             matrix.row_ptr[r0:r1 + 1] - lo),
            shape=(r1 - r0, matrix.ncols), copy=False)
        return sub @ x
    sub = CsrMatrix(
        r1 - r0, matrix.ncols, matrix.row_ptr[r0:r1 + 1] - lo,
        matrix.col_indices[lo:hi], matrix.vals[lo:hi],
    )
    return spmm_reference(sub, x)


def multiply_partitioned(matrix: CsrMatrix, x: np.ndarray,
                         ranges: list[tuple[int, int]]) -> np.ndarray:
    """Host fast path: evaluate each partition's rows independently.

    Shared by :meth:`JitSpMM.multiply` and the serving subsystem — the
    same row ranges the simulated threads would own, evaluated at host
    speed (scipy's C kernel when available, vectorized numpy
    otherwise).  Bit-equal to the reference kernel either way.
    """
    y = np.zeros((matrix.nrows, x.shape[1]), dtype=np.float32)
    for r0, r1 in ranges:
        if r0 == r1:
            continue
        y[r0:r1] = _range_product(matrix, x, r0, r1)
    return y


def stack_columns(xs: list[np.ndarray], out: np.ndarray | None = None
                  ) -> np.ndarray:
    """Concatenate same-shaped dense operands along the column axis.

    The coalescing gather: ``k`` operands of shape ``(n, d)`` become one
    ``(n, d*k)`` stacked operand, ready for a single SpMM whose per-
    column arithmetic — and therefore per-request result — is bit-
    identical to ``k`` separate multiplies (every kernel in this
    library accumulates each output column independently, in the same
    non-zero order regardless of the column count).

    ``out`` reuses a pooled buffer of at least ``n * d * k`` elements
    (flat or any shape; only its allocation is reused).
    """
    n, d = xs[0].shape
    width = d * len(xs)
    if out is None:
        stacked = np.empty((n, width), dtype=np.float32)
    else:
        stacked = out.reshape(-1)[:n * width].reshape(n, width)
    for index, x in enumerate(xs):
        stacked[:, index * d:(index + 1) * d] = x
    return stacked


def scatter_columns(y: np.ndarray, count: int) -> list[np.ndarray]:
    """Split a stacked result back into per-request views (zero-copy).

    The inverse of :func:`stack_columns`: each returned array is a view
    of ``y``'s column block for one request — no result copies on the
    batched path.
    """
    d = y.shape[1] // count
    return [y[:, index * d:(index + 1) * d] for index in range(count)]


class JitSpMM:
    """Just-in-time SpMM engine: ``Y = A @ X`` on the simulated CPU.

    Args:
        split: Workload division — ``"row"`` (default), ``"nnz"``,
            ``"merge"`` (paper §IV-B) or ``"auto"`` (pick per matrix via
            :func:`repro.core.autotune.choose_split`).
        threads: Simulated CPU threads.
        dynamic: Use Listing-1 dynamic row dispatching (defaults to True
            for row-split, as in the paper; forced False otherwise; must
            stay None for ``"auto"``, where the tuner decides).
        batch: Dynamic dispatch batch size; None (default) sizes it
            automatically from the row count (the paper's fixed 128 is
            the cap — see :func:`repro.core.runner.auto_batch`).
        isa: ISA level for code generation (``"avx512"`` default).
        timing: Model caches/pipeline when profiling (slower, gives
            cycle estimates); counts are identical either way.
        backend: Execution backend :meth:`profile` dispatches to
            (``"counts"``, ``"sim"``, ``"sim-fused"``, or any
            :func:`repro.exec.register_backend`-ed name); ``None``
            defers to ``timing``.
        cache: Optional shared :class:`repro.serve.KernelCache`;
            :meth:`profile` reuses cached kernels across calls when the
            full kernel identity matches.
    """

    def __init__(
        self,
        split: str = "row",
        threads: int = 8,
        dynamic: bool | None = None,
        batch: int | None = None,
        isa: IsaLevel | str = IsaLevel.AVX512,
        timing: bool = True,
        backend: str | None = None,
        cache=None,
    ) -> None:
        # one validation authority: the api-level config applies the
        # same split/thread/dispatch contract for every entry point
        from repro.api.config import ExecutionConfig

        self.config = ExecutionConfig(
            split=split, threads=threads, dynamic=dynamic, batch=batch,
            isa=isa, timing=timing, backend=backend, cache=cache,
        )
        self.split = split
        self.threads = threads
        self.dynamic = self.config.effective_dynamic
        self.batch = batch
        self.isa = self.config.isa
        self.timing = timing
        self.cache = cache
        # (id(matrix), d) -> (weakref to matrix, SplitChoice); the
        # weakref guards against id() reuse after garbage collection
        self._choices: dict[tuple[int, int], tuple] = {}

    # ------------------------------------------------------------------
    def choose(self, matrix: CsrMatrix, d: int) -> SplitChoice:
        """The tuner's verdict for (matrix, d), memoized per matrix.

        Autotuning is O(m) per candidate — cheap next to codegen but
        not free, so like codegen it is paid once per (matrix, d) when
        the engine is reused across requests.
        """
        key = (id(matrix), d)
        cached = self._choices.get(key)
        if cached is not None and cached[0]() is matrix:
            return cached[1]
        choice = choose_split(matrix, d, self.threads, self.isa)
        # drop entries whose matrix has been collected, so a long-lived
        # engine serving transient matrices doesn't grow without bound
        self._choices = {k: v for k, v in self._choices.items()
                         if v[0]() is not None}
        self._choices[key] = (weakref.ref(matrix), choice)
        return choice

    def _resolve(self, matrix: CsrMatrix, d: int) -> tuple[str, bool, int | None]:
        """The concrete ``(split, dynamic, batch)`` for this instance."""
        if self.split != "auto":
            return self.split, self.dynamic, self.batch
        choice = self.choose(matrix, d)
        return choice.split, choice.dynamic, self.batch or choice.batch

    # ------------------------------------------------------------------
    def run(self, matrix: CsrMatrix, x: np.ndarray,
            backend: str | None = None) -> RunResult:
        """Execute ``Y = A @ X`` through one execution backend.

        The single execution path behind :meth:`multiply` and
        :meth:`profile`: resolves the engine's (possibly autotuned)
        split, then dispatches through the :mod:`repro.api` pipeline to
        the requested :mod:`repro.exec` backend (default: the engine's
        configured backend).
        """
        from repro.api import get_system

        x = self._check_operands(matrix, x)
        split, dynamic, batch = self._resolve(matrix, int(x.shape[1]))
        config = self.config.with_overrides(
            split=split, dynamic=dynamic, batch=batch)
        plan = get_system("jit").prepare(config).bind(
            matrix, x,
            ensure_kernel=None if backend is None else
            get_backend(backend).requires_kernel)
        return plan.execute(backend=backend)

    def multiply(self, matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
        """Compute ``Y = A @ X`` with the ``"native"`` backend.

        Same partitioning as the simulated path (so a bad split
        configuration fails identically) and the same arithmetic the
        :class:`~repro.exec.backends.NativeExecutor` runs — but without
        binding a simulated address space, which a host-speed product
        never reads (``run(..., backend="native")`` gives the pipeline
        form when a :class:`RunResult` is wanted).  Bit-equal to the
        reference kernel.  Well-formed operands take the hoisted
        fast-path check (:func:`fast_check_operands`) — this is the
        production entry point and its per-call overhead matters.
        """
        x = fast_check_operands(matrix, x)
        split, _, _ = self._resolve(matrix, int(x.shape[1]))
        return multiply_partitioned(
            matrix, x, partition(matrix, self.threads, split))

    # ------------------------------------------------------------------
    def profile(self, matrix: CsrMatrix, x: np.ndarray,
                backend: str | None = None) -> RunResult:
        """Generate the specialized kernel and run it on the simulator.

        ``backend`` overrides the engine's configured simulator backend
        for this call (``"counts"``, ``"sim"``, ``"sim-fused"``)."""
        return self.run(matrix, x, backend=backend)

    # ------------------------------------------------------------------
    def inspect(self, matrix: CsrMatrix, x: np.ndarray) -> str:
        """Return the assembly listing the JIT would generate for (A, X).

        Generates against placeholder addresses — the instruction stream
        shape is what matters for inspection.
        """
        x = self._check_operands(matrix, x)
        _, dynamic, batch = self._resolve(matrix, int(x.shape[1]))
        spec = make_jit_spec(
            int(x.shape[1]), matrix.nrows, PLACEHOLDER_ADDRESSES,
            next_addr=PLACEHOLDER_NEXT_ADDR if dynamic else 0,
            batch=batch, threads=self.threads, isa=self.isa,
        )
        gen = JitCodegen(spec)
        program = (gen.build_dynamic_kernel() if dynamic
                   else gen.build_range_kernel())
        return program.listing()

    def plan(self, d: int) -> list:
        """The column-tile / register plan for ``d`` (paper Fig. 8)."""
        return tile_columns(d, self.isa)

    # ------------------------------------------------------------------
    _check_operands = staticmethod(check_operands)
