"""The user-facing JITSPMM engine (paper Fig. 5).

:class:`JitSpMM` wraps the whole workflow — assembly code generation,
thread spawning, execution, result joining — behind two entry points:

* :meth:`JitSpMM.multiply` — compute ``Y = A @ X`` with the fast numpy
  execution backend (same partitioning logic, host-speed arithmetic);
  use this in applications;
* :meth:`JitSpMM.profile` — generate the specialized kernel and execute
  it instruction-by-instruction on the simulated machine, returning the
  perf counters the paper's evaluation reports; use this to reproduce
  the experiments.

Example::

    engine = JitSpMM(split="merge", threads=8)
    y = engine.multiply(A, X)                    # fast result
    result = engine.profile(A, X)                # simulated, with counters
    print(result.counters)
    print(engine.inspect(A, X))                  # generated assembly
"""

from __future__ import annotations

import numpy as np

from repro.core.codegen import JitCodegen, JitKernelSpec
from repro.core.layout import tile_columns
from repro.core.runner import RunResult, auto_batch, run_jit
from repro.core.split import partition
from repro.errors import ShapeError
from repro.isa.isainfo import IsaLevel
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import spmm_reference

__all__ = ["JitSpMM", "SpmmResult"]

SpmmResult = RunResult  # public alias


class JitSpMM:
    """Just-in-time SpMM engine: ``Y = A @ X`` on the simulated CPU.

    Args:
        split: Workload division — ``"row"`` (default), ``"nnz"`` or
            ``"merge"`` (paper §IV-B).
        threads: Simulated CPU threads.
        dynamic: Use Listing-1 dynamic row dispatching (defaults to True
            for row-split, as in the paper; forced False otherwise).
        batch: Dynamic dispatch batch size; None (default) sizes it
            automatically from the row count (the paper's fixed 128 is
            the cap — see :func:`repro.core.runner.auto_batch`).
        isa: ISA level for code generation (``"avx512"`` default).
        timing: Model caches/pipeline when profiling (slower, gives
            cycle estimates); counts are identical either way.
    """

    def __init__(
        self,
        split: str = "row",
        threads: int = 8,
        dynamic: bool | None = None,
        batch: int | None = None,
        isa: IsaLevel | str = IsaLevel.AVX512,
        timing: bool = True,
    ) -> None:
        if threads <= 0:
            raise ShapeError(f"thread count must be positive, got {threads}")
        self.split = split
        self.threads = threads
        self.dynamic = (split == "row") if dynamic is None else dynamic
        if self.dynamic and split != "row":
            raise ShapeError("dynamic dispatch applies to row-split only")
        self.batch = batch
        self.isa = IsaLevel.parse(isa)
        self.timing = timing

    # ------------------------------------------------------------------
    def multiply(self, matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
        """Compute ``Y = A @ X`` with the fast numpy backend.

        Runs the same partitioning as the simulated path (so a bad split
        configuration fails identically), then evaluates each partition's
        rows with vectorized numpy.  Bit-equal to the reference kernel.
        """
        x = self._check_operands(matrix, x)
        ranges = partition(matrix, self.threads, self.split)
        y = np.zeros((matrix.nrows, x.shape[1]), dtype=np.float32)
        for r0, r1 in ranges:
            if r0 == r1:
                continue
            sub = CsrMatrix(
                r1 - r0, matrix.ncols,
                matrix.row_ptr[r0:r1 + 1] - matrix.row_ptr[r0],
                matrix.col_indices[matrix.row_ptr[r0]:matrix.row_ptr[r1]],
                matrix.vals[matrix.row_ptr[r0]:matrix.row_ptr[r1]],
            )
            y[r0:r1] = spmm_reference(sub, x)
        return y

    # ------------------------------------------------------------------
    def profile(self, matrix: CsrMatrix, x: np.ndarray) -> RunResult:
        """Generate the specialized kernel and run it on the simulator."""
        x = self._check_operands(matrix, x)
        return run_jit(
            matrix, x, split=self.split, threads=self.threads,
            dynamic=self.dynamic, batch=self.batch, isa=self.isa,
            timing=self.timing,
        )

    # ------------------------------------------------------------------
    def inspect(self, matrix: CsrMatrix, x: np.ndarray) -> str:
        """Return the assembly listing the JIT would generate for (A, X).

        Generates against placeholder addresses — the instruction stream
        shape is what matters for inspection.
        """
        x = self._check_operands(matrix, x)
        spec = JitKernelSpec(
            d=int(x.shape[1]), m=matrix.nrows,
            row_ptr_addr=0x10000, col_addr=0x20000, vals_addr=0x30000,
            x_addr=0x40000, y_addr=0x50000,
            next_addr=0x60000 if self.dynamic else 0,
            batch=self.batch or auto_batch(matrix.nrows, self.threads),
            isa=self.isa,
        )
        gen = JitCodegen(spec)
        program = (gen.build_dynamic_kernel() if self.dynamic
                   else gen.build_range_kernel())
        return program.listing()

    def plan(self, d: int) -> list:
        """The column-tile / register plan for ``d`` (paper Fig. 8)."""
        return tile_columns(d, self.isa)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_operands(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2:
            raise ShapeError(f"X must be 2-D, got ndim={x.ndim}")
        if x.shape[0] != matrix.ncols:
            raise ShapeError(
                f"dimension mismatch: A is {matrix.nrows}x{matrix.ncols}, "
                f"X is {x.shape[0]}x{x.shape[1]}"
            )
        if x.shape[1] <= 0:
            raise ShapeError("X must have at least one column")
        return np.ascontiguousarray(x, dtype=np.float32)
