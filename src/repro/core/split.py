"""Workload division: row-split, nnz-split, merge-split (paper §IV-B).

All three partitioners return row-granular, contiguous, covering ranges
``[(r0, r1), ...]`` — one per thread:

* **row-split** — equal row counts (may be badly nnz-imbalanced for
  skewed matrices, the paper's Fig. 6(a) critique);
* **nnz-split** — row boundaries chosen so each thread gets roughly
  equal non-zeros (binary search over ``row_ptr``);
* **merge-split** — the Merrill-Garland merge-path decomposition:
  balance ``rows + nnz`` (the total merge-path length) per thread via a
  2-D diagonal binary search, so row-loop overhead and non-zero work are
  balanced together.

The paper applies these row-granularly (each thread computes whole rows
and no cross-thread accumulation is needed); partial-row merge-path is
out of scope exactly as in the paper's Listing-2 kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CsrMatrix

__all__ = ["SPLITS", "merge_split", "nnz_split", "partition", "row_split"]

#: accepted ``split=`` names everywhere a split is configured (engine,
#: serving subsystem, :class:`repro.api.ExecutionConfig`).  ``"auto"``
#: is not a partitioner — it defers the choice to
#: :func:`repro.core.autotune.choose_split` at bind time.
SPLITS = ("row", "nnz", "merge", "auto")


def _check_threads(num_threads: int) -> None:
    if num_threads <= 0:
        raise ShapeError(f"thread count must be positive, got {num_threads}")


def _ranges_from_bounds(bounds: np.ndarray) -> list[tuple[int, int]]:
    return [(int(bounds[t]), int(bounds[t + 1])) for t in range(len(bounds) - 1)]


def row_split(matrix: CsrMatrix, num_threads: int) -> list[tuple[int, int]]:
    """Evenly split rows (paper Fig. 6(a))."""
    _check_threads(num_threads)
    bounds = np.linspace(0, matrix.nrows, num_threads + 1).astype(np.int64)
    return _ranges_from_bounds(bounds)


def nnz_split(matrix: CsrMatrix, num_threads: int) -> list[tuple[int, int]]:
    """Split at row boundaries nearest equal non-zero shares (Fig. 6(b))."""
    _check_threads(num_threads)
    nnz = matrix.nnz
    targets = np.linspace(0, nnz, num_threads + 1)
    bounds = np.searchsorted(matrix.row_ptr, targets, side="left")
    bounds[0], bounds[-1] = 0, matrix.nrows
    bounds = np.maximum.accumulate(bounds)
    return _ranges_from_bounds(bounds)


def merge_split(matrix: CsrMatrix, num_threads: int) -> list[tuple[int, int]]:
    """Merge-path split: equalize ``rows + nnz`` per thread (Fig. 6(c)).

    The merge path of Merrill & Garland walks an ``(m+1) x (nnz+1)`` grid;
    cutting it at diagonals ``k * (m + nnz) / T`` balances the combined
    row-traversal and non-zero work.  The cut diagonal intersects the path
    where ``r + row_ptr[r]`` first reaches the diagonal — a binary search,
    done here for all threads at once with ``searchsorted`` over the
    monotone array ``row_ptr[r] + r``.
    """
    _check_threads(num_threads)
    m, nnz = matrix.nrows, matrix.nnz
    path = matrix.row_ptr + np.arange(m + 1)  # monotone: r + row_ptr[r]
    diagonals = np.linspace(0, m + nnz, num_threads + 1)
    bounds = np.searchsorted(path, diagonals, side="left")
    bounds[0], bounds[-1] = 0, m
    bounds = np.maximum.accumulate(bounds)
    return _ranges_from_bounds(bounds)


_SPLITS = {"row": row_split, "nnz": nnz_split, "merge": merge_split}


def partition(matrix: CsrMatrix, num_threads: int,
              kind: str = "row") -> list[tuple[int, int]]:
    """Dispatch by split name: ``"row"``, ``"nnz"`` or ``"merge"``."""
    try:
        splitter = _SPLITS[kind]
    except KeyError:
        valid = ", ".join(sorted(_SPLITS))
        raise ShapeError(
            f"unknown split kind {kind!r}; expected one of: {valid}"
        ) from None
    return splitter(matrix, num_threads)
