"""JIT assembly code generation for SpMM (paper Listings 1 and 2).

Everything the AOT side must fetch from memory at run time is *baked into
the instruction stream* here: array base addresses are 64-bit immediates,
``d`` folds into scaled displacements, the column loop disappears
entirely (coarse-grain column merging, Alg. 2), and the accumulators for
one output row live in SIMD registers chosen by
:func:`repro.core.layout.plan_layout`.

Three kernel shapes are generated:

* **range kernel** — processes rows ``[rsi, rdx)``; used by the static
  row-split and by nnz-split / merge-split (whose ranges come from the
  host-side binary searches, paper §IV-B.2);
* **dynamic kernel** — the Listing-1 wrapper: threads fetch row batches
  from a shared ``NEXT`` counter with ``lock xadd`` (batch size 128);
* **single-row body** — the Listing-2 core shared by both.

Register plan (GPRs): rax/rbx/rcx/r8/r9 hold the five baked array bases,
rdi is the current row, r10/r11 the non-zero cursor and row end, r12 the
column index ``k`` (then the ``X`` row address), r13 the ``Y`` row
address, rsi/r14/r15 serve the dynamic dispatcher.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.layout import ColumnTile, RowLayout, tile_columns
from repro.errors import CodegenError
from repro.isa.assembler import Assembler, Program
from repro.isa.isainfo import IsaLevel, IsaSpec, isa_spec
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, xmm

__all__ = ["JitCodegen", "JitKernelSpec", "CodegenOutput"]

#: Paper §IV-B.1 footnote: "The batch size is set to 128 in this work."
DEFAULT_BATCH = 128


@dataclass(frozen=True)
class JitKernelSpec:
    """Runtime information the JIT bakes into the generated code.

    Attributes:
        d: Dense-matrix column count (known only at run time — the whole
            point of the JIT approach).
        m: Number of sparse rows.
        row_ptr_addr / col_addr / vals_addr / x_addr / y_addr: Base
            addresses of the five arrays in the simulated address space.
        next_addr: Address of the shared NEXT counter (dynamic dispatch).
        batch: Dynamic dispatch batch size.
        isa: ISA level to generate for.
    """

    d: int
    m: int
    row_ptr_addr: int
    col_addr: int
    vals_addr: int
    x_addr: int
    y_addr: int
    next_addr: int = 0
    batch: int = DEFAULT_BATCH
    isa: IsaLevel = IsaLevel.AVX512

    @property
    def spec(self) -> IsaSpec:
        return isa_spec(self.isa)


@dataclass
class CodegenOutput:
    """A generated program plus codegen-time statistics."""

    program: Program
    tiles: list[ColumnTile]
    codegen_seconds: float
    code_bytes: int = field(default=0)

    def listing(self) -> str:
        return self.program.listing()


class JitCodegen:
    """Generates specialized SpMM kernels from runtime information."""

    def __init__(self, spec: JitKernelSpec) -> None:
        if spec.d <= 0 or spec.m < 0:
            raise CodegenError(f"bad kernel spec: d={spec.d}, m={spec.m}")
        self.spec = spec
        self.tiles = tile_columns(spec.d, spec.isa)

    # ------------------------------------------------------------------
    # Listing 2: one row, coarse-grain column merging
    # ------------------------------------------------------------------
    def _emit_row_body(self, asm: Assembler, label_prefix: str) -> None:
        """Emit code computing row ``rdi`` of Y (paper Listing 2).

        With column tiling (d beyond register capacity) the non-zero list
        is walked once per tile; for the common single-tile case this is
        exactly the paper's structure.
        """
        spec = self.spec
        isa = spec.spec
        for tile_no, tile in enumerate(self.tiles):
            layout = tile.layout
            prefix = f"{label_prefix}_t{tile_no}"
            bcast = layout.broadcast
            # initialize the registers storing the results (vxorps idiom)
            for piece in layout.pieces:
                reg = piece.register
                asm.vxorps(reg, reg, reg)
            # load the start and end position of the nz list
            asm.mov(regs.r10, Mem(regs.rax, regs.rdi, 8, 0, size=8))
            asm.mov(regs.r11, Mem(regs.rax, regs.rdi, 8, 8, size=8))
            # r13 = &Y[rdi][tile.start]
            asm.mov(regs.r13, regs.rdi)
            asm.imul(regs.r13, regs.r13, Imm(4 * spec.d))
            asm.add(regs.r13, regs.r9)

            asm.label(f"{prefix}_nnzloop_start")
            asm.cmp(regs.r10, regs.r11)
            asm.jge(f"{prefix}_nnzloop_end")
            # load corresponding column id
            asm.mov(regs.r12, Mem(regs.rbx, regs.r10, 4, 0, size=4))
            # load the nz value and broadcast it
            if isa.max_vector_bits > 32:
                asm.vbroadcastss(bcast, Mem(regs.rcx, regs.r10, 4, 0, size=4))
            else:
                asm.vmovss(xmm(layout.broadcast_code),
                           Mem(regs.rcx, regs.r10, 4, 0, size=4))
            # r12 = &X[k][tile.start]
            asm.imul(regs.r12, regs.r12, Imm(4 * spec.d))
            asm.add(regs.r12, regs.r8)
            # accumulate the results
            for piece in layout.pieces:
                mem = Mem(regs.r12, disp=4 * (tile.start + piece.offset),
                          size=4 * piece.lanes)
                self._emit_accumulate(asm, layout, piece, mem)
            # next nz element
            asm.inc(regs.r10)
            asm.jmp(f"{prefix}_nnzloop_start")
            asm.label(f"{prefix}_nnzloop_end")
            # write the result into memory
            for piece in layout.pieces:
                mem = Mem(regs.r13, disp=4 * (tile.start + piece.offset),
                          size=4 * piece.lanes)
                if piece.is_scalar:
                    asm.vmovss(mem, xmm(piece.code))
                else:
                    asm.vmovups(mem, piece.register)

    def _emit_accumulate(self, asm: Assembler, layout: RowLayout,
                         piece, mem: Mem) -> None:
        isa = self.spec.spec
        bcast = layout.broadcast
        if piece.is_scalar:
            if isa.has_fma:
                asm.vfmadd231ss(xmm(piece.code), xmm(layout.broadcast_code), mem)
            else:
                scratch = xmm(layout.scratch_code)
                asm.vmulss(scratch, xmm(layout.broadcast_code), mem)
                asm.vaddss(xmm(piece.code), xmm(piece.code), scratch)
        else:
            reg = piece.register
            if isa.has_fma:
                asm.vfmadd231ps(reg, bcast.with_width(reg.width), mem)
            else:
                # pre-FMA path (SSE2-class): multiply into scratch, add
                scratch = xmm(layout.scratch_code).with_width(reg.width)
                asm.vmulps(scratch, bcast.with_width(reg.width), mem)
                asm.vaddps(reg, reg, scratch)

    # ------------------------------------------------------------------
    # Shared prologue: materialize baked addresses
    # ------------------------------------------------------------------
    def _emit_prologue(self, asm: Assembler) -> None:
        spec = self.spec
        asm.mov(regs.rax, Imm(spec.row_ptr_addr, 64))
        asm.mov(regs.rbx, Imm(spec.col_addr, 64))
        asm.mov(regs.rcx, Imm(spec.vals_addr, 64))
        asm.mov(regs.r8, Imm(spec.x_addr, 64))
        asm.mov(regs.r9, Imm(spec.y_addr, 64))

    # ------------------------------------------------------------------
    # Range kernel: rows [rsi, rdx)
    # ------------------------------------------------------------------
    def build_range_kernel(self) -> Program:
        asm = Assembler(f"jitspmm_range_d{self.spec.d}")
        self._emit_prologue(asm)
        asm.mov(regs.rdi, regs.rsi)
        asm.label("row_head")
        asm.cmp(regs.rdi, regs.rdx)
        asm.jge("done")
        self._emit_row_body(asm, "row")
        asm.inc(regs.rdi)
        asm.jmp("row_head")
        asm.label("done")
        asm.ret()
        return asm.finish()

    # ------------------------------------------------------------------
    # Listing 1: dynamic row dispatching
    # ------------------------------------------------------------------
    def build_dynamic_kernel(self) -> Program:
        spec = self.spec
        if spec.next_addr == 0:
            raise CodegenError("dynamic kernel requires next_addr")
        if spec.batch <= 0:
            raise CodegenError(f"batch must be positive, got {spec.batch}")
        asm = Assembler(f"jitspmm_dyn_d{spec.d}")
        self._emit_prologue(asm)
        # load the address of NEXT before the loop
        asm.mov(regs.r14, Imm(spec.next_addr, 64))
        asm.label("start")
        # load the batch number
        asm.mov(regs.rsi, Imm(spec.batch))
        # atomic exchange and add
        asm.xadd(Mem(regs.r14, size=8), regs.rsi, lock=True)
        # boundary check
        asm.cmp(regs.rsi, Imm(spec.m))
        asm.jge("end")
        # r15 = min(rsi + batch, m)
        asm.mov(regs.r15, regs.rsi)
        asm.add(regs.r15, Imm(spec.batch))
        asm.cmp(regs.r15, Imm(spec.m))
        asm.jle("batch_ready")
        asm.mov(regs.r15, Imm(spec.m))
        asm.label("batch_ready")
        asm.mov(regs.rdi, regs.rsi)
        asm.label("batch_head")
        asm.cmp(regs.rdi, regs.r15)
        asm.jge("start")
        self._emit_row_body(asm, "dyn")
        asm.inc(regs.rdi)
        asm.jmp("batch_head")
        asm.label("end")
        asm.ret()
        return asm.finish()

    # ------------------------------------------------------------------
    def generate(self, dynamic: bool = False) -> CodegenOutput:
        """Generate (and time) the requested kernel, including encoding.

        The returned ``codegen_seconds`` is real wall-clock time of
        assembly generation plus machine-code encoding — the numerator of
        the paper's Table IV overhead ratio.
        """
        t0 = time.perf_counter()
        program = self.build_dynamic_kernel() if dynamic else self.build_range_kernel()
        code = program.encode()
        seconds = time.perf_counter() - t0
        return CodegenOutput(program, self.tiles, seconds, len(code))
