"""repro: a reproduction of JITSPMM (CGO 2024).

Fu, Rolinger, Huang — "JITSPMM: Just-in-Time Instruction Generation for
Accelerated Sparse Matrix-Matrix Multiplication", arXiv:2312.05639.

Public API highlights:

* :func:`repro.run` / :mod:`repro.api` — the unified entry point: a
  registry of systems (``"jit"``, ``"aot:<personality>"``, ``"mkl"``,
  plus anything you :func:`repro.register`) behind one prepare → bind →
  execute pipeline with a validated :class:`repro.ExecutionConfig`;
* :mod:`repro.exec` — execution backends: ``"native"`` (host-speed
  numpy), ``"counts"`` (functional + event counters), ``"sim"``
  (cycle-accurate), ``"sim-fused"`` (superblock-compiled simulator),
  selected via ``ExecutionConfig.backend`` / ``repro.run(backend=...)``
  and extensible via :func:`repro.register_backend`;
* :class:`repro.JitSpMM` — the JIT SpMM engine (fast numpy backend and
  simulator-backed profiling);
* :class:`repro.CsrMatrix` — CSR sparse matrices;
* :mod:`repro.datasets` — scaled synthetic twins of the paper's 14
  SuiteSparse matrices;
* :mod:`repro.core.runner` — compatibility shims (``run_jit`` /
  ``run_aot`` / ``run_mkl``) over the pipeline, with perf counters;
* :class:`repro.serve.SpmmService` / :class:`repro.serve.KernelCache` —
  the serving subsystem: cached, autotuned kernels over request traffic
  for any registered system;
* :mod:`repro.bench` — harnesses regenerating every table and figure of
  the paper's evaluation.
"""

from repro.api import (
    ExecutionConfig,
    available_systems,
    get_system,
    register,
    run,
)
from repro.core.engine import JitSpMM, SpmmResult
from repro.exec import (
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
)
from repro.core.layout import plan_layout
from repro.core.split import merge_split, nnz_split, row_split
from repro.serve import KernelCache, SpmmService
from repro.sparse import CooMatrix, CsrMatrix, spmm_reference

__version__ = "1.2.0"

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "ExecutionConfig",
    "JitSpMM",
    "KernelCache",
    "SpmmResult",
    "SpmmService",
    "__version__",
    "available_systems",
    "get_system",
    "merge_split",
    "nnz_split",
    "plan_layout",
    "register",
    "row_split",
    "run",
    "spmm_reference",
]
