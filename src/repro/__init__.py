"""repro: a reproduction of JITSPMM (CGO 2024).

Fu, Rolinger, Huang — "JITSPMM: Just-in-Time Instruction Generation for
Accelerated Sparse Matrix-Matrix Multiplication", arXiv:2312.05639.

Public API highlights:

* :class:`repro.JitSpMM` — the JIT SpMM engine (fast numpy backend and
  simulator-backed profiling);
* :class:`repro.CsrMatrix` — CSR sparse matrices;
* :mod:`repro.datasets` — scaled synthetic twins of the paper's 14
  SuiteSparse matrices;
* :mod:`repro.core.runner` — run JIT / AOT personalities / MKL-like
  kernels on the simulated machine with perf counters;
* :class:`repro.serve.SpmmService` / :class:`repro.serve.KernelCache` —
  the serving subsystem: cached, autotuned kernels over request traffic;
* :mod:`repro.bench` — harnesses regenerating every table and figure of
  the paper's evaluation.
"""

from repro.core.engine import JitSpMM, SpmmResult
from repro.core.layout import plan_layout
from repro.core.split import merge_split, nnz_split, row_split
from repro.serve import KernelCache, SpmmService
from repro.sparse import CooMatrix, CsrMatrix, spmm_reference

__version__ = "1.1.0"

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "JitSpMM",
    "KernelCache",
    "SpmmResult",
    "SpmmService",
    "__version__",
    "merge_split",
    "nnz_split",
    "plan_layout",
    "row_split",
    "spmm_reference",
]
