"""Serving experiment: codegen overhead amortizes to ~0 under traffic.

The live extension of Table IV.  The paper measures codegen as a
fraction of *one* run's time; a service pays codegen once per kernel
and divides it over every request that reuses it, so the amortized
ratio ``codegen / (codegen + cumulative execution)`` — the same
``codegen_overhead`` metric — must fall strictly as the request count
grows, per dataset.  Each dataset is registered with a fresh
:class:`repro.serve.SpmmService` handle, a fixed-``d`` request stream
is replayed through the numpy fast path, and the overhead curve is
sampled at power-of-two checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import BenchConfig, render_table
from repro.serve import SpmmService

__all__ = ["ServingResult", "run_serving"]

_D = 16

#: request counts at which the amortized overhead curve is sampled
CHECKPOINTS = (1, 2, 4, 8, 16, 32)


@dataclass
class ServingResult:
    config: BenchConfig
    #: dataset -> [(requests_so_far, amortized codegen overhead %)]
    curves: dict[str, list[tuple[int, float]]]
    codegen_runs: dict[str, int]
    codegen_ms: dict[str, float]
    cold_ms: dict[str, float]
    warm_ms: dict[str, float]
    cache_report: str

    def render(self) -> str:
        headers = ["dataset", "codegen", "cold ms", "warm ms",
                   *[f"ovh% @{n}" for n in CHECKPOINTS]]
        rows = []
        for name, curve in self.curves.items():
            by_count = dict(curve)
            rows.append([
                name,
                f"{self.codegen_runs[name]}x {self.codegen_ms[name]:.2f}ms",
                f"{self.cold_ms[name]:.2f}",
                f"{self.warm_ms[name]:.3f}",
                *[f"{by_count[n]:.2f}" for n in CHECKPOINTS],
            ])
        title = (
            f"Serving amortization — SpmmService request replay (auto split, "
            f"d={_D}, {self.config.threads} threads).\n"
            "Codegen runs once per handle; the amortized Table-IV overhead "
            "falls toward zero as requests accumulate.\n"
            f"{self.cache_report}"
        )
        return render_table(headers, rows, title)

    # ------------------------------------------------------------------
    def overhead_strictly_decreasing(self) -> bool:
        """Acceptance check: every curve falls at every checkpoint.

        A curve that is identically zero (the handle's kernel was
        already cached under a shared identity, so its stream never
        paid codegen) is vacuously amortized and accepted.
        """
        return all(
            all(value == 0.0 for _, value in curve)
            or all(later < earlier for (_, earlier), (_, later)
                   in zip(curve, curve[1:]))
            for curve in self.curves.values()
        )

    def codegen_amortized(self) -> bool:
        """Codegen ran at most once per dataset despite many requests.

        Zero runs means the dataset's kernel identity collided with an
        earlier dataset's (same-shaped twins share one cached kernel) —
        amortization at its best.
        """
        return all(runs <= 1 for runs in self.codegen_runs.values())


def run_serving(config: BenchConfig | None = None) -> ServingResult:
    """Replay ``max(CHECKPOINTS)`` requests per dataset, sampling curves."""
    config = config or BenchConfig()
    service = SpmmService(threads=config.threads, split="auto", timing=False)
    curves: dict[str, list[tuple[int, float]]] = {}
    codegen_runs, codegen_ms, cold_ms, warm_ms = {}, {}, {}, {}
    for name in config.datasets:
        matrix = config.matrix(name)
        x = config.dense(name, _D)
        handle = service.register(matrix, name)
        curve = []
        for count in range(1, max(CHECKPOINTS) + 1):
            service.multiply(handle, x)
            if count in CHECKPOINTS:
                stats = service.handle_stats(handle)
                curve.append((count, 100.0 * stats.codegen_overhead()))
        curves[name] = curve
        stats = service.handle_stats(handle)
        codegen_runs[name] = stats.codegen_runs
        codegen_ms[name] = 1e3 * stats.codegen_seconds
        cold_ms[name] = 1e3 * stats.cold.mean_seconds
        warm_ms[name] = 1e3 * stats.warm.mean_seconds
    return ServingResult(
        config, curves, codegen_runs, codegen_ms, cold_ms, warm_ms,
        cache_report=service.cache.stats().render(),
    )
