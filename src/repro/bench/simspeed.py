"""Simspeed: simulated instructions/sec per execution backend.

The tentpole claim of the :mod:`repro.exec` layer is that the
superblock-compiled simulator (``"sim-fused"``) retires the Fig-9
workloads' instruction streams several times faster than the
cycle-accurate ``"sim"`` backend while staying bit-identical on results
and event counters.  This micro-benchmark measures it: for each dataset
twin, one JIT kernel is generated and bound once, then executed under
every backend on the same plan, timing pure execution (codegen and
operand mapping excluded).  Rows are emitted both as a rendered table
and as ``BENCH_simspeed.json`` (path overridable via
``REPRO_BENCH_SIMSPEED_JSON``), which CI regenerates at tiny scale so
the simulator's performance trajectory is tracked per commit.

``native`` rows report wall time only — the numpy backend retires no
simulated instructions, so instructions/sec is not defined for it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.api import ExecutionConfig, get_system
from repro.bench.harness import (
    BENCH_L1,
    BENCH_L2,
    BenchConfig,
    geometric_mean,
    render_table,
)

__all__ = ["SimspeedResult", "run_simspeed"]

#: the Fig-9 operating point: row split, d = 16 (the paper's common
#: column count), the harness's thread count
_D = 16

#: measured backends, slowest-fidelity first; ``sim`` is the speedup
#: baseline the acceptance target (>= 3x for ``sim-fused``) is against
BACKENDS = ("native", "counts", "sim", "sim-fused")

DEFAULT_JSON_PATH = "BENCH_simspeed.json"

#: each cell reports the best of this many runs (single runs on the
#: tiny twins are noisy); override via REPRO_BENCH_SIMSPEED_REPEATS
DEFAULT_REPEATS = 3


@dataclass
class SimspeedResult:
    config: BenchConfig
    #: (dataset, backend) -> row dict (seconds, instructions, ips)
    rows: dict[tuple[str, str], dict]
    json_path: str

    def ips(self, dataset: str, backend: str) -> float | None:
        return self.rows[(dataset, backend)]["ips"]

    def speedup_vs_sim(self, backend: str) -> float:
        """Geometric-mean instructions/sec ratio over ``"sim"``."""
        ratios = []
        for dataset in self.datasets():
            sim = self.ips(dataset, "sim")
            other = self.ips(dataset, backend)
            if sim and other:
                ratios.append(other / sim)
        return geometric_mean(ratios)

    def datasets(self) -> list[str]:
        return sorted({dataset for dataset, _ in self.rows},
                      key=list(self.config.datasets).index)

    # ------------------------------------------------------------------
    def as_payload(self) -> dict:
        """The JSON document CI archives (one row per backend cell)."""
        return {
            "experiment": "simspeed",
            "scale": self.config.scale,
            "threads": self.config.threads,
            "d": _D,
            "split": "row",
            "rows": [
                {"dataset": dataset, "backend": backend, **row}
                for (dataset, backend), row in sorted(self.rows.items())
            ],
            "speedup_vs_sim": {
                backend: self.speedup_vs_sim(backend)
                for backend in BACKENDS if backend != "native"
            },
        }

    def render(self) -> str:
        headers = ["dataset", *[f"{b} Mi/s" for b in BACKENDS]]
        table_rows = []
        for dataset in self.datasets():
            cells = [dataset]
            for backend in BACKENDS:
                ips = self.ips(dataset, backend)
                cells.append("-" if ips is None else f"{ips / 1e6:.3f}")
            table_rows.append(cells)
        table_rows.append(["(speedup vs sim)", "-"] + [
            f"{self.speedup_vs_sim(b):.2f}x"
            for b in BACKENDS if b != "native"])
        title = (
            "Simspeed — simulated instructions/sec per execution backend "
            f"(jit, row split, d={_D}, {self.config.threads} threads).\n"
            "sim-fused runs the superblock-compiled simulator: "
            "bit-identical results/counters to sim, no cycle model.\n"
            f"JSON written to {self.json_path}"
        )
        return render_table(headers, table_rows, title)


def run_simspeed(config: BenchConfig | None = None) -> SimspeedResult:
    """Measure every backend on every dataset twin; write the JSON."""
    config = config or BenchConfig()
    repeats = max(1, int(os.environ.get("REPRO_BENCH_SIMSPEED_REPEATS",
                                        DEFAULT_REPEATS)))
    rows: dict[tuple[str, str], dict] = {}
    for dataset in config.datasets:
        matrix = config.matrix(dataset)
        x = config.dense(dataset, _D)
        # one plan per dataset: codegen and operand mapping are paid
        # once, outside every timed region, so rows measure execution
        plan = get_system("jit").prepare(ExecutionConfig(
            split="row", threads=config.threads, timing=False,
            l1=BENCH_L1, l2=BENCH_L2,
        )).bind(matrix, x)
        for backend in BACKENDS:
            seconds = float("inf")
            for _ in range(repeats):
                plan.refresh(x)  # zero Y, re-arm the dynamic dispatcher
                started = time.perf_counter()
                result = plan.execute(backend=backend)
                seconds = min(seconds, time.perf_counter() - started)
            instructions = result.counters.instructions
            rows[(dataset, backend)] = {
                "seconds": seconds,
                "instructions": instructions,
                "ips": instructions / seconds if instructions else None,
            }
    json_path = os.environ.get("REPRO_BENCH_SIMSPEED_JSON",
                               DEFAULT_JSON_PATH)
    result = SimspeedResult(config=config, rows=rows, json_path=json_path)
    with open(json_path, "w") as handle:
        json.dump(result.as_payload(), handle, indent=2)
        handle.write("\n")
    return result
