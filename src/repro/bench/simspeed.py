"""Simspeed: simulated instructions/sec per execution backend.

The tentpole claim of the simulator stack is that specialization beats
interpretation twice over: superblock-compiled execution plus the
record/replay timing engine (``"sim-fused"``) retires the Fig-9
workloads' instruction streams — *with* cycle-accurate timing — several
times faster than the per-access reference path (``"sim-ref"``, the
engine ``sim`` used before trace replay) while staying bit-identical on
every counter.  This micro-benchmark measures it: for each dataset
twin, one JIT kernel is generated and bound once, then executed under
every backend on the same plan, timing pure execution (codegen and
operand mapping excluded).  Rows are emitted both as a rendered table
and as ``BENCH_simspeed.json`` (path overridable via
``REPRO_BENCH_SIMSPEED_JSON``), which CI regenerates at tiny scale so
the simulator's performance trajectory is tracked per commit; the CI
step fails the build when the replay-backed ``sim-fused`` drops below
the 3x acceptance target over ``sim-ref``.

``native`` rows report wall time only — the numpy backend retires no
simulated instructions, so instructions/sec is not defined for it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.api import ExecutionConfig, get_system
from repro.bench.harness import (
    BENCH_L1,
    BENCH_L2,
    BenchConfig,
    geometric_mean,
    render_table,
)

__all__ = ["SimspeedResult", "run_simspeed"]

#: the Fig-9 operating point: row split, d = 16 (the paper's common
#: column count), the harness's thread count
_D = 16

#: measured backends, slowest-fidelity first; ``sim-ref`` — the
#: per-access timing path — is the speedup baseline the acceptance
#: target (>= 3x for the replay-backed ``sim-fused``) is against
BACKENDS = ("native", "counts", "sim-ref", "sim", "sim-fused")

#: the speedup denominator (the pre-replay ``sim`` implementation)
BASELINE = "sim-ref"

DEFAULT_JSON_PATH = "BENCH_simspeed.json"

#: each cell reports the best of this many runs (single runs on the
#: tiny twins are noisy); override via REPRO_BENCH_SIMSPEED_REPEATS
DEFAULT_REPEATS = 3


@dataclass
class SimspeedResult:
    config: BenchConfig
    #: (dataset, backend) -> row dict (seconds, instructions, ips)
    rows: dict[tuple[str, str], dict]
    json_path: str

    def ips(self, dataset: str, backend: str) -> float | None:
        return self.rows[(dataset, backend)]["ips"]

    def speedup_vs_sim(self, backend: str) -> float:
        """Geometric-mean instructions/sec ratio over the per-access
        reference (:data:`BASELINE` — the engine ``sim`` ran before the
        record/replay split, so the trajectory stays comparable)."""
        ratios = []
        for dataset in self.datasets():
            base = self.ips(dataset, BASELINE)
            other = self.ips(dataset, backend)
            if base and other:
                ratios.append(other / base)
        return geometric_mean(ratios)

    def datasets(self) -> list[str]:
        return sorted({dataset for dataset, _ in self.rows},
                      key=list(self.config.datasets).index)

    # ------------------------------------------------------------------
    def as_payload(self) -> dict:
        """The JSON document CI archives (one row per backend cell)."""
        return {
            "experiment": "simspeed",
            "scale": self.config.scale,
            "threads": self.config.threads,
            "d": _D,
            "split": "row",
            "baseline": BASELINE,
            "rows": [
                {"dataset": dataset, "backend": backend, **row}
                for (dataset, backend), row in sorted(self.rows.items())
            ],
            "speedup_vs_sim": {
                backend: self.speedup_vs_sim(backend)
                for backend in BACKENDS
                if backend not in ("native", BASELINE)
            },
        }

    def render(self) -> str:
        headers = ["dataset", *[f"{b} Mi/s" for b in BACKENDS]]
        table_rows = []
        for dataset in self.datasets():
            cells = [dataset]
            for backend in BACKENDS:
                ips = self.ips(dataset, backend)
                cells.append("-" if ips is None else f"{ips / 1e6:.3f}")
            table_rows.append(cells)
        table_rows.append([f"(speedup vs {BASELINE})", "-"] + [
            "1.00x" if b == BASELINE else f"{self.speedup_vs_sim(b):.2f}x"
            for b in BACKENDS if b != "native"])
        title = (
            "Simspeed — simulated instructions/sec per execution backend "
            f"(jit, row split, d={_D}, {self.config.threads} threads).\n"
            "sim/sim-fused run the record/replay timing engine "
            "(superblock-compiled for sim-fused): bit-identical counters\n"
            "— cycles included — to the per-access sim-ref path.\n"
            f"JSON written to {self.json_path}"
        )
        return render_table(headers, table_rows, title)


def run_simspeed(config: BenchConfig | None = None) -> SimspeedResult:
    """Measure every backend on every dataset twin; write the JSON."""
    config = config or BenchConfig()
    repeats = max(1, int(os.environ.get("REPRO_BENCH_SIMSPEED_REPEATS",
                                        DEFAULT_REPEATS)))
    rows: dict[tuple[str, str], dict] = {}
    for dataset in config.datasets:
        matrix = config.matrix(dataset)
        x = config.dense(dataset, _D)
        # one plan per dataset: codegen and operand mapping are paid
        # once, outside every timed region, so rows measure execution
        plan = get_system("jit").prepare(ExecutionConfig(
            split="row", threads=config.threads, timing=False,
            l1=BENCH_L1, l2=BENCH_L2,
        )).bind(matrix, x)
        for backend in BACKENDS:
            seconds = float("inf")
            for _ in range(repeats):
                plan.refresh(x)  # zero Y, re-arm the dynamic dispatcher
                started = time.perf_counter()
                result = plan.execute(backend=backend)
                seconds = min(seconds, time.perf_counter() - started)
            instructions = result.counters.instructions
            rows[(dataset, backend)] = {
                "seconds": seconds,
                "instructions": instructions,
                "ips": instructions / seconds if instructions else None,
            }
    json_path = os.environ.get("REPRO_BENCH_SIMSPEED_JSON",
                               DEFAULT_JSON_PATH)
    result = SimspeedResult(config=config, rows=rows, json_path=json_path)
    with open(json_path, "w") as handle:
        json.dump(result.as_payload(), handle, indent=2)
        handle.write("\n")
    return result
