"""Figure 11: profiling analysis — loads, branches, misses, instructions.

The paper's four log-scale charts (d=16): auto-vectorization and JITSPMM
averaged over the three split methods, MKL as-is.  Expected shape
(paper §V-D): JITSPMM lowest on memory loads (2.8x / 2x fewer than
auto-vec / MKL), branches (3.8x / 2.9x), and instructions (7.9x / 2x);
branch *misses* improve least (1.4x vs auto-vec, parity with MKL) because
the predictor absorbs most of the extra branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.fig9 import SPLITS
from repro.bench.harness import BenchConfig, arithmetic_mean, render_table
from repro.machine.counters import Counters

__all__ = ["Fig11Result", "run_fig11"]

_D = 16
METRICS = ("memory_loads", "branches", "branch_misses", "instructions")
SYSTEMS = ("icc-avx512", "mkl", "jit")

#: paper-quoted average reduction factors (auto-vec / MKL relative to JIT)
PAPER_FIG11_RATIOS = {
    "memory_loads": (2.8, 2.0),
    "branches": (3.8, 2.9),
    "branch_misses": (1.4, 1.0),
    "instructions": (7.9, 2.0),
}


@dataclass
class Fig11Result:
    config: BenchConfig
    #: (system, dataset) -> split-averaged counters
    profiles: dict[tuple[str, str], Counters]

    def value(self, system: str, dataset: str, metric: str) -> float:
        return getattr(self.profiles[(system, dataset)], metric)

    def average_ratio(self, metric: str, system: str) -> float:
        """Mean over datasets of system/JIT for a metric."""
        ratios = []
        for dataset in self.config.datasets:
            jit = self.value("jit", dataset, metric)
            if jit:
                ratios.append(self.value(system, dataset, metric) / jit)
        return arithmetic_mean(ratios)

    def render(self) -> str:
        blocks = []
        subfig = dict(zip(METRICS, "abcd"))
        for metric in METRICS:
            headers = ["dataset", "auto-vec", "mkl", "jit"]
            rows = [
                [dataset] + [
                    f"{self.value(system, dataset, metric):,.0f}"
                    for system in SYSTEMS
                ]
                for dataset in self.config.datasets
            ]
            paper_av, paper_mkl = PAPER_FIG11_RATIOS[metric]
            rows.append([
                "(avg vs jit)",
                f"{self.average_ratio(metric, 'icc-avx512'):.2f}x",
                f"{self.average_ratio(metric, 'mkl'):.2f}x",
                "1.00x",
            ])
            rows.append(["(paper)", f"{paper_av:.1f}x", f"{paper_mkl:.1f}x",
                         "1.0x"])
            blocks.append(render_table(
                headers, rows,
                f"Fig. 11({subfig[metric]}) — {metric} (d={_D}, "
                f"split-averaged)"))
        return "\n\n".join(blocks)


def _split_average(counters_list: list[Counters]) -> Counters:
    merged = Counters()
    for counters in counters_list:
        merged.merge(counters)
    return merged.scaled(1.0 / len(counters_list))


def run_fig11(config: BenchConfig | None = None) -> Fig11Result:
    """Collect the profiling grid (reuses Fig. 9/10 cached runs)."""
    config = config or BenchConfig()
    profiles: dict[tuple[str, str], Counters] = {}
    for dataset in config.datasets:
        for system in ("icc-avx512", "jit"):
            runs = [config.run(system, dataset, _D, split=split, timing=True)
                    for split in SPLITS]
            profiles[(system, dataset)] = _split_average(
                [r.counters for r in runs])
        mkl = config.run("mkl", dataset, _D, split="row", timing=True)
        profiles[("mkl", dataset)] = mkl.counters
    return Fig11Result(config, profiles)
