"""CLI for the experiment harnesses: ``python -m repro.bench [names...]``.

Runs the requested experiments (default: all) and prints their rendered
tables.  Honors the same environment knobs as the pytest benchmarks
(``REPRO_BENCH_SCALE``, ``REPRO_BENCH_THREADS``, ``REPRO_BENCH_DATASETS``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.ablations import run_ablations
from repro.bench.chaos import run_chaos
from repro.bench.fig9 import run_fig9
from repro.bench.fig10 import run_fig10
from repro.bench.fig11 import run_fig11
from repro.bench.harness import BenchConfig
from repro.bench.obsoverhead import run_obsoverhead
from repro.bench.passsearch import run_passsearch
from repro.bench.servethroughput import run_servethroughput
from repro.bench.serving import run_serving
from repro.bench.simspeed import run_simspeed
from repro.bench.table2 import run_table2
from repro.bench.table4 import run_table4

EXPERIMENTS = {
    "table2": run_table2,
    "table4": run_table4,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "ablations": run_ablations,
    "serving": run_serving,
    "simspeed": run_simspeed,
    "servethroughput": run_servethroughput,
    "obsoverhead": run_obsoverhead,
    "passsearch": run_passsearch,
    "chaos": run_chaos,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", default=list(EXPERIMENTS),
                        help=f"subset of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale relative to Table III")
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--networked", action="store_true",
                        help="servethroughput only: also measure "
                        "closed-loop clients over the real socket "
                        "protocol against a local worker-pool gateway")
    args = parser.parse_args(argv)
    if args.networked:
        import os

        os.environ["REPRO_BENCH_SERVE_NETWORKED"] = "1"

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.threads is not None:
        overrides["threads"] = args.threads
    config = BenchConfig(**overrides)

    for name in names:
        started = time.perf_counter()
        result = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - started
        print()
        print("=" * 78)
        print(f"{name}  (ran in {elapsed:.1f}s)")
        print("=" * 78)
        print(result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
