"""Benchmark harnesses regenerating the paper's tables and figures.

One module per experiment (see DESIGN.md's experiment index):

* :mod:`repro.bench.table2` — single-thread scalar SpMM comparison;
* :mod:`repro.bench.table4` — JIT code-generation overhead;
* :mod:`repro.bench.fig9`   — speedups over icc auto-vectorization;
* :mod:`repro.bench.fig10`  — speedups over the MKL-like kernel;
* :mod:`repro.bench.fig11`  — profiling metrics across systems;
* :mod:`repro.bench.ablations` — design-choice studies beyond the paper;
* :mod:`repro.bench.serving` — codegen amortization under request
  traffic (the live Table IV, via :mod:`repro.serve`).

All harnesses run on the scaled dataset twins (:mod:`repro.datasets`) and
report the paper's expected values next to the measured ones; shapes, not
absolute numbers, are the reproduction target (see EXPERIMENTS.md).
"""

from repro.bench.harness import BenchConfig, arithmetic_mean, geometric_mean

__all__ = ["BenchConfig", "arithmetic_mean", "geometric_mean"]
