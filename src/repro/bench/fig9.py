"""Figure 9: speedups of JITSPMM over icc auto-vectorization.

The paper's grid: 14 datasets x 3 workload-division methods x d in
{16, 32}, JITSPMM time vs the Merrill-Garland-style C++ SpMM compiled
with ``icc -O3 -mavx512f`` (our ``icc-avx512`` personality).  Paper
averages: 3.5x/3.5x/3.3x (row/nnz/merge) at d=16 and 4.1x/4.2x/4.1x at
d=32, maxima up to 10x.  Reproduction target: JIT wins everywhere, the
average sits in the same few-x band, and d=32 speedups exceed d=16.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import BenchConfig, arithmetic_mean, render_table

__all__ = ["Fig9Result", "run_fig9"]

SPLITS = ("row", "nnz", "merge")
COLUMN_COUNTS = (16, 32)
BASELINE = "icc-avx512"

#: paper-reported average speedups per (d, split)
PAPER_FIG9_AVG = {
    (16, "row"): 3.5, (16, "nnz"): 3.5, (16, "merge"): 3.3,
    (32, "row"): 4.1, (32, "nnz"): 4.2, (32, "merge"): 4.1,
}


@dataclass
class FigSpeedups:
    """Speedups for one baseline: (d, split, dataset) -> factor."""

    baseline: str
    speedups: dict[tuple[int, str, str], float] = field(default_factory=dict)

    def series(self, d: int, split: str) -> dict[str, float]:
        return {
            dataset: factor
            for (dd, ss, dataset), factor in self.speedups.items()
            if dd == d and ss == split
        }

    def average(self, d: int, split: str) -> float:
        return arithmetic_mean(self.series(d, split).values())

    def maximum(self, d: int, split: str) -> float:
        values = self.series(d, split).values()
        return max(values) if values else 0.0


@dataclass
class Fig9Result:
    config: BenchConfig
    data: FigSpeedups

    paper_averages = PAPER_FIG9_AVG

    def render(self) -> str:
        blocks = []
        for d in COLUMN_COUNTS:
            headers = ["dataset", *SPLITS]
            datasets = sorted({k[2] for k in self.data.speedups if k[0] == d},
                              key=list(self.config.datasets).index)
            rows = [
                [name] + [f"{self.data.speedups[(d, s, name)]:.2f}"
                          for s in SPLITS]
                for name in datasets
            ]
            rows.append(["(average)"] + [
                f"{self.data.average(d, s):.2f}" for s in SPLITS])
            rows.append(["(paper avg)"] + [
                f"{self.paper_averages[(d, s)]:.2f}" for s in SPLITS])
            blocks.append(render_table(
                headers, rows,
                f"Fig. 9({'a' if d == 16 else 'b'}) — JITSPMM speedup over "
                f"auto-vectorization, column number {d}"))
        return "\n\n".join(blocks)


def _collect(config: BenchConfig, baseline: str) -> FigSpeedups:
    data = FigSpeedups(baseline)
    for d in COLUMN_COUNTS:
        for dataset in config.datasets:
            for split in SPLITS:
                jit = config.run("jit", dataset, d, split=split, timing=True)
                base = config.run(baseline, dataset, d, split=split,
                                  timing=True)
                data.speedups[(d, split, dataset)] = (
                    base.counters.cycles / jit.counters.cycles)
    return data


def run_fig9(config: BenchConfig | None = None) -> Fig9Result:
    """Run the Figure 9 grid (the heaviest experiment)."""
    config = config or BenchConfig()
    return Fig9Result(config, _collect(config, BASELINE))
