"""Passsearch: feedback-directed AOT search vs fixed-function lowering.

The AOT personalities historically lowered Algorithm 1 with a
hard-coded unroll factor and no cleanup passes — the fixed-function
baseline.  :func:`repro.aot.search.search_passes` instead treats the
replay simulator as a cost oracle: it coordinate-descends over the
:class:`~repro.aot.passes.PassConfig` lattice (unroll factor x pass
set), scoring candidates by simulated cycles on a downsampled operand
sample and rejecting anything that is not bit-identical to the
baseline.  This benchmark closes the loop at full scale: for every
personality x dataset cell it measures whole-matrix simulated cycles
under the fixed-function config (``opt_level=0``) and under the
searched winner, plus the search's own wall-clock cost.

Rows land in ``BENCH_passsearch.json`` (path overridable via
``REPRO_BENCH_PASSSEARCH_JSON``); CI regenerates the document at tiny
scale and fails the build if a searched cell ever regresses past its
fixed-function baseline — the search's never-regress contract, checked
on the full matrix rather than the sample it optimized against.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.api import get_system
from repro.aot.compiler import PERSONALITIES
from repro.aot.search import search_passes
from repro.bench.harness import (
    BENCH_L1,
    BENCH_L2,
    BenchConfig,
    render_table,
)

__all__ = ["PasssearchResult", "run_passsearch"]

#: the paper's common column count — also what the search samples at
_D = 16

DEFAULT_JSON_PATH = "BENCH_passsearch.json"

#: candidate compilations per search; override via
#: REPRO_BENCH_PASSSEARCH_BUDGET
DEFAULT_BUDGET = 12


@dataclass
class PasssearchResult:
    config: BenchConfig
    #: (personality, dataset) -> row dict
    rows: dict[tuple[str, str], dict]
    json_path: str

    def reduction_pct(self, personality: str, dataset: str) -> float:
        return self.rows[(personality, dataset)]["reduction_pct"]

    def max_reduction_pct(self) -> float:
        return max(row["reduction_pct"] for row in self.rows.values())

    def never_regressed(self) -> bool:
        """True iff no searched cell is slower than its fixed baseline."""
        return all(row["cycles_searched"] <= row["cycles_fixed"]
                   for row in self.rows.values())

    # ------------------------------------------------------------------
    def as_payload(self) -> dict:
        """The JSON document CI archives (one row per cell)."""
        return {
            "experiment": "passsearch",
            "scale": self.config.scale,
            "threads": self.config.threads,
            "d": _D,
            "split": "row",
            "rows": [
                {"personality": personality, "dataset": dataset, **row}
                for (personality, dataset), row in sorted(self.rows.items())
            ],
            "summary": {
                "max_reduction_pct": self.max_reduction_pct(),
                "never_regressed": self.never_regressed(),
            },
        }

    def render(self) -> str:
        headers = ["personality", "dataset", "fixed Mcyc", "searched Mcyc",
                   "reduction", "winner", "search s"]
        table_rows = []
        for (personality, dataset), row in sorted(self.rows.items()):
            table_rows.append([
                personality, dataset,
                f"{row['cycles_fixed'] / 1e6:.3f}",
                f"{row['cycles_searched'] / 1e6:.3f}",
                f"{row['reduction_pct']:+.1f}%",
                row["config"],
                f"{row['search_seconds']:.2f}",
            ])
        title = (
            "Passsearch — whole-matrix simulated cycles, fixed-function "
            f"lowering vs searched pass pipeline (d={_D}, row split, "
            f"{self.config.threads} threads).\n"
            "Every winner is bit-identical to its personality's baseline "
            "output; ties keep the baseline (never-regress).\n"
            f"best cell: {self.max_reduction_pct():+.1f}% — "
            f"JSON written to {self.json_path}"
        )
        return render_table(headers, table_rows, title)


def _full_cycles(personality: str, matrix, x, config: BenchConfig,
                 opt_level: int, budget: int):
    """Whole-matrix simulated cycles at one opt level; returns
    ``(cycles, y)`` so callers can cross-check bit-identity."""
    artifact = get_system(f"aot:{personality}").prepare(
        split="row", threads=config.threads, dynamic=False,
        backend="sim-fused", l1=BENCH_L1, l2=BENCH_L2,
        opt_level=opt_level, search_budget=budget)
    plan = artifact.bind(matrix, x)
    result = plan.execute()
    return int(result.counters.cycles), result.y


def run_passsearch(config: BenchConfig | None = None) -> PasssearchResult:
    """Search every personality on every dataset twin; write the JSON."""
    config = config or BenchConfig()
    budget = max(1, int(os.environ.get("REPRO_BENCH_PASSSEARCH_BUDGET",
                                       DEFAULT_BUDGET)))
    rows: dict[tuple[str, str], dict] = {}
    for dataset in config.datasets:
        matrix = config.matrix(dataset)
        x = config.dense(dataset, _D)
        for personality in PERSONALITIES:
            cycles_fixed, y_fixed = _full_cycles(
                personality, matrix, x, config, 0, budget)
            started = time.perf_counter()
            choice = search_passes(personality, matrix, _D, budget=budget,
                                   l1=BENCH_L1, l2=BENCH_L2)
            search_seconds = time.perf_counter() - started
            # opt 3 resolves to the memoized verdict searched above, so
            # this measures the winner at full scale without re-searching
            cycles_searched, y_searched = _full_cycles(
                personality, matrix, x, config, 3, budget)
            rows[(personality, dataset)] = {
                "cycles_fixed": cycles_fixed,
                "cycles_searched": cycles_searched,
                "reduction_pct": 100.0 * (1.0 - cycles_searched
                                          / cycles_fixed),
                "config": choice.config.ident(),
                "sample_cycles": choice.cycles,
                "sample_baseline_cycles": choice.baseline_cycles,
                "candidates": choice.evaluated,
                "rejected": choice.rejected,
                "search_seconds": search_seconds,
                "bit_identical": bool(np.array_equal(
                    y_searched, y_fixed, equal_nan=True)),
            }
    json_path = os.environ.get("REPRO_BENCH_PASSSEARCH_JSON",
                               DEFAULT_JSON_PATH)
    result = PasssearchResult(config=config, rows=rows, json_path=json_path)
    with open(json_path, "w") as handle:
        json.dump(result.as_payload(), handle, indent=2)
        handle.write("\n")
    return result
