"""Table II: single-thread *scalar* SpMM — JIT vs gcc / clang / icc.

The paper's motivating experiment (§III-B): Algorithm 1 compiled by three
AOT compilers (no SIMD, no threads) against the scalar JIT kernel, on
uk-2005 with an 8-column dense operand.  Five metrics: execution time,
memory loads, branches, branch misses, instructions.

Paper values (Table II) for reference::

             gcc   clang  icc   JIT
  time (s)   8.6   9.1    6.3   3
  loads (B)  2.2   2.3    2.4   0.9
  branches   813M  489M   233M  196M
  misses     6.6M  5.3M   5.5M  2.7M
  insns (B)  7.0   6.4    5.4   1.6

The reproduction target is the *shape*: JIT fastest with ~2-3x fewer
loads and ~3-4x fewer instructions; branch counts fall as compiler unroll
factors rise (gcc 1x > clang 2x > icc 4x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import BenchConfig, render_table
from repro.machine.counters import Counters

__all__ = ["Table2Result", "run_table2"]

_DATASET = "uk-2005"
_D = 8
_SYSTEMS = ("gcc", "clang", "icc", "jit")

#: paper Table II values, for side-by-side reporting
PAPER_TABLE2 = {
    "gcc": dict(seconds=8.6, loads=2.2e9, branches=813e6, misses=6.6e6,
                insns=7.0e9),
    "clang": dict(seconds=9.1, loads=2.3e9, branches=489e6, misses=5.3e6,
                  insns=6.4e9),
    "icc": dict(seconds=6.3, loads=2.4e9, branches=233e6, misses=5.5e6,
                insns=5.4e9),
    "jit": dict(seconds=3.0, loads=0.9e9, branches=196e6, misses=2.7e6,
                insns=1.6e9),
}


@dataclass
class Table2Result:
    config: BenchConfig
    counters: dict[str, Counters]

    def ratio(self, metric: str, system: str) -> float:
        """system / JIT for a metric (the paper's improvement factors)."""
        jit = getattr(self.counters["jit"], metric)
        other = getattr(self.counters[system], metric)
        return other / jit if jit else float("inf")

    def render(self) -> str:
        headers = ["metric", *_SYSTEMS, "| paper gcc/clang/icc vs JIT",
                   "measured"]
        metrics = [
            ("exec time (ms)", "cycles", 1),
            ("memory loads", "memory_loads", 0),
            ("branches", "branches", 0),
            ("branch misses", "branch_misses", 0),
            ("instructions", "instructions", 0),
        ]
        paper_ratios = {
            "cycles": "2.9/3.0/2.1x",
            "memory_loads": "2.4/2.6/2.7x",
            "branches": "4.1/2.5/1.2x",
            "branch_misses": "2.4/2.0/2.0x",
            "instructions": "4.4/4.0/3.4x",
        }
        rows = []
        for label, metric, as_ms in metrics:
            row = [label]
            for system in _SYSTEMS:
                value = getattr(self.counters[system], metric)
                if as_ms:
                    row.append(f"{value / (self.config.ghz * 1e6):.3f}")
                else:
                    row.append(f"{value:,.0f}")
            row.append(paper_ratios[metric])
            measured = "/".join(
                f"{self.ratio(metric, s):.1f}" for s in ("gcc", "clang", "icc"))
            row.append(measured + "x")
            rows.append(row)
        title = (f"Table II reproduction — single-thread scalar SpMM on the "
                 f"{_DATASET} twin, d={_D}")
        return render_table(headers, rows, title)


def run_table2(config: BenchConfig | None = None) -> Table2Result:
    """Run the Table II experiment on the uk-2005 twin."""
    config = config or BenchConfig()
    counters = {}
    for system in ("gcc", "clang", "icc"):
        result = config.run(system, _DATASET, _D, split="row", threads=1,
                            timing=True)
        counters[system] = result.counters
    jit = config.run("jit", _DATASET, _D, split="row", threads=1,
                     timing=True, isa="scalar")
    counters["jit"] = jit.counters
    return Table2Result(config, counters)
