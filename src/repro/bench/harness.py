"""Shared experiment infrastructure for the bench modules.

Centralizes configuration (scale, thread count, dataset list — all
overridable via environment variables for quick runs), caches compiled
AOT kernels and simulation results so that figures sharing measurements
(Figs. 9/10/11 all need the same runs) never simulate twice, and provides
the table-rendering helpers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.aot.compiler import CompiledKernel
from repro.api import ExecutionConfig, get_system
from repro.core.runner import RunResult
from repro.datasets import DATASET_NAMES, load
from repro.errors import DatasetError
from repro.machine.cache import CacheConfig
from repro.serve.cache import KernelCache
from repro.sparse.csr import CsrMatrix

__all__ = [
    "BenchConfig",
    "arithmetic_mean",
    "geometric_mean",
    "render_table",
]

#: default scale for bench twins (a quarter of the dataset-suite default:
#: full-grid timing simulation over 14 x 3 x 2 x 3 runs must stay
#: affordable)
_DEFAULT_BENCH_SCALE = 2.0 ** -19

#: cache geometry scaled down with the dataset twins, so that the dense
#: operand exceeds the last-level cache exactly as the paper's 2.5 GB X
#: matrices dwarf a 1 MB L2 — without this, twin-sized X would live in
#: L1 and the kernels' memory behaviour would be qualitatively wrong
BENCH_L1 = CacheConfig(size_bytes=8 * 1024, ways=8)
BENCH_L2 = CacheConfig(size_bytes=32 * 1024, ways=8)


@dataclass
class BenchConfig:
    """Experiment knobs, environment-overridable.

    Environment variables: ``REPRO_BENCH_SCALE`` (float), ``REPRO_BENCH_THREADS``
    (int), ``REPRO_BENCH_DATASETS`` (comma-separated Table III names).
    """

    scale: float = field(default_factory=lambda: float(
        os.environ.get("REPRO_BENCH_SCALE", _DEFAULT_BENCH_SCALE)))
    threads: int = field(default_factory=lambda: int(
        os.environ.get("REPRO_BENCH_THREADS", "8")))
    datasets: tuple[str, ...] = field(default_factory=lambda: tuple(
        name.strip() for name in os.environ.get(
            "REPRO_BENCH_DATASETS", ",".join(DATASET_NAMES)).split(",")
        if name.strip()))
    ghz: float = 3.7
    seed: int = 2024

    def __post_init__(self) -> None:
        unknown = set(self.datasets) - set(DATASET_NAMES)
        if unknown:
            raise DatasetError(f"unknown bench datasets: {sorted(unknown)}")
        # one artifact cache for every address-free template (AOT
        # personalities, the MKL kernel): compiled once per identity,
        # shared across the whole grid — the paper's baselines exist
        # "before shipping", so their compile time is never measured
        self._cache = KernelCache()
        self._runs: dict[tuple, RunResult] = {}
        self._dense: dict[tuple[str, int], np.ndarray] = {}
        # Warm the JIT code generator once: the very first Python codegen
        # call pays one-time import/closure costs that the paper's
        # steady-state AsmJit overhead measurement (Table IV) never sees.
        from repro.core.codegen import JitCodegen, JitKernelSpec
        JitCodegen(JitKernelSpec(
            d=16, m=1, row_ptr_addr=1, col_addr=1, vals_addr=1, x_addr=1,
            y_addr=1, next_addr=1)).generate(dynamic=True)

    # ------------------------------------------------------------------
    def matrix(self, name: str) -> CsrMatrix:
        return load(name, scale=self.scale, seed=7)

    def dense(self, name: str, d: int) -> np.ndarray:
        """The paper's random dense operand for (dataset, d), cached."""
        key = (name, d)
        if key not in self._dense:
            rng = np.random.default_rng(self.seed + d)
            self._dense[key] = rng.random(
                (self.matrix(name).ncols, d), dtype=np.float32
            ).astype(np.float32)
        return self._dense[key]

    def aot_kernel(self, personality: str) -> CompiledKernel:
        """The compiled template for one AOT personality, cached."""
        return get_system(f"aot:{personality}").prepare(
            ExecutionConfig(cache=self._cache)).kernel

    # ------------------------------------------------------------------
    def run(self, system: str, dataset: str, d: int, split: str = "row",
            threads: int | None = None, timing: bool = True,
            isa: str = "avx512", backend: str | None = None) -> RunResult:
        """Run one (system, dataset, d, split, backend) cell, memoized.

        ``system`` is any :func:`repro.api.get_system`-resolvable name:
        ``"jit"``, ``"mkl"``, ``"aot:<personality>"`` or a bare
        personality name (``"gcc"``, ``"clang"``, ``"icc"``,
        ``"icc-avx512"``).  ``backend`` is any
        :func:`repro.exec.get_backend`-resolvable execution backend
        (``None`` defers to ``timing``); every returned
        :class:`RunResult` records the backend that produced it in
        :attr:`RunResult.backend`, so emitted rows are attributable.
        """
        threads = self.threads if threads is None else threads
        target = get_system(system)
        # measurement policy: address-free templates come from the
        # shared artifact cache (compiled once for the whole grid),
        # while specialized JIT codegen stays inside each measured cell
        # — Table IV measures exactly that per-run cost, and same-shaped
        # twins would otherwise silently share one generated kernel
        config = ExecutionConfig(
            split=split, threads=threads, timing=timing, isa=isa,
            backend=backend, warmup=True, l1=BENCH_L1, l2=BENCH_L2,
            cache=self._cache if target.address_free else None,
        )
        # memoize on the backend the config actually resolves to, so
        # timing=True vs backend="sim" share one cell and alias
        # spellings collapse (the config normalized them already)
        key = (system, dataset, d, split, threads,
               config.effective_backend, isa)
        if key in self._runs:
            return self._runs[key]
        matrix = self.matrix(dataset)
        x = self.dense(dataset, d)
        result = target.prepare(config).bind(matrix, x).execute()
        self._runs[key] = result
        return result


def geometric_mean(values) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(np.exp(np.mean(np.log(values))))


def arithmetic_mean(values) -> float:
    values = list(values)
    return float(np.mean(values)) if values else 0.0


def render_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Fixed-width ASCII table."""
    table = [headers, *rows]
    widths = [max(len(str(row[i])) for row in table)
              for i in range(len(headers))]
    lines = [title] if title else []
    for index, row in enumerate(table):
        lines.append("  ".join(
            str(cell).rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
