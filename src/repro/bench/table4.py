"""Table IV: JIT code-generation overhead.

The paper measures, per dataset, the total execution time of JITSPMM
(row-split, d=16) and the fraction of it spent generating code
(average 0.0074%, always below 0.03%).  Here codegen time is real wall
clock of assembly generation + machine-code encoding; execution time is
modeled cycles at the configured frequency.  Because the twins are
~260,000x smaller than the paper's matrices while codegen cost is
size-independent, the absolute overhead percentage is larger; the shape —
overhead negligible and *shrinking* as datasets grow — is the target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import BenchConfig, render_table

__all__ = ["Table4Result", "run_table4"]

_D = 16

#: paper Table IV: (exe seconds, codegen overhead %)
PAPER_TABLE4 = {
    "mycielskian19": (0.43, 0.0136), "uk-2005": (0.27, 0.0217),
    "webbase-2001": (0.65, 0.0090), "it-2004": (0.30, 0.0201),
    "GAP-twitter": (2.90, 0.0028), "twitter7": (3.10, 0.0020),
    "GAP-web": (0.44, 0.0138), "sk-2005": (0.43, 0.0146),
    "mycielskian20": (2.03, 0.0029), "com-Friendster": (9.04, 0.0007),
    "GAP-kron": (9.51, 0.0008), "GAP-urand": (11.00, 0.0007),
    "MOLIERE_2016": (16.20, 0.0004), "AGATHA_2015": (22.50, 0.0003),
}


@dataclass
class Table4Result:
    config: BenchConfig
    exe_seconds: dict[str, float]
    codegen_seconds: dict[str, float]
    overhead_pct: dict[str, float]
    paper_scale_pct: dict[str, float]

    def render(self) -> str:
        headers = ["dataset", "twin exe (s)", "codegen (s)",
                   "twin ovh %", "paper-scale ovh %", "paper ovh %"]
        rows = []
        for name in self.exe_seconds:
            paper_exe, paper_pct = PAPER_TABLE4[name]
            rows.append([
                name,
                f"{self.exe_seconds[name]:.2e}",
                f"{self.codegen_seconds[name]:.2e}",
                f"{self.overhead_pct[name]:.2f}",
                f"{self.paper_scale_pct[name]:.4f}",
                f"{paper_pct:.4f}",
            ])
        title = (
            f"Table IV reproduction — JITSPMM codegen overhead (row-split, "
            f"d={_D}, {self.config.threads} threads).\n"
            "Codegen cost is size-independent, so at twin scale it dominates "
            "('twin ovh'); extrapolating the modeled execution back to the "
            "paper's nnz ('paper-scale ovh') recovers the paper's regime."
        )
        return render_table(headers, rows, title)

    def overhead_shrinks_with_size(self) -> bool:
        """The paper's qualitative claim: bigger matrices, lower overhead."""
        names = list(self.exe_seconds)
        sizes = [self.config.matrix(n).nnz for n in names]
        overheads = [self.overhead_pct[n] for n in names]
        small = [o for s, o in zip(sizes, overheads) if s <= sorted(sizes)[len(sizes) // 2]]
        large = [o for s, o in zip(sizes, overheads) if s > sorted(sizes)[len(sizes) // 2]]
        if not small or not large:
            return True
        return sum(large) / len(large) <= sum(small) / len(small)


def run_table4(config: BenchConfig | None = None) -> Table4Result:
    """Run the Table IV experiment over all configured datasets."""
    from repro.datasets import spec as dataset_spec

    config = config or BenchConfig()
    exe, codegen, pct, paper_pct = {}, {}, {}, {}
    for name in config.datasets:
        result = config.run("jit", name, _D, split="row", timing=True)
        exe[name] = result.modeled_seconds(config.ghz)
        codegen[name] = result.codegen_seconds
        pct[name] = 100.0 * result.codegen_overhead(config.ghz)
        # linear extrapolation of the modeled execution to the paper's nnz
        # (kernel work is affine in nnz — repro.core.analytic, tested)
        twin_nnz = max(1, config.matrix(name).nnz)
        scale_up = dataset_spec(name).paper_nnz / twin_nnz
        paper_exe = exe[name] * scale_up
        paper_pct[name] = 100.0 * codegen[name] / (codegen[name] + paper_exe)
    return Table4Result(config, exe, codegen, pct, paper_pct)
