"""Chaos experiment: serving under a seeded fault storm, then recovery.

The resilience layer's acceptance numbers, measured end to end over the
real socket protocol against a local worker-pool
:class:`~repro.serve.gateway.Gateway`:

* **baseline** — fault-free closed-loop multiply traffic (the control
  cell every other phase is compared against);
* **storm** — the same traffic with a seeded, bounded
  :class:`~repro.faults.FaultPlan` active: worker crashes, worker
  hangs (killed by the gateway watchdog), client connection drops and
  shm-ring exhaustion.  Successes must be bit-identical to the
  in-process reference; failures must be typed :mod:`repro.errors`
  exceptions;
* **recovery** — the plan is cleared and the harness times how long
  until the worker pool is back to full strength and a probe client
  sees ``RECOVERY_STREAK`` consecutive successes;
* **gated** — post-recovery traffic under a per-request deadline.  CI
  gates this cell: success rate >= 0.99 and zero leaked shm slots.
  A final set of already-expired deadlines measures enforcement lag —
  how long after its deadline a request can still be observed failing
  (the "no reply after deadline + grace" check).

Emitted as a table and as ``BENCH_chaos.json`` (path overridable via
``REPRO_BENCH_CHAOS_JSON``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.harness import BenchConfig, render_table
from repro.errors import DeadlineExceeded, ReproError
from repro.faults import FaultPlan, FaultRule

__all__ = ["ChaosResult", "run_chaos", "STORM_PLAN"]

#: dense operand width — tiny on purpose; chaos measures the control
#: plane (supervision, retries, deadlines), not kernel throughput
_D = 4

#: gateway worker processes under test
_WORKERS = 2

#: watchdog threshold for the storm (production default is 60s; the
#: bench wants hung workers reaped within a test's patience)
_HANG_THRESHOLD_MS = 400.0

#: consecutive fault-free probe successes that define "recovered"
RECOVERY_STREAK = 5

#: per-request deadline for the gated phase (generous: the gate
#: measures availability, not latency)
_GATED_DEADLINE_MS = 10_000.0

#: slack allowed on top of an already-expired deadline before the typed
#: error must have surfaced to the client
_GRACE_MS = 250.0

#: the storm: every rule bounded by ``max_fires`` so the phase is a
#: finite, seeded schedule rather than open-ended background noise
STORM_PLAN = FaultPlan(seed=20240, rules=(
    FaultRule("worker.crash", after=2, max_fires=1),
    FaultRule("worker.hang", after=6, max_fires=1, hang_seconds=30.0),
    FaultRule("conn.drop", after=3, max_fires=2),
    FaultRule("shm.exhaust", after=8, max_fires=2),
    FaultRule("reply.delay", after=4, max_fires=3, delay_ms=20.0),
))

DEFAULT_JSON_PATH = "BENCH_chaos.json"

#: closed-loop client threads (env: REPRO_BENCH_CHAOS_CLIENTS)
DEFAULT_CLIENTS = 3

#: multiply requests per client per phase (env: REPRO_BENCH_CHAOS_REQUESTS)
DEFAULT_REQUESTS = 16


@dataclass
class ChaosResult:
    config: BenchConfig
    dataset: str
    clients: int
    requests_per_client: int
    #: phase name -> row dict (requests, successes, typed_failures,
    #: success_rate, p50_ms, p99_ms, error histogram ...)
    phases: dict[str, dict]
    recovery_seconds: float
    deadline_overshoot_ms: float
    leaked_slots: int
    storm_mismatches: int
    untyped_failures: int
    json_path: str

    # -- the CI acceptance numbers --------------------------------------
    def success_rate_post_recovery(self) -> float:
        """Gated-phase success rate (CI target >= 0.99)."""
        return self.phases["gated"]["success_rate"]

    def as_payload(self) -> dict:
        return {
            "experiment": "chaos",
            "scale": self.config.scale,
            "threads": self.config.threads,
            "d": _D,
            "dataset": self.dataset,
            "workers": _WORKERS,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "storm_plan": STORM_PLAN.to_dict(),
            "phases": [{"phase": name, **row}
                       for name, row in self.phases.items()],
            "recovery_seconds": self.recovery_seconds,
            "deadline_overshoot_ms": self.deadline_overshoot_ms,
            "deadline_grace_ms": _GRACE_MS,
            "leaked_slots": self.leaked_slots,
            "storm_mismatches": self.storm_mismatches,
            "untyped_failures": self.untyped_failures,
            "success_rate_post_recovery": self.success_rate_post_recovery(),
        }

    def render(self) -> str:
        headers = ["phase", "requests", "ok", "typed err", "success",
                   "p50 ms", "p99 ms"]
        rows = []
        for name, row in self.phases.items():
            rows.append([
                name, row["requests"], row["successes"],
                row["typed_failures"], f"{row['success_rate']:.3f}",
                f"{row['p50_ms']:.3f}", f"{row['p99_ms']:.3f}",
            ])
        title = (
            "Chaos — closed-loop gateway traffic through a seeded fault "
            f"storm ({self.dataset}, {_WORKERS} workers, {self.clients} "
            f"clients x {self.requests_per_client} requests/phase).\n"
            f"Storm: {STORM_PLAN.describe()}\n"
            f"Recovery to {RECOVERY_STREAK} consecutive successes: "
            f"{self.recovery_seconds:.2f}s; deadline enforcement "
            f"overshoot {self.deadline_overshoot_ms:.1f}ms "
            f"(grace {_GRACE_MS:.0f}ms); leaked shm slots "
            f"{self.leaked_slots}; result mismatches "
            f"{self.storm_mismatches}; untyped failures "
            f"{self.untyped_failures}.\n"
            "CI gates: gated-phase success rate >= 0.99 "
            f"(measured {self.success_rate_post_recovery():.3f}), "
            "zero leaked slots, zero mismatches, zero untyped failures.\n"
            f"JSON written to {self.json_path}"
        )
        return render_table(headers, rows, title)


def _drive_phase(gateway, handle, operands, references, clients: int,
                 requests: int, deadline_ms: float | None) -> dict:
    """Closed-loop traffic; returns the phase row dict.

    Successes are checked bit-for-bit against ``references`` —
    mismatches are counted, never silently accepted.  Non-``ReproError``
    exceptions are counted as untyped (a gate violation), not raised.
    """
    outcomes: list[list] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client_main(index: int) -> None:
        client = gateway.connect(retry_seed=index, backoff_base=0.02)
        mine = operands[index]
        record = outcomes[index].append
        barrier.wait()
        try:
            for count in range(requests):
                which = count % len(mine)
                started = time.perf_counter()
                try:
                    y = client.multiply(handle, mine[which],
                                        deadline_ms=deadline_ms)
                except ReproError as error:
                    record(("typed", time.perf_counter() - started,
                            type(error).__name__))
                except BaseException as error:  # noqa: BLE001 - gate metric
                    record(("untyped", time.perf_counter() - started,
                            repr(error)))
                else:
                    exact = (y.tobytes() == references[index][which])
                    record(("ok" if exact else "mismatch",
                            time.perf_counter() - started, ""))
        finally:
            client.close()

    threads = [threading.Thread(target=client_main, args=(index,))
               for index in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads:
        thread.join()
    flat = [entry for client_out in outcomes for entry in client_out]
    latencies = np.array([seconds for _, seconds, _ in flat])
    errors: dict[str, int] = {}
    for kind, _, detail in flat:
        if kind == "typed":
            errors[detail] = errors.get(detail, 0) + 1
    successes = sum(1 for kind, _, _ in flat if kind == "ok")
    return {
        "requests": len(flat),
        "successes": successes,
        "typed_failures": sum(1 for k, _, _ in flat if k == "typed"),
        "untyped_failures": sum(1 for k, _, _ in flat if k == "untyped"),
        "mismatches": sum(1 for k, _, _ in flat if k == "mismatch"),
        "success_rate": successes / len(flat) if flat else 0.0,
        "p50_ms": 1e3 * float(np.percentile(latencies, 50)),
        "p99_ms": 1e3 * float(np.percentile(latencies, 99)),
        "errors": errors,
    }


def _measure_recovery(gateway, handle, x, reference) -> float:
    """Seconds until the pool is whole and a probe sees a clean streak."""
    started = time.perf_counter()
    deadline = started + 120.0
    while (len(gateway.worker_pids()) < _WORKERS
           and time.perf_counter() < deadline):
        time.sleep(0.02)
    probe = gateway.connect(backoff_base=0.02)
    try:
        streak = 0
        while streak < RECOVERY_STREAK:
            if time.perf_counter() > deadline:
                raise ReproError(
                    "gateway did not recover within 120s of clearing "
                    "the fault plan")
            try:
                y = probe.multiply(handle, x)
            except ReproError:
                streak = 0
                time.sleep(0.05)
                continue
            if y.tobytes() != reference:
                raise ReproError("post-recovery result mismatch")
            streak += 1
    finally:
        probe.close()
    return time.perf_counter() - started


def _measure_deadline_overshoot(gateway, handle, x, probes: int = 8
                                ) -> float:
    """Max ms past an (expired) deadline a request still took to fail.

    Every probe carries a 1ms deadline against a cold-ish path, so the
    gateway must reject it — the metric is how *quickly* the typed
    error comes back, which bounds "reply after deadline + grace".
    """
    worst = 0.0
    client = gateway.connect(max_retries=0)
    try:
        for _ in range(probes):
            started = time.perf_counter()
            try:
                client.multiply(handle, x, deadline_ms=1.0)
            except DeadlineExceeded:
                elapsed_ms = 1e3 * (time.perf_counter() - started)
                worst = max(worst, elapsed_ms - 1.0)
            except ReproError:
                # a warm multiply can legitimately beat a 1ms deadline;
                # other typed rejections (e.g. overload) do not measure
                # enforcement lag
                pass
    finally:
        client.close()
    return worst


def run_chaos(config: BenchConfig | None = None) -> ChaosResult:
    """Run baseline -> storm -> recovery -> gated; write the JSON."""
    from repro.api.config import ExecutionConfig
    from repro.serve.gateway import Gateway
    from repro.sparse import spmm_reference

    config = config or BenchConfig()
    clients = max(2, int(os.environ.get("REPRO_BENCH_CHAOS_CLIENTS",
                                        DEFAULT_CLIENTS)))
    requests = max(4, int(os.environ.get("REPRO_BENCH_CHAOS_REQUESTS",
                                         DEFAULT_REQUESTS)))
    dataset = config.datasets[0]
    matrix = config.matrix(dataset)
    start_method = ("fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn")
    exec_config = ExecutionConfig(
        split="auto", backend="native", threads=config.threads,
        workers=_WORKERS, hang_threshold_ms=_HANG_THRESHOLD_MS,
        max_retries=3, breaker_threshold=2,
        max_inflight=max(64, 4 * clients))
    rng = np.random.default_rng(config.seed)
    operands = [
        [rng.random((matrix.ncols, _D), dtype=np.float32) for _ in range(4)]
        for _ in range(clients)
    ]
    references = [[spmm_reference(matrix, x).tobytes() for x in mine]
                  for mine in operands]
    phases: dict[str, dict] = {}
    with Gateway(exec_config, mp_start=start_method,
                 slots=max(8, 2 * clients),
                 breaker_cooldown=0.25) as gateway:
        setup = gateway.connect()
        handle = setup.register(matrix, matrix.name or "chaos")
        for _ in range(2 * _WORKERS):    # warm every worker off the clock
            setup.multiply(handle, operands[0][0])
        setup.close()

        phases["baseline"] = _drive_phase(
            gateway, handle, operands, references, clients, requests, None)

        gateway.set_fault_plan(STORM_PLAN)
        phases["storm"] = _drive_phase(
            gateway, handle, operands, references, clients, requests, None)
        gateway.set_fault_plan(None)

        recovery_seconds = _measure_recovery(
            gateway, handle, operands[0][0], references[0][0])

        phases["gated"] = _drive_phase(
            gateway, handle, operands, references, clients, requests,
            _GATED_DEADLINE_MS)

        deadline_overshoot_ms = _measure_deadline_overshoot(
            gateway, handle, operands[0][0])

        deadline = time.perf_counter() + 10.0
        while (gateway.shm_stats().in_use and
               time.perf_counter() < deadline):
            time.sleep(0.02)
        leaked_slots = gateway.shm_stats().in_use

    json_path = os.environ.get("REPRO_BENCH_CHAOS_JSON", DEFAULT_JSON_PATH)
    result = ChaosResult(
        config=config, dataset=dataset, clients=clients,
        requests_per_client=requests, phases=phases,
        recovery_seconds=recovery_seconds,
        deadline_overshoot_ms=deadline_overshoot_ms,
        leaked_slots=leaked_slots,
        storm_mismatches=sum(row["mismatches"] for row in phases.values()),
        untyped_failures=sum(row["untyped_failures"]
                             for row in phases.values()),
        json_path=json_path,
    )
    with open(json_path, "w") as handle_:
        json.dump(result.as_payload(), handle_, indent=2)
        handle_.write("\n")
    return result
