"""Ablation studies for the design choices DESIGN.md calls out.

Not in the paper, but each isolates one JITSPMM ingredient:

* **CCM ablation** — the JIT kernel vs the same JIT machinery forced to
  a single scalar column at a time (``isa="scalar"``): quantifies how
  much of the win is coarse-grain column merging + SIMD rather than just
  removing branches;
* **dispatch ablation** — dynamic (``lock xadd``) vs static row-split on
  a skewed matrix: the Listing-1 motivation;
* **batch-size sweep** — Listing 1's batch constant (paper: 128);
* **ISA sweep** — SSE2 / AVX2 / AVX-512 codegen for the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import BenchConfig, render_table

__all__ = ["AblationResult", "run_ablations"]

_DATASETS = ("uk-2005", "GAP-kron")
_D = 16


@dataclass
class AblationResult:
    config: BenchConfig
    ccm: dict[str, tuple[float, float]]          # dataset -> (simd, scalar)
    dispatch: dict[str, tuple[float, float]]     # dataset -> (dynamic, static)
    batch: dict[int, float]                      # batch size -> cycles
    isa: dict[str, float]                        # isa -> cycles

    def render(self) -> str:
        blocks = []
        rows = [
            [name, f"{simd:,.0f}", f"{scalar:,.0f}", f"{scalar / simd:.2f}x"]
            for name, (simd, scalar) in self.ccm.items()
        ]
        blocks.append(render_table(
            ["dataset", "CCM+SIMD cycles", "scalar cycles", "gain"],
            rows, "Ablation — coarse-grain column merging + SIMD"))

        rows = [
            [name, f"{dyn:,.0f}", f"{static:,.0f}", f"{static / dyn:.2f}x"]
            for name, (dyn, static) in self.dispatch.items()
        ]
        blocks.append(render_table(
            ["dataset", "dynamic cycles", "static cycles", "gain"],
            rows, "Ablation — dynamic vs static row dispatch"))

        rows = [[str(b), f"{c:,.0f}"] for b, c in sorted(self.batch.items())]
        blocks.append(render_table(
            ["batch", "cycles"], rows,
            "Ablation — Listing-1 batch size (uk-2005)"))

        rows = [[isa, f"{c:,.0f}"] for isa, c in self.isa.items()]
        blocks.append(render_table(
            ["isa", "cycles"], rows, "Ablation — ISA level (uk-2005)"))
        return "\n\n".join(blocks)


def run_ablations(config: BenchConfig | None = None) -> AblationResult:
    config = config or BenchConfig()
    datasets = [d for d in _DATASETS if d in config.datasets] or [
        config.datasets[0]]

    ccm = {}
    dispatch = {}
    for name in datasets:
        simd = config.run("jit", name, _D, split="row", timing=True)
        scalar = config.run("jit", name, _D, split="row", timing=True,
                            isa="scalar")
        ccm[name] = (simd.counters.cycles, scalar.counters.cycles)

        from repro.core.runner import run_jit
        matrix = config.matrix(name)
        x = config.dense(name, _D)
        dynamic = config.run("jit", name, _D, split="row", timing=True)
        static = run_jit(matrix, x, split="row", threads=config.threads,
                         dynamic=False, timing=True)
        dispatch[name] = (dynamic.counters.cycles, static.counters.cycles)

    from repro.core.runner import run_jit
    matrix = config.matrix(datasets[0])
    x = config.dense(datasets[0], _D)
    batch = {}
    for size in (16, 64, 128, 512):
        result = run_jit(matrix, x, split="row", threads=config.threads,
                         dynamic=True, batch=size, timing=True)
        batch[size] = result.counters.cycles

    isa = {}
    for level in ("sse2", "avx2", "avx512"):
        result = config.run("jit", datasets[0], _D, split="row", timing=True,
                            isa=level)
        isa[level] = result.counters.cycles
    return AblationResult(config, ccm, dispatch, batch, isa)
