"""Figure 10: speedups of JITSPMM over the MKL-like kernel.

Same grid as Figure 9 with the hand-scheduled AOT kernel
(:mod:`repro.aot.mkl`) standing in for ``mkl_sparse_spmm``.  Paper
averages: 1.4x/1.5x/1.4x (row/nnz/merge) at d=16, 1.4x/1.3x/1.3x at
d=32, maxima up to 2.3x.  Reproduction target: a small but consistent
JIT win — an order of magnitude tighter than the Figure 9 gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.fig9 import COLUMN_COUNTS, FigSpeedups, SPLITS, _collect
from repro.bench.harness import BenchConfig, render_table

__all__ = ["Fig10Result", "run_fig10"]

BASELINE = "mkl"

PAPER_FIG10_AVG = {
    (16, "row"): 1.4, (16, "nnz"): 1.5, (16, "merge"): 1.4,
    (32, "row"): 1.4, (32, "nnz"): 1.3, (32, "merge"): 1.3,
}


@dataclass
class Fig10Result:
    config: BenchConfig
    data: FigSpeedups

    paper_averages = PAPER_FIG10_AVG

    def render(self) -> str:
        blocks = []
        for d in COLUMN_COUNTS:
            headers = ["dataset", *SPLITS]
            datasets = sorted({k[2] for k in self.data.speedups if k[0] == d},
                              key=list(self.config.datasets).index)
            rows = [
                [name] + [f"{self.data.speedups[(d, s, name)]:.2f}"
                          for s in SPLITS]
                for name in datasets
            ]
            rows.append(["(average)"] + [
                f"{self.data.average(d, s):.2f}" for s in SPLITS])
            rows.append(["(paper avg)"] + [
                f"{self.paper_averages[(d, s)]:.2f}" for s in SPLITS])
            blocks.append(render_table(
                headers, rows,
                f"Fig. 10({'a' if d == 16 else 'b'}) — JITSPMM speedup over "
                f"the MKL-like kernel, column number {d}"))
        return "\n\n".join(blocks)


def run_fig10(config: BenchConfig | None = None) -> Fig10Result:
    """Run the Figure 10 grid (shares JIT runs with Figure 9's cache)."""
    config = config or BenchConfig()
    return Fig10Result(config, _collect(config, BASELINE))
