"""Serve-throughput experiment: request coalescing vs per-request serving.

The serving subsystem's amortization story (Table IV, live) removes
codegen from the steady state; this harness measures whether the steady
state itself is request-overhead-bound.  Closed-loop client threads
hammer one registered matrix through ``SpmmService.multiply`` and the
harness reports requests/sec plus p50/p99 latency per (backend,
``max_batch``) cell:

* ``native`` / ``max_batch=1`` — today's per-request path, one SpMM and
  one pass of Python/lock overhead per request;
* ``native`` / ``max_batch>1`` — the coalescing fast path: concurrent
  requests for one kernel identity execute as a single stacked-operand
  SpMM (bit-identical results), so per-request overhead is paid once
  per batch;
* ``counts`` / ``max_batch=1`` — the simulated ``profile`` path as a
  baseline (coalescing is a multiply-path feature; profiled requests
  serialize on the workspace's mapped address space).

With ``--networked`` (CLI) or ``REPRO_BENCH_SERVE_NETWORKED=1``, the
harness additionally measures the *networked* path: closed-loop clients
speaking the real socket protocol against a local
:class:`~repro.serve.gateway.Gateway`, one cell per worker count in
``NETWORKED_WORKER_COUNTS``.  Those cells carry the full wire cost
(framing, shm copies, pipe round-trips) — the interesting ratio is
networked-at-2-workers over in-process-at-1-batch, where process
parallelism must beat protocol overhead (CI gates this at >= 1.5x).

The harness also measures **cold start**: register never-seen matrices
while closed-loop traffic hammers a warm handle, and time each fresh
handle's *first* ``multiply``.  Two cells: ``inline`` (``tier_mode=
"off"``, the first request pays autotune + codegen on the request
path) and ``tiered`` (``tier_mode="lazy"``, the first request binds
the address-free template and specialization happens in the
background — :mod:`repro.serve.tier`).  Both cells assert bit-identity
against :func:`repro.core.engine.spmm_reference`, including after a
promotion lands; the JSON's ``coldstart`` section reports first-request
p50/p99 per mode and the tiered-over-inline speedup CI gates at >= 3x.

Emitted as a table and as ``BENCH_servethroughput.json`` (path
overridable via ``REPRO_BENCH_SERVETHROUGHPUT_JSON``), which CI
regenerates at tiny scale and gates on: coalesced throughput must stay
>= 2x the per-request throughput of the same workload.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import BenchConfig, render_table
from repro.core.engine import spmm_reference
from repro.serve import TIER_PROMOTED, SpmmService
from repro.sparse.csr import CsrMatrix

__all__ = ["ServeThroughputResult", "run_servethroughput"]

#: dense operand width: small enough that per-request Python overhead
#: dominates a twin-scale SpMM — the regime the fast path targets
_D = 8

#: measured (backend, max_batch, flush_us) cells; batch 1 is the
#: baseline the acceptance gate compares against.  Coalesced cells
#: linger 100us for followers — at closed-loop request rates that fills
#: the batch (and, counter-intuitively, *improves* tail latency: fewer,
#: larger numpy calls mean less GIL thrash between client threads)
MODES = (("native", 1, 0.0), ("native", 8, 100.0), ("native", 32, 100.0),
         ("counts", 1, 0.0))

#: the coalesced cell the >= 2x acceptance gate reads
COALESCED = ("native", 32)

#: gateway worker counts measured in networked mode; the last one is
#: the cell the >= 1.5x networked acceptance gate reads
NETWORKED_WORKER_COUNTS = (1, 2)

#: per-worker coalescing knobs for the networked cells (the gateway's
#: in-worker executor pipelines dispatches, so batches really form)
NETWORKED_BATCH = 8
NETWORKED_FLUSH_US = 100.0

DEFAULT_JSON_PATH = "BENCH_servethroughput.json"

#: closed-loop client threads (env: REPRO_BENCH_SERVE_CLIENTS)
DEFAULT_CLIENTS = 8

#: multiply requests per client per cell (env: REPRO_BENCH_SERVE_REQUESTS);
#: the simulated counts cell runs an eighth of this (it is orders of
#: magnitude slower per request and only provides a reference point)
DEFAULT_REQUESTS = 40

#: fresh handles registered per cold-start cell
#: (env: REPRO_BENCH_SERVE_COLDSTART)
DEFAULT_COLDSTART_HANDLES = 12

#: background closed-loop clients keeping the service busy while the
#: cold-start cells register fresh handles
COLDSTART_CLIENTS = 4

#: cold-start cells: inline specialization vs template-first tiering
COLDSTART_MODES = ("inline", "tiered")

#: tiered cold-start p99 must beat inline by this factor (the CI gate)
COLDSTART_TARGET = 3.0


@dataclass
class ServeThroughputResult:
    config: BenchConfig
    dataset: str
    clients: int
    requests_per_client: int
    #: (backend, max_batch) -> row dict (rps, p50_ms, p99_ms, ...);
    #: networked cells use backend "gateway:<N>w"
    rows: dict[tuple[str, int], dict]
    json_path: str
    networked: bool = field(default=False)
    #: cold-start section: mode name -> cell dict, plus the speedups
    coldstart: dict = field(default_factory=dict)

    def rps(self, backend: str, max_batch: int) -> float:
        return self.rows[(backend, max_batch)]["rps"]

    def speedup_coalesced(self) -> float:
        """Coalesced requests/sec over per-request requests/sec (the
        CI acceptance ratio — target >= 2x)."""
        return self.rps(*COALESCED) / self.rps("native", 1)

    def speedup_networked(self) -> float | None:
        """Networked requests/sec (socket protocol, most-workers cell)
        over the single-process in-process per-request baseline — the
        networked CI acceptance ratio, target >= 1.5x.  None when the
        networked cells were not measured."""
        if not self.networked:
            return None
        backend = f"gateway:{NETWORKED_WORKER_COUNTS[-1]}w"
        return self.rps(backend, NETWORKED_BATCH) / self.rps("native", 1)

    def coldstart_speedup_p99(self) -> float:
        """Inline cold-start p99 over tiered cold-start p99 — the CI
        acceptance ratio (target >= 3x): how much of the first-request
        latency tiering moved off the request path."""
        return self.coldstart["speedup_p99"]

    # ------------------------------------------------------------------
    def as_payload(self) -> dict:
        """The JSON document CI archives (one row per measured cell)."""
        payload = {
            "experiment": "servethroughput",
            "scale": self.config.scale,
            "threads": self.config.threads,
            "d": _D,
            "dataset": self.dataset,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "rows": [
                {"backend": backend, "max_batch": max_batch, **row}
                for (backend, max_batch), row in sorted(self.rows.items())
            ],
            "speedup_coalesced": self.speedup_coalesced(),
            "coldstart": self.coldstart,
        }
        if self.networked:
            payload["speedup_networked"] = self.speedup_networked()
        return payload

    def render(self) -> str:
        headers = ["backend", "max_batch", "flush us", "requests", "req/s",
                   "p50 ms", "p99 ms", "mean batch", "lock waits"]
        table_rows = []
        for (backend, max_batch), row in sorted(self.rows.items()):
            table_rows.append([
                backend, max_batch, f"{row['flush_us']:.0f}",
                row["requests"], f"{row['rps']:.0f}",
                f"{row['p50_ms']:.3f}", f"{row['p99_ms']:.3f}",
                f"{row['mean_batch']:.2f}", row["lock_waits"],
            ])
        title = (
            "Serve throughput — closed-loop multiply traffic against "
            f"SpmmService ({self.dataset}, d={_D}, "
            f"{self.config.threads} threads, {self.clients} clients x "
            f"{self.requests_per_client} requests).\n"
            "Coalescing executes concurrent same-kernel requests as one "
            "stacked-operand SpMM (bit-identical results); the gate "
            f"requires >= 2x req/s vs max_batch=1 "
            f"(measured {self.speedup_coalesced():.2f}x).\n"
            f"JSON written to {self.json_path}"
        )
        if self.networked:
            title += (
                "\ngateway:* rows are networked: real socket protocol "
                "against a local worker-pool gateway; the networked "
                "gate requires >= 1.5x req/s vs in-process max_batch=1 "
                f"(measured {self.speedup_networked():.2f}x)."
            )
        lines = [render_table(headers, table_rows, title)]
        if self.coldstart:
            cold = self.coldstart
            lines.append(
                f"cold start ({cold['handles']} fresh handles under "
                f"{cold['clients']} clients of warm traffic): "
                + "; ".join(
                    f"{mode} p50 {cell['p50_ms']:.3f}ms / "
                    f"p99 {cell['p99_ms']:.3f}ms"
                    for mode, cell in sorted(cold["modes"].items()))
                + f" -> tiered p99 speedup "
                f"{cold['speedup_p99']:.2f}x (gate >= "
                f"{COLDSTART_TARGET:.0f}x), bit_identical="
                f"{cold['bit_identical']}")
        return "\n".join(lines)


def _run_cell(config: BenchConfig, matrix, backend: str, max_batch: int,
              flush_us: float, clients: int, requests: int) -> dict:
    """Drive one (backend, max_batch) cell; returns its row dict."""
    service = SpmmService(threads=config.threads, split="auto",
                          timing=False, max_batch=max_batch,
                          flush_us=flush_us)
    handle = service.register(matrix, matrix.name or "bench")
    # per-client operand sets: distinct contents, identical shape, so
    # every request is coalescible but results are distinguishable
    rng = np.random.default_rng(config.seed)
    operands = [
        [rng.random((matrix.ncols, _D), dtype=np.float32) for _ in range(4)]
        for _ in range(clients)
    ]
    if backend == "native":
        def serve(x):
            return service.multiply(handle, x)
    else:
        def serve(x):
            return service.profile(handle, x, backend=backend)
    serve(operands[0][0])       # codegen + autotune happen off the clock
    latencies: list[list[float]] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        mine = operands[index]
        record = latencies[index].append
        barrier.wait()
        for count in range(requests):
            started = time.perf_counter()
            serve(mine[count % len(mine)])
            record(time.perf_counter() - started)

    workers = [threading.Thread(target=client, args=(index,))
               for index in range(clients)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    flat = np.array([value for client_lat in latencies
                     for value in client_lat])
    stats = service.handle_stats(handle)
    sizes = stats.batches
    batches = sum(sizes.values())
    served = sum(size * count for size, count in sizes.items())
    return {
        "flush_us": flush_us,
        "requests": int(flat.size),
        "seconds": wall,
        "rps": flat.size / wall,
        "p50_ms": 1e3 * float(np.percentile(flat, 50)),
        "p99_ms": 1e3 * float(np.percentile(flat, 99)),
        "mean_batch": served / batches if batches else 1.0,
        "batch_histogram": {str(size): count
                            for size, count in sorted(sizes.items())},
        "lock_waits": service.lock_stats().waits,
    }


def _run_networked_cell(config: BenchConfig, matrix, workers: int,
                        clients: int, requests: int) -> dict:
    """Drive one gateway cell over the real socket protocol."""
    from repro.api.config import ExecutionConfig
    from repro.serve.gateway import Gateway

    start_method = ("fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn")
    exec_config = ExecutionConfig(
        split="auto", backend="native", threads=config.threads,
        workers=workers, max_batch=NETWORKED_BATCH,
        flush_us=NETWORKED_FLUSH_US, max_inflight=max(64, 4 * clients))
    rng = np.random.default_rng(config.seed)
    operands = [
        [rng.random((matrix.ncols, _D), dtype=np.float32) for _ in range(4)]
        for _ in range(clients)
    ]
    with Gateway(exec_config, mp_start=start_method,
                 slots=max(8, 2 * clients)) as gateway:
        conns = [gateway.connect() for _ in range(clients)]
        try:
            handle = conns[0].register(matrix, matrix.name or "bench")
            # round-robin dispatch: 2*workers sequential warmups hit
            # every worker's codegen + autotune off the clock
            for _ in range(2 * workers):
                conns[0].multiply(handle, operands[0][0])
            latencies: list[list[float]] = [[] for _ in range(clients)]
            barrier = threading.Barrier(clients + 1)

            def client(index: int) -> None:
                conn = conns[index]
                mine = operands[index]
                record = latencies[index].append
                barrier.wait()
                for count in range(requests):
                    started = time.perf_counter()
                    conn.multiply(handle, mine[count % len(mine)])
                    record(time.perf_counter() - started)

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(clients)]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time.perf_counter()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - started
            sizes: dict[int, int] = {}
            for _index, _pid, snap in gateway.worker_snapshots():
                for handle_stats in snap.stats.handles.values():
                    for size, count in handle_stats.batches.items():
                        sizes[size] = sizes.get(size, 0) + count
        finally:
            for conn in conns:
                conn.close()
    flat = np.array([value for client_lat in latencies
                     for value in client_lat])
    batches = sum(sizes.values())
    served = sum(size * count for size, count in sizes.items())
    return {
        "flush_us": NETWORKED_FLUSH_US,
        "requests": int(flat.size),
        "seconds": wall,
        "rps": flat.size / wall,
        "p50_ms": 1e3 * float(np.percentile(flat, 50)),
        "p99_ms": 1e3 * float(np.percentile(flat, 99)),
        "mean_batch": served / batches if batches else 1.0,
        "batch_histogram": {str(size): count
                            for size, count in sorted(sizes.items())},
        "lock_waits": 0,
        "workers": workers,
    }


def _fresh_matrices(config: BenchConfig, base, count: int,
                    mode_index: int) -> list[CsrMatrix]:
    """``count`` never-seen matrices with pairwise-distinct shapes.

    Cold start is only cold if nothing is shared: the autotune memo is
    process-wide and JIT kernel identities are shape-addressed, so
    every matrix — within a cell and across cells — gets its own shape
    (and so its own memo entry and kernel identity).  Without this the
    inline cell would warm the tiered cell, or vice versa, depending on
    run order.
    """
    rng = np.random.default_rng(config.seed + 7919 * (mode_index + 1))
    density = min(0.3, max(0.02, base.nnz / (base.nrows * base.ncols)))
    matrices = []
    for index in range(count):
        offset = 2 * (count * mode_index + index)
        nrows = base.nrows + offset + 1
        ncols = base.ncols + offset + 2
        mask = rng.random((nrows, ncols)) < density
        dense = np.where(mask, rng.standard_normal((nrows, ncols)), 0.0)
        dense[0, 0] = 1.0           # never an all-zero matrix
        matrices.append(CsrMatrix.from_dense(
            dense.astype(np.float32), name=f"cold-{mode_index}-{index}"))
    return matrices


def _run_coldstart_cell(config: BenchConfig, base, mode: str,
                        mode_index: int, handles: int,
                        clients: int) -> dict:
    """Time the first request of ``handles`` fresh registrations.

    ``mode="inline"`` serves with ``tier_mode="off"`` (first request
    pays autotune + codegen inline); ``mode="tiered"`` with
    ``tier_mode="lazy"`` (first request binds the template, promotion
    runs in the background).  Both run under closed-loop warm traffic,
    and every result — template tier, inline, and the first handle's
    post-promotion product — is checked bit-equal against
    ``spmm_reference``.
    """
    tier_mode = "off" if mode == "inline" else "lazy"
    service = SpmmService(threads=config.threads, split="auto",
                          timing=False, tier_mode=tier_mode,
                          promote_after=8)
    rng = np.random.default_rng(config.seed + mode_index)
    matrices = _fresh_matrices(config, base, handles + 1, mode_index)
    warm_matrix, fresh = matrices[0], matrices[1:]
    warm_handle = service.register(warm_matrix, warm_matrix.name)
    warm_x = rng.random((warm_matrix.ncols, _D), dtype=np.float32)
    service.multiply(warm_handle, warm_x)   # warm traffic starts warm
    stop = threading.Event()

    def background() -> None:
        while not stop.is_set():
            service.multiply(warm_handle, warm_x)

    traffic = [threading.Thread(target=background)
               for _ in range(clients)]
    latencies: list[float] = []
    bit_identical = True
    promoted = False
    try:
        for thread in traffic:
            thread.start()
        for matrix in fresh:
            x = rng.random((matrix.ncols, _D), dtype=np.float32)
            handle = service.register(matrix, matrix.name)
            started = time.perf_counter()
            y = service.multiply(handle, x)
            latencies.append(time.perf_counter() - started)
            bit_identical &= np.array_equal(y, spmm_reference(matrix, x))
    finally:
        stop.set()
        for thread in traffic:
            thread.join()
    if tier_mode != "off":
        # heat the first fresh handle past the threshold, wait for its
        # promotion to land, and check the promoted tier's bits too
        matrix, x = fresh[0], rng.random((fresh[0].ncols, _D),
                                         dtype=np.float32)
        handle = service.register(matrix, f"{matrix.name}-hot")
        deadline = time.monotonic() + 60.0
        while (service.tier_state(handle, _D) != TIER_PROMOTED
               and time.monotonic() < deadline):
            y = service.multiply(handle, x)
            bit_identical &= np.array_equal(y, spmm_reference(matrix, x))
            service.drain_promotions(1.0)
        promoted = service.tier_state(handle, _D) == TIER_PROMOTED
        y = service.multiply(handle, x)
        bit_identical &= np.array_equal(y, spmm_reference(matrix, x))
    service.close()
    lat = np.asarray(latencies)
    return {
        "mode": mode,
        "tier_mode": tier_mode,
        "handles": int(lat.size),
        "p50_ms": 1e3 * float(np.percentile(lat, 50)),
        "p99_ms": 1e3 * float(np.percentile(lat, 99)),
        "mean_ms": 1e3 * float(lat.mean()),
        "bit_identical": bool(bit_identical),
        "promoted": bool(promoted),
    }


def _run_coldstart(config: BenchConfig, base, handles: int,
                   clients: int) -> dict:
    """Both cold-start cells plus the gate ratios."""
    modes = {
        mode: _run_coldstart_cell(config, base, mode, mode_index,
                                  handles, clients)
        for mode_index, mode in enumerate(COLDSTART_MODES)
    }
    return {
        "handles": handles,
        "clients": clients,
        "d": _D,
        "modes": modes,
        "speedup_p50": modes["inline"]["p50_ms"]
        / modes["tiered"]["p50_ms"],
        "speedup_p99": modes["inline"]["p99_ms"]
        / modes["tiered"]["p99_ms"],
        "bit_identical": all(cell["bit_identical"]
                             for cell in modes.values()),
        "promoted": modes["tiered"]["promoted"],
        "target": COLDSTART_TARGET,
    }


def run_servethroughput(config: BenchConfig | None = None
                        ) -> ServeThroughputResult:
    """Measure every (backend, max_batch) cell; write the JSON."""
    config = config or BenchConfig()
    clients = max(2, int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS",
                                        DEFAULT_CLIENTS)))
    requests = max(1, int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS",
                                         DEFAULT_REQUESTS)))
    networked = os.environ.get("REPRO_BENCH_SERVE_NETWORKED", "") not in (
        "", "0")
    dataset = config.datasets[0]
    matrix = config.matrix(dataset)
    rows = {}
    for backend, max_batch, flush_us in MODES:
        cell_requests = requests if backend == "native" else max(
            1, requests // 8)
        rows[(backend, max_batch)] = _run_cell(
            config, matrix, backend, max_batch, flush_us, clients,
            cell_requests)
    if networked:
        for workers in NETWORKED_WORKER_COUNTS:
            rows[(f"gateway:{workers}w", NETWORKED_BATCH)] = (
                _run_networked_cell(config, matrix, workers, clients,
                                    requests))
    coldstart_handles = max(
        2, int(os.environ.get("REPRO_BENCH_SERVE_COLDSTART",
                              DEFAULT_COLDSTART_HANDLES)))
    coldstart = _run_coldstart(config, matrix, coldstart_handles,
                               COLDSTART_CLIENTS)
    json_path = os.environ.get("REPRO_BENCH_SERVETHROUGHPUT_JSON",
                               DEFAULT_JSON_PATH)
    result = ServeThroughputResult(
        config=config, dataset=dataset, clients=clients,
        requests_per_client=requests, rows=rows, json_path=json_path,
        networked=networked, coldstart=coldstart,
    )
    with open(json_path, "w") as handle:
        json.dump(result.as_payload(), handle, indent=2)
        handle.write("\n")
    return result
