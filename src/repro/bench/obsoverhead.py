"""Observability-overhead experiment: what does :mod:`repro.obs` cost?

An observability layer earns its place only if the instrumented hot
paths stay hot.  This harness drives the same closed-loop multiply
traffic as the serve-throughput bench through one coalescing
``SpmmService`` three times — instrumentation disabled (the production
default), enabled with span recording, and enabled again (stability
check) — and reports requests/sec per cell plus a direct
microbenchmark of the disabled ``span()`` call.

Two CI gates, both read from ``BENCH_obsoverhead.json``:

* **tracing off is ~free** — the disabled path is one attribute check
  returning a shared no-op object; the microbenchmark must stay under
  ``DISABLED_SPAN_NS_LIMIT`` per call (the throughput delta of "off"
  vs a hypothetical uninstrumented build is unmeasurable, so the gate
  pins the mechanism instead of a noise-dominated ratio);
* **tracing on costs < 5% rps** — recording spans into the per-thread
  rings during a multiply storm must keep >= 95% of the disabled-mode
  throughput (best-of-``REPEATS`` on both sides, damping scheduler
  noise at CI's tiny scale).

The enabled run's spans are also exported as a Chrome-trace/Perfetto
JSON artifact (``BENCH_obsoverhead_trace.json`` by default), so every
CI run archives a loadable trace of a real coalesced burst next to the
numbers.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.bench.harness import BenchConfig, render_table
from repro.serve import SpmmService

__all__ = ["ObsOverheadResult", "run_obsoverhead"]

#: dense operand width — same overhead-dominated regime as the
#: serve-throughput bench, where per-request costs (and therefore any
#: tracing overhead) are most visible
_D = 8

#: coalescing knobs for the measured service: a batched service emits
#: the full span taxonomy (multiply, batch.execute, batch.wait)
_MAX_BATCH = 8
_FLUSH_US = 100.0

DEFAULT_JSON_PATH = "BENCH_obsoverhead.json"
DEFAULT_TRACE_PATH = "BENCH_obsoverhead_trace.json"

#: closed-loop client threads (env: REPRO_BENCH_OBS_CLIENTS)
DEFAULT_CLIENTS = 4

#: multiply requests per client per run (env: REPRO_BENCH_OBS_REQUESTS)
DEFAULT_REQUESTS = 60

#: measurement repeats per mode; the gate compares best-of on both
#: sides, so one descheduled run cannot fail (or mask) the gate
REPEATS = 3

#: acceptance ceiling for tracing-on overhead, percent of disabled rps
OVERHEAD_PCT_LIMIT = 5.0

#: acceptance ceiling for one disabled ``span()`` call — generous
#: headroom over the measured ~100-300ns so CI machines never flake,
#: strict enough that an accidental allocation/lock on the disabled
#: path fails loudly
DISABLED_SPAN_NS_LIMIT = 5000.0


@dataclass
class ObsOverheadResult:
    config: BenchConfig
    dataset: str
    clients: int
    requests_per_client: int
    #: mode name ("tracing off" / "tracing on") -> row dict
    rows: dict[str, dict]
    disabled_span_ns: float
    enabled_span_ns: float
    trace_spans: int
    json_path: str
    trace_path: str

    def overhead_pct(self) -> float:
        """Throughput lost to span recording, percent (>= 0; the CI
        acceptance number — target < 5%)."""
        off = self.rows["tracing off"]["rps"]
        on = self.rows["tracing on"]["rps"]
        return max(0.0, (off - on) / off * 100.0)

    # ------------------------------------------------------------------
    def as_payload(self) -> dict:
        return {
            "experiment": "obsoverhead",
            "scale": self.config.scale,
            "threads": self.config.threads,
            "d": _D,
            "dataset": self.dataset,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "max_batch": _MAX_BATCH,
            "repeats": REPEATS,
            "rows": [{"mode": mode, **row}
                     for mode, row in self.rows.items()],
            "disabled_span_ns": self.disabled_span_ns,
            "enabled_span_ns": self.enabled_span_ns,
            "overhead_pct": self.overhead_pct(),
            "overhead_pct_limit": OVERHEAD_PCT_LIMIT,
            "disabled_span_ns_limit": DISABLED_SPAN_NS_LIMIT,
            "trace_spans": self.trace_spans,
            "trace_path": self.trace_path,
        }

    def render(self) -> str:
        headers = ["mode", "requests", "req/s (best)", "p50 ms", "p99 ms",
                   "spans"]
        table_rows = [
            [mode, row["requests"], f"{row['rps']:.0f}",
             f"{row['p50_ms']:.3f}", f"{row['p99_ms']:.3f}", row["spans"]]
            for mode, row in self.rows.items()
        ]
        title = (
            "Observability overhead — closed-loop multiply traffic "
            f"({self.dataset}, d={_D}, {self.config.threads} threads, "
            f"{self.clients} clients x {self.requests_per_client} "
            f"requests, best of {REPEATS}).\n"
            f"Disabled span() call: {self.disabled_span_ns:.0f}ns "
            f"(limit {DISABLED_SPAN_NS_LIMIT:.0f}ns); enabled: "
            f"{self.enabled_span_ns:.0f}ns.  Tracing-on overhead "
            f"{self.overhead_pct():.2f}% of req/s (limit "
            f"{OVERHEAD_PCT_LIMIT:.0f}%).\n"
            f"JSON written to {self.json_path}; Perfetto trace "
            f"({self.trace_spans} spans) to {self.trace_path}"
        )
        return render_table(headers, table_rows, title)


def _span_call_ns(samples: int = 20000) -> float:
    """Nanoseconds per ``obs.span(...)`` context entered+exited now
    (whichever mode the tracer is currently in)."""
    started = time.perf_counter()
    for index in range(samples):
        with obs.span("bench.probe", index=index):
            pass
    return (time.perf_counter() - started) / samples * 1e9


def _drive(service: SpmmService, handle, operands, clients: int,
           requests: int) -> dict:
    """One closed-loop storm; returns its row dict (rps, latencies)."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        mine = operands[index]
        record = latencies[index].append
        barrier.wait()
        for count in range(requests):
            started = time.perf_counter()
            service.multiply(handle, mine[count % len(mine)])
            record(time.perf_counter() - started)

    workers = [threading.Thread(target=client, args=(index,))
               for index in range(clients)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    flat = np.array([value for client_lat in latencies
                     for value in client_lat])
    return {
        "requests": int(flat.size),
        "seconds": wall,
        "rps": flat.size / wall,
        "p50_ms": 1e3 * float(np.percentile(flat, 50)),
        "p99_ms": 1e3 * float(np.percentile(flat, 99)),
    }


def _best_of(runs: list[dict]) -> dict:
    """The highest-throughput repeat (latencies ride along)."""
    return max(runs, key=lambda row: row["rps"])


def run_obsoverhead(config: BenchConfig | None = None) -> ObsOverheadResult:
    """Measure tracing-off vs tracing-on serving throughput."""
    config = config or BenchConfig()
    clients = max(2, int(os.environ.get("REPRO_BENCH_OBS_CLIENTS",
                                        DEFAULT_CLIENTS)))
    requests = max(1, int(os.environ.get("REPRO_BENCH_OBS_REQUESTS",
                                         DEFAULT_REQUESTS)))
    dataset = config.datasets[0]
    matrix = config.matrix(dataset)
    service = SpmmService(threads=config.threads, split="auto",
                          max_batch=_MAX_BATCH, flush_us=_FLUSH_US)
    handle = service.register(matrix, matrix.name or "bench")
    rng = np.random.default_rng(config.seed)
    operands = [
        [rng.random((matrix.ncols, _D), dtype=np.float32) for _ in range(4)]
        for _ in range(clients)
    ]
    service.multiply(handle, operands[0][0])   # codegen off the clock

    was_enabled = obs.tracing_enabled()
    tracer = obs.get_tracer()
    obs.disable_tracing()
    disabled_span_ns = _span_call_ns()
    off_runs = [_drive(service, handle, operands, clients, requests)
                for _ in range(REPEATS)]

    obs.enable_tracing()
    tracer.clear()
    enabled_span_ns = _span_call_ns()
    on_runs = [_drive(service, handle, operands, clients, requests)
               for _ in range(REPEATS)]
    spans = tracer.spans()
    trace_path = os.environ.get("REPRO_BENCH_OBS_TRACE_JSON",
                                DEFAULT_TRACE_PATH)
    obs.write_chrome_trace(trace_path)
    if not was_enabled:
        obs.disable_tracing()

    off = _best_of(off_runs)
    on = _best_of(on_runs)
    off["spans"] = 0
    on["spans"] = len(spans)
    json_path = os.environ.get("REPRO_BENCH_OBSOVERHEAD_JSON",
                               DEFAULT_JSON_PATH)
    result = ObsOverheadResult(
        config=config, dataset=dataset, clients=clients,
        requests_per_client=requests,
        rows={"tracing off": off, "tracing on": on},
        disabled_span_ns=disabled_span_ns,
        enabled_span_ns=enabled_span_ns,
        trace_spans=len(spans), json_path=json_path,
        trace_path=trace_path,
    )
    with open(json_path, "w") as handle_:
        json.dump(result.as_payload(), handle_, indent=2)
        handle_.write("\n")
    return result
