"""Registering a third-party system with `repro.api`.

The registry is open: anything implementing the `System` protocol plugs
into `repro.run`, the staged prepare/bind/execute pipeline, and even
`SpmmService` — without touching the repro package.  This demo
registers a numpy "oracle" baseline (no simulated machine, no counters:
it just computes the truth at host speed) and runs it side by side with
the built-in systems.

Run:  python examples/custom_system.py
"""

import time

import numpy as np

import repro
from repro.api import BoundPlan, System
from repro.core.runner import RunResult
from repro.core.split import partition
from repro.machine import Counters
from repro.serve.cache import KernelKey
from repro.sparse import spmm_reference


class OraclePlan(BoundPlan):
    """A bound oracle problem: keeps X host-side, no address space."""

    def __init__(self, artifact, matrix, x, name_prefix=None):
        config = artifact.config
        ranges = partition(matrix, config.threads, config.split)
        super().__init__(
            artifact, matrix, key=KernelKey(kind="oracle"),
            split=config.split, partitions=ranges, ranges=ranges,
            name_prefix=name_prefix)
        self._x = x

    def refresh(self, x):
        self._x = x
        return self

    def execute(self, *, timing=None):
        self.ensure_kernel()           # keeps the cache accounting alive
        return RunResult(
            y=spmm_reference(self.matrix, self._x), counters=Counters(),
            per_thread=[], program=None, system="oracle", split=self.split,
            threads=self.threads, partitions=self.partitions,
            cache_hit=self.cache_hit)


class OracleSystem(System):
    """Numpy reference SpMM masquerading as a registered system."""

    name = "oracle"
    address_free = True               # nothing problem-specific to build

    def prepare_key(self, config):
        return KernelKey(kind="oracle")

    def bind(self, artifact, matrix, x, name_prefix=None):
        from repro.core.engine import check_operands
        return OraclePlan(artifact, matrix, check_operands(matrix, x),
                          name_prefix=name_prefix)

    def build_kernel(self, plan):
        started = time.perf_counter()
        kernel = spmm_reference           # the "compiled artifact"
        return kernel, time.perf_counter() - started

    def kernel_nbytes(self, kernel):
        return 0


def main() -> None:
    repro.register("oracle", OracleSystem())
    print(f"registered systems: {', '.join(repro.available_systems())}\n")

    rng = np.random.default_rng(11)
    dense = np.where(rng.random((300, 300)) < 0.05,
                     rng.standard_normal((300, 300)), 0.0)
    matrix = repro.CsrMatrix.from_dense(dense.astype(np.float32),
                                        name="demo")
    x = rng.random((300, 16), dtype=np.float32)

    # the one-call pipeline treats the custom system like any built-in
    oracle = repro.run(matrix, x, system="oracle", threads=4)
    jit = repro.run(matrix, x, system="jit", threads=4, timing=False)
    mkl = repro.run(matrix, x, system="mkl", threads=4, timing=False)
    print(f"oracle vs jit bit-identical: {np.array_equal(oracle.y, jit.y)}")
    print(f"oracle vs mkl bit-identical: {np.array_equal(oracle.y, mkl.y)}")

    # ...and the serving subsystem can serve it, too
    service = repro.SpmmService(threads=4, split="row", system="oracle")
    handle = service.register(matrix, "demo")
    for _ in range(8):
        service.multiply(handle, rng.random((300, 16), dtype=np.float32))
    print()
    print(service.report())


if __name__ == "__main__":
    main()
