"""Serving demo: replay a request mix against SpmmService.

Three "models" (sparse matrices of different shapes and skew) are
registered with one service; a stream of mixed requests is replayed
against them.  Each matrix pays autotuning + JIT code generation once,
on its first request; everything after is a kernel-cache hit, so the
amortized codegen overhead — the live version of the paper's Table IV
metric — falls toward zero as traffic accumulates.

The service is system-agnostic since the `repro.api` redesign: a later
section serves the same traffic from the MKL-like baseline
(``system="mkl"``) to compare amortization across systems.  The
closing sections replay a *concurrent* burst against a coalescing
service (``max_batch``/``flush_us``): simultaneous requests for one
matrix execute as a single stacked-operand SpMM with bit-identical
results, trading a bounded flush window of latency for a multiple of
the throughput — and then replay it once more with :mod:`repro.obs`
tracing on, writing ``serving_trace.json`` for https://ui.perfetto.dev.

Run:  python examples/serving_traffic.py
"""

import threading
import time

import numpy as np

import repro.obs as obs
from repro import CsrMatrix
from repro.serve import SpmmService


def random_sparse(rng, nrows, ncols, density, name):
    mask = rng.random((nrows, ncols)) < density
    dense = np.where(mask, rng.standard_normal((nrows, ncols)), 0.0)
    return CsrMatrix.from_dense(dense.astype(np.float32), name=name)


def skewed_sparse(rng, nrows, name):
    """A power-law-ish matrix: a few heavy rows, many light ones."""
    dense = np.zeros((nrows, nrows), dtype=np.float32)
    heavy = rng.integers(0, nrows, size=nrows // 8)
    for row in heavy:
        cols = rng.integers(0, nrows, size=nrows // 4)
        dense[row, cols] = rng.standard_normal(cols.size)
    dense[np.arange(nrows), rng.integers(0, nrows, size=nrows)] = 1.0
    return CsrMatrix.from_dense(dense, name=name)


def main() -> None:
    rng = np.random.default_rng(7)
    service = SpmmService(threads=8, split="auto", timing=False)

    models = [
        service.register(random_sparse(rng, 600, 500, 0.02, "uniform-600")),
        service.register(random_sparse(rng, 300, 300, 0.10, "dense-ish-300")),
        service.register(skewed_sparse(rng, 400, "skewed-400")),
    ]
    widths = {models[0]: 16, models[1]: 32, models[2]: 16}

    # A request mix: model popularity 60/25/15, 200 requests total.
    stream = rng.choice(len(models), size=200, p=[0.60, 0.25, 0.15])
    print("replaying 200 requests against 3 registered matrices...\n")
    for model_index in stream:
        handle = models[model_index]
        d = widths[handle]
        x = rng.random((handle.matrix.ncols, d), dtype=np.float32)
        service.multiply(handle, x)

    # One simulated profile request per model: reuses the cached kernel
    # and reports the machine's perf counters.
    for handle in models:
        d = widths[handle]
        x = rng.random((handle.matrix.ncols, d), dtype=np.float32)
        result = service.profile(handle, x)
        choice = service.choice(handle, d)
        print(f"{handle.name}: tuned split={result.split}"
              f"{' (dynamic)' if choice and choice.dynamic else ''}, "
              f"cache_hit={result.cache_hit}, "
              f"{result.counters.instructions:,} simulated instructions")

    print()
    print(service.report())

    # -- the same traffic, served by a different registered system ------
    mkl_service = SpmmService(threads=8, split="row", system="mkl",
                              timing=False)
    mkl_handles = {handle: mkl_service.register(handle.matrix, handle.name)
                   for handle in models}
    for model_index in stream[:60]:
        handle = models[model_index]
        x = rng.random((handle.matrix.ncols, widths[handle]),
                       dtype=np.float32)
        mkl_service.multiply(mkl_handles[handle], x)
    print()
    print("same stream on the MKL-like system (one template, "
          "compiled once, shared by every handle):")
    print(mkl_service.report())

    # -- batched traffic: concurrent clients, coalesced execution -------
    print()
    print("concurrent burst, per-request vs coalesced:")
    matrix = random_sparse(rng, 300, 300, 0.03, "burst-300")
    for max_batch, flush_us in ((1, 0.0), (16, 100.0)):
        burst = SpmmService(threads=8, split="auto", timing=False,
                            max_batch=max_batch, flush_us=flush_us)
        handle = burst.register(matrix)
        x0 = rng.random((300, 8), dtype=np.float32)
        burst.multiply(handle, x0)          # codegen off the clock
        clients, requests = 8, 25
        barrier = threading.Barrier(clients + 1)
        # operands come from the main thread: Generator is not
        # thread-safe, so clients only ever read their own array
        operands = [rng.random((300, 8), dtype=np.float32)
                    for _ in range(clients)]

        def client(x):
            barrier.wait()
            for _ in range(requests):
                burst.multiply(handle, x)

        workers = [threading.Thread(target=client, args=(operands[i],))
                   for i in range(clients)]
        for worker in workers:
            worker.start()
        barrier.wait()
        started = time.perf_counter()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - started
        stats = burst.stats
        label = (f"max_batch={max_batch:2d} flush_us={flush_us:5.0f}")
        print(f"  {label}: {clients * requests / wall:7.0f} req/s "
              f"(mean batch {stats.mean_batch_size() or 1.0:.2f})")

    # -- a cold burst: tiered first requests vs inline specialization ---
    # A wave of never-seen matrices arrives while the service is busy.
    # Untiered, each one's first request pays autotune + JIT codegen on
    # the request path; tiered ("lazy"), the first request binds the
    # shared address-free template and specialization happens in the
    # background, landing as a hot-swap once the handle proves hot.
    print()
    print("cold burst: first-request latency, inline vs tiered:")
    for tier_mode in ("off", "lazy"):
        cold = SpmmService(threads=8, split="auto", timing=False,
                           tier_mode=tier_mode, promote_after=4)
        firsts = []
        arrivals = [random_sparse(rng, 280 + 7 * index, 240 + 3 * index,
                                  0.03, f"cold-{tier_mode}-{index}")
                    for index in range(6)]
        for arrival in arrivals:
            handle = cold.register(arrival)
            x = rng.random((arrival.ncols, 8), dtype=np.float32)
            started = time.perf_counter()
            cold.multiply(handle, x)
            firsts.append(time.perf_counter() - started)
        label = ("inline (tier_mode='off') "
                 if tier_mode == "off" else "tiered (tier_mode='lazy')")
        print(f"  {label}: first requests "
              + " ".join(f"{1e3 * value:6.2f}ms" for value in firsts))
        if tier_mode == "lazy":
            # heat one arrival past the threshold; promotion lands in
            # the background and the report shows both tiers serving
            handle = cold.register(arrivals[0], "cold-hot")
            x = rng.random((arrivals[0].ncols, 8), dtype=np.float32)
            for _ in range(8):
                cold.multiply(handle, x)
            cold.drain_promotions()
            cold.multiply(handle, x)
            snap = cold.snapshot()
            print(f"  after heating one handle: {snap.tier.render()}")
        cold.close()

    # -- the same burst, traced: one Perfetto-loadable artifact ---------
    # Spans cover the whole lifecycle (serve.multiply roots, the batch
    # protocol's serve.batch.execute / serve.batch.wait joined by batch
    # id, autotune/codegen on cold requests); the coalescing service is
    # reused so the trace shows real leader/follower interleaving.
    print()
    print("tracing one coalesced burst (repro.obs)...")
    obs.enable_tracing()
    traced = SpmmService(threads=8, split="auto", max_batch=16,
                         flush_us=100.0)
    handle = traced.register(matrix, "traced-burst")
    operands = [rng.random((300, 8), dtype=np.float32)
                for _ in range(8)]
    barrier = threading.Barrier(len(operands))

    def traced_client(x):
        barrier.wait()
        for _ in range(20):
            traced.multiply(handle, x)

    workers = [threading.Thread(target=traced_client, args=(x,))
               for x in operands]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    path = obs.write_chrome_trace("serving_trace.json")
    spans = obs.get_tracer().spans()
    executes = [s for s in spans if s.name == "serve.batch.execute"]
    print(f"  {len(spans)} spans recorded ({len(executes)} coalesced "
          f"executions); trace written to {path}")
    print("  load it at https://ui.perfetto.dev (or chrome://tracing)")
    print("  unified metrics for the burst service:")
    snapshot = obs.get_registry().snapshot()
    for name in ("serve_requests_total", "serve_cache_hits_total",
                 "serve_lock_waits_total"):
        value = snapshot.value(name, service=traced.obs_label)
        print(f"    {name}{{service={traced.obs_label!r}}} = {value:.0f}")
    obs.disable_tracing()


if __name__ == "__main__":
    main()
