"""Graph convolution (GCN layer) powered by JITSPMM.

The paper motivates SpMM with graph neural networks (§I): a GCN layer is
``H' = ReLU(Â @ H @ W)`` where ``Â`` is the symmetrically normalized
adjacency matrix and ``Â @ (HW)`` is exactly the sparse-times-tall-skinny
SpMM the JIT accelerates.  This example runs a 2-layer GCN forward pass
over a scaled social-graph twin.

Run:  python examples/gnn_graph_convolution.py
"""

import numpy as np

from repro import CsrMatrix, JitSpMM
from repro.datasets import rmat
from repro.sparse.coo import CooMatrix


def normalize_adjacency(graph: CsrMatrix) -> CsrMatrix:
    """Return D^-1/2 (A + I) D^-1/2, the standard GCN propagation matrix."""
    n = graph.nrows
    coo = graph.to_coo()
    rows = np.concatenate([coo.rows, np.arange(n)])
    cols = np.concatenate([coo.cols, np.arange(n)])
    vals = np.concatenate([np.ones(coo.nnz, dtype=np.float32),
                           np.ones(n, dtype=np.float32)])
    with_loops = CsrMatrix.from_coo(CooMatrix(n, n, rows, cols, vals))
    degree = with_loops.row_lengths().astype(np.float32)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1.0))
    row_of = np.repeat(np.arange(n), with_loops.row_lengths())
    scaled = (with_loops.vals * inv_sqrt[row_of]
              * inv_sqrt[with_loops.col_indices]).astype(np.float32)
    return CsrMatrix(n, n, with_loops.row_ptr, with_loops.col_indices,
                     scaled, name="normalized")


def gcn_forward(a_hat: CsrMatrix, features: np.ndarray,
                weights: list[np.ndarray], engine: JitSpMM) -> np.ndarray:
    """Multi-layer GCN forward pass: H <- ReLU(Â @ (H @ W))."""
    hidden = features
    for layer, weight in enumerate(weights):
        projected = hidden @ weight                  # dense GEMM (numpy)
        hidden = engine.multiply(a_hat, projected)   # SpMM (JITSPMM)
        if layer < len(weights) - 1:
            np.maximum(hidden, 0.0, out=hidden)      # ReLU
    return hidden


def main() -> None:
    rng = np.random.default_rng(0)
    graph = rmat(12, 80_000, seed=5, name="social-graph")
    print(f"graph: {graph}")

    a_hat = normalize_adjacency(graph)
    features = rng.random((graph.nrows, 64), dtype=np.float32).astype(np.float32)
    weights = [
        (rng.standard_normal((64, 32)) / 8).astype(np.float32),
        (rng.standard_normal((32, 16)) / 8).astype(np.float32),
    ]

    engine = JitSpMM(split="merge", threads=8)
    embeddings = gcn_forward(a_hat, features, weights, engine)
    print(f"2-layer GCN output: {embeddings.shape[0]} nodes x "
          f"{embeddings.shape[1]} channels")
    print(f"embedding norms: mean={np.linalg.norm(embeddings, axis=1).mean():.4f}")

    # what would the JIT generate for the second layer's SpMM?
    print("\nregister plan for d=32 (paper Fig. 8 style):")
    for tile in engine.plan(32):
        pieces = ", ".join(
            f"{p.register.name}[{tile.start + p.offset}:"
            f"{tile.start + p.offset + p.lanes}]"
            for p in tile.layout.pieces)
        print(f"  tile @{tile.start}: {pieces}")


if __name__ == "__main__":
    main()
