"""Inspect the JIT's generated assembly and machine code.

Reproduces the paper's Listing 2 (the d=45 single-row kernel) and
Listing 1 (the dynamic row dispatcher), showing the assembly listing,
the encoded bytes, and a round-trip disassembly.

Run:  python examples/inspect_codegen.py
"""

import numpy as np

from repro import CsrMatrix, JitSpMM
from repro.isa.disasm import disassemble


def main() -> None:
    rng = np.random.default_rng(3)
    matrix = CsrMatrix.from_dense(
        (rng.random((64, 64)) < 0.1).astype(np.float32), name="toy")

    # --- paper Listing 2: d = 45 -------------------------------------
    x45 = rng.random((64, 45), dtype=np.float32).astype(np.float32)
    engine = JitSpMM(split="nnz", threads=4)  # static range kernel
    print("=" * 70)
    print("Range kernel for d=45 (paper Listing 2 / Fig. 8 layout)")
    print("=" * 70)
    listing = engine.inspect(matrix, x45)
    print(listing)
    print()
    print("register plan:", ", ".join(
        f"{p.register.name}<-ret[{p.offset}:{p.offset + p.lanes}]"
        for p in engine.plan(45)[0].layout.pieces))

    # --- paper Listing 1: dynamic dispatch ----------------------------
    x16 = rng.random((64, 16), dtype=np.float32).astype(np.float32)
    dynamic = JitSpMM(split="row", threads=4, batch=128)
    print()
    print("=" * 70)
    print("Dynamic-dispatch kernel for d=16 (paper Listing 1)")
    print("=" * 70)
    print(dynamic.inspect(matrix, x16))

    # --- bytes: the JIT emits real machine code ------------------------
    result = dynamic.profile(matrix, x16)
    code = result.program.encode()
    print()
    print("=" * 70)
    print(f"Encoded machine code: {len(code)} bytes")
    print("=" * 70)
    print(code[:64].hex(" "), "...")
    print("\nround-trip disassembly of the first instructions:")
    for item in disassemble(code)[:12]:
        print(f"  {item}")


if __name__ == "__main__":
    main()
