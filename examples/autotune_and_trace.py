"""Extensions beyond the paper: split auto-tuning and execution tracing.

The JIT already runs when the matrix is known, so it can also *choose*
the workload division per instance (the paper evaluates all three and
observes matrix-dependent winners).  ``repro.core.autotune`` predicts
each strategy's makespan from the exact analytic event counts.  The
tracer then shows the generated Listing-2 loop retiring instruction by
instruction on the simulated core.

Run:  python examples/autotune_and_trace.py
"""

import numpy as np

from repro.core.autotune import choose_split
from repro.core.codegen import JitCodegen, JitKernelSpec
from repro.core.runner import MappedOperands, run_jit
from repro.datasets import load
from repro.machine import Cpu, CpuConfig
from repro.machine.trace import Tracer
from repro.sparse import spmm_reference


def main() -> None:
    rng = np.random.default_rng(4)

    # --- auto-tuning on two structurally different twins ----------------
    for name in ("GAP-urand", "GAP-twitter"):
        matrix = load(name)
        print(f"{matrix}")
        choice = choose_split(matrix, d=16, threads=8)
        print(choice.describe())
        x = rng.random((matrix.ncols, 16), dtype=np.float32).astype(np.float32)
        result = run_jit(matrix, x, split=choice.split, threads=8,
                         dynamic=choice.dynamic, batch=choice.batch,
                         timing=False)
        ok = np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)
        print(f"executed with the chosen plan: correct={ok}\n")

    # --- tracing the generated kernel -----------------------------------
    matrix = load("uk-2005", scale=2.0 ** -20)
    x = rng.random((matrix.ncols, 16), dtype=np.float32).astype(np.float32)
    operands = MappedOperands.create(matrix, x)
    spec = JitKernelSpec(
        d=16, m=matrix.nrows,
        row_ptr_addr=operands.row_ptr_addr, col_addr=operands.col_addr,
        vals_addr=operands.vals_addr, x_addr=operands.x_addr,
        y_addr=operands.y_addr)
    program = JitCodegen(spec).build_range_kernel()

    cpu = Cpu(operands.memory, CpuConfig(timing=True))
    tracer = Tracer(cpu, limit=50_000)
    tracer.run(program, init_gpr={"rsi": 0, "rdx": matrix.nrows})

    print(f"traced {len(tracer.entries):,} retired instructions; last 12:")
    print(tracer.render(12))
    print("\ndynamic mnemonic histogram:")
    for mnemonic, count in sorted(tracer.histogram().items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {mnemonic:14s} {count:8,}")


if __name__ == "__main__":
    main()
